"""Fig. 3: global-stable load characterisation (fraction, addressing modes, distances)."""

from conftest import run_once

from repro.experiments import figures


def test_fig3_global_stable_characterisation(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig3_global_stable_characterisation, bench_runner)
    print("\n" + result["text"])
    assert 0.0 < result["global_stable_fraction_avg"] < 1.0
    # Client/Enterprise/Server are richer in stable loads than the SPEC suites.
    by_suite = result["global_stable_fraction_by_suite"]
    assert by_suite["Client"] > by_suite["FSPEC17"]
    assert by_suite["Server"] > by_suite["ISPEC17"]
