"""Fig. 6: load-port utilisation and stable-load port blocking."""

from conftest import run_once

from repro.experiments import figures


def test_fig6_load_port_utilisation(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig6_load_port_utilisation, bench_runner)
    print("\n" + result["text"])
    assert 0.0 < result["load_utilised_cycle_fraction"] < 1.0
