"""Fig. 7: performance headroom of Ideal Constable vs Ideal Stable LVP vs 2x load width."""

from conftest import run_once

from repro.experiments import figures


def test_fig7_headroom(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig7_headroom, bench_runner)
    print("\n" + result["text"])
    geomean = result["geomean"]
    # Ideal mechanisms never lose performance, and Ideal Constable at least
    # matches the naive 2x-load-width scaling of the baseline.
    assert geomean["ideal_constable"] >= 1.0
    assert geomean["ideal_stable_lvp"] >= 1.0
    assert geomean["ideal_constable"] >= geomean["2x_load_width"] - 0.01
