"""Fig. 9: SLD update rate at rename and sensitivity to wrong-path updates."""

from conftest import run_once

from repro.experiments import figures


def test_fig9_sld_updates(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig9_sld_updates, bench_runner)
    print("\n" + result["text"])
    # The paper observes ~0.28 SLD updates/cycle on average and a negligible
    # effect from wrong-path updates; check the same qualitative properties.
    assert result["sld_updates_per_cycle"]["mean"] < 2.0
    assert abs(result["wrong_path_performance_delta"]["mean"]) < 0.05
