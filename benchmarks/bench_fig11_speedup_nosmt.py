"""Fig. 11: noSMT speedups of EVES, Constable, EVES+Constable, EVES+Ideal Constable."""

from conftest import run_once

from repro.experiments import figures


def test_fig11_speedup_nosmt(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig11_speedup_nosmt, bench_runner)
    print("\n" + result["text"])
    geomean = result["geomean"]
    # Both mechanisms help (or at worst are neutral), and adding the ideal
    # Constable oracle on top of EVES gives the largest benefit.
    assert geomean["constable"] >= 0.99
    assert geomean["eves"] >= 0.99
    assert geomean["eves+ideal_constable"] >= max(geomean["eves"], geomean["constable"]) - 0.01
