"""Fig. 12: per-workload speedup comparison of EVES and Constable."""

from conftest import run_once

from repro.experiments import figures


def test_fig12_per_workload(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig12_per_workload, bench_runner)
    print("\n" + result["text"])
    assert result["total_workloads"] == len(result["eves"])
    # Neither mechanism dominates every workload (the paper sees 60/30 split).
    assert 0 <= result["constable_wins"] <= result["total_workloads"]
