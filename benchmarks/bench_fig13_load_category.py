"""Fig. 13: Constable speedup when eliminating only one addressing-mode category."""

from conftest import run_once

from repro.experiments import figures


def test_fig13_load_categories(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig13_load_categories, bench_runner)
    print("\n" + result["text"])
    speedups = result["geomean_speedups"]
    # The full mechanism covers at least as much as any single category.
    best_single = max(speedups["pc_relative_only"], speedups["stack_relative_only"],
                      speedups["register_relative_only"])
    assert speedups["all_loads"] >= best_single - 0.01
