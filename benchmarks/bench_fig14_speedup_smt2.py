"""Fig. 14: SMT2 speedups - where Constable's resource savings matter most."""

from conftest import run_once

from repro.experiments import figures


def test_fig14_speedup_smt2(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig14_speedup_smt2, bench_runner, max_pairs=2)
    print("\n" + result["text"])
    geomean = result["geomean_speedups"]
    # Constable's advantage over pure value prediction grows under SMT because
    # it frees shared load execution resources (paper §9.1.2).
    assert geomean["constable"] >= geomean["eves"] - 0.01
    assert geomean["eves+constable"] >= 0.99
