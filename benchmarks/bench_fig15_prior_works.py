"""Fig. 15: Constable versus (and combined with) ELAR and RFP."""

from conftest import run_once

from repro.experiments import figures


def test_fig15_prior_works(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig15_prior_works, bench_runner)
    print("\n" + result["text"])
    speedups = result["geomean_speedups"]
    # ELAR adds little on a baseline with stack-pointer folding; Constable is
    # at least competitive with both prior works and composes with them.
    assert speedups["constable"] >= speedups["elar"] - 0.01
    assert speedups["elar+constable"] >= speedups["elar"] - 0.01
    assert speedups["rfp+constable"] >= speedups["rfp"] - 0.02
