"""Fig. 16: load coverage of EVES, Constable and their combination."""

from conftest import run_once

from repro.experiments import figures


def test_fig16_coverage(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig16_coverage, bench_runner)
    print("\n" + result["text"])
    coverage = result["coverage"]
    assert 0.0 < coverage["constable"] < 1.0
    assert 0.0 < coverage["eves"] < 1.0
    # The combination covers at least as many loads as Constable alone.
    assert coverage["eves+constable"] >= coverage["constable"] - 0.02
