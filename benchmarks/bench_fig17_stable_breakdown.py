"""Fig. 17: how many global-stable loads Constable eliminates at runtime."""

from conftest import run_once

from repro.experiments import figures


def test_fig17_stable_breakdown(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig17_stable_breakdown, bench_runner)
    print("\n" + result["text"])
    breakdown = result["breakdown"]
    assert 0.0 < breakdown["global_stable_and_eliminated"] <= 1.0
    assert (breakdown["global_stable_and_eliminated"]
            + breakdown["global_stable_not_eliminated"]) == 1.0
