"""Fig. 18: reduction in RS allocations and L1-D accesses with Constable."""

from conftest import run_once

from repro.experiments import figures


def test_fig18_resource_utilisation(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig18_resource_utilisation, bench_runner)
    print("\n" + result["text"])
    # Eliminating loads must reduce both RS allocations and L1-D accesses.
    assert result["rs_allocation_reduction"]["mean"] > 0.0
    assert result["l1d_access_reduction"]["mean"] > 0.0
    # L1-D accesses fall faster than RS allocations (every eliminated load is a
    # skipped cache access, while many non-load micro-ops still use the RS).
    assert (result["l1d_access_reduction"]["mean"]
            >= result["rs_allocation_reduction"]["mean"] - 0.02)
