"""Fig. 19: core dynamic power of EVES, Constable and EVES+Constable vs baseline."""

from conftest import run_once

from repro.experiments import figures


def test_fig19_power(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig19_power, bench_runner)
    print("\n" + result["text"])
    relative = result["relative_core_power"]
    # Constable reduces core dynamic power (fewer RS allocations and L1-D
    # accesses), whereas value prediction alone does not.
    assert relative["constable"] < 1.005
    assert relative["constable"] < relative["eves"] + 0.005
    assert result["relative_rs_power"]["constable"] < 1.0
    assert result["relative_l1d_power"]["constable"] < 1.0
