"""Fig. 20: sensitivity to load execution width and pipeline depth scaling."""

from conftest import run_once

from repro.experiments import figures


def test_fig20_sensitivity(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig20_sensitivity, bench_runner,
                      load_widths=(3, 4, 6), depth_scales=(1.0, 2.0))
    print("\n" + result["text"])
    # Constable keeps adding performance on top of naively scaled baselines.
    for width, values in result["load_width"].items():
        assert values["constable"] >= values["baseline"] - 0.01, width
    for scale, values in result["pipeline_depth"].items():
        assert values["constable"] >= values["baseline"] - 0.01, scale
