"""Fig. 21: memory-ordering violations by eliminated loads and their re-execution cost."""

from conftest import run_once

from repro.experiments import figures


def test_fig21_ordering_violations(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig21_ordering_violations, bench_runner)
    print("\n" + result["text"])
    # Violations are rare thanks to the confidence threshold (paper: 0.09%).
    assert result["violation_fraction"]["mean"] < 0.02
    # Re-execution adds only a small number of allocated instructions.
    assert result["rob_allocation_increase"]["mean"] < 0.05
