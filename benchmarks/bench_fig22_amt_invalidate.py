"""Fig. 22: CV-bit pinning versus invalidating the AMT on every L1-D eviction."""

from conftest import run_once

from repro.experiments import figures


def test_fig22_amt_invalidation(benchmark, bench_runner):
    result = run_once(benchmark, figures.fig22_amt_invalidation, bench_runner)
    print("\n" + result["text"])
    # The AMT-invalidation variant can only lose elimination opportunities.
    assert (result["coverage"]["constable_amt_i"]
            <= result["coverage"]["constable"] + 0.02)
    assert result["speedup"]["constable"] >= result["speedup"]["constable_amt_i"] - 0.02
