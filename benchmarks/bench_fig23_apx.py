"""Figs. 23-24: effect of doubling the architectural registers (APX) on stable loads."""

from conftest import BENCH_INSTRUCTIONS, BENCH_PER_SUITE, run_once

from repro.experiments import figures


def test_fig23_fig24_apx_study(benchmark):
    result = run_once(benchmark, figures.fig23_fig24_apx_study,
                      per_suite=BENCH_PER_SUITE, instructions=BENCH_INSTRUCTIONS)
    print("\n" + result["text"])
    # More architectural registers remove some loads (mostly stack-relative),
    # but the global-stable opportunity stays roughly the same (paper appendix B).
    assert result["dynamic_load_reduction_with_apx"] >= 0.0
    modes = result["addressing_mode_breakdown"]
    assert modes["32_registers"].get("stack", 0.0) <= modes["16_registers"].get("stack", 0.0) + 0.02
    fractions = result["global_stable_fraction"]
    assert abs(fractions["32_registers"] - fractions["16_registers"]) < 0.25
