"""Table 1: storage overhead of Constable's structures (12.4 KB per core)."""

from conftest import run_once

from repro.experiments import figures


def test_table1_storage_overhead(benchmark):
    result = run_once(benchmark, figures.table1_storage_overhead)
    print("\n" + result["text"])
    storage = result["storage_kb"]
    assert abs(storage["sld"] - 7.9) < 0.2
    assert abs(storage["amt"] - 4.0) < 0.2
    assert abs(storage["total"] - 12.4) < 0.4
