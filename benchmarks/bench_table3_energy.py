"""Table 3: access energy, leakage and area estimates of Constable's structures."""

from conftest import run_once

from repro.experiments import figures


def test_table3_energy_estimates(benchmark):
    result = run_once(benchmark, figures.table3_energy_estimates)
    print("\n" + result["text"])
    estimates = result["estimates"]
    assert estimates["sld"]["read_energy_pj"] > estimates["amt"]["read_energy_pj"]
    assert estimates["amt"]["read_energy_pj"] > estimates["rmt"]["read_energy_pj"]
    assert abs(estimates["sld"]["read_energy_pj"] - 10.76) < 0.01
