"""Shared fixtures for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper on a reduced
workload set (one workload per suite, short traces) so the whole directory
runs in minutes.  Results are cached in a session-scoped runner: configurations
shared by several figures (baseline, EVES, Constable, ...) are only simulated
once.  Pass a larger runner (``ExperimentRunner(per_suite=None, ...)``) through
``repro.experiments`` directly to reproduce the full 90-workload sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner

#: Workloads per suite and trace length used by the benchmark harnesses.
BENCH_PER_SUITE = 1
BENCH_INSTRUCTIONS = 5000


@pytest.fixture(scope="session")
def bench_runner():
    """One shared reduced-workload runner for every figure benchmark."""
    return ExperimentRunner(per_suite=BENCH_PER_SUITE, instructions=BENCH_INSTRUCTIONS)


def run_once(benchmark, function, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
