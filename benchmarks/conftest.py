"""Shared fixtures for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper on a reduced
workload set (one workload per suite, short traces) so the whole directory
runs in minutes.  Results are cached in a session-scoped runner: configurations
shared by several figures (baseline, EVES, Constable, ...) are only simulated
once.  Pass a larger runner (``ExperimentRunner(per_suite=None, ...)``) through
``repro.experiments`` directly to reproduce the full 90-workload sweep.

Two environment variables opt the whole benchmark session into the scaled-out
execution layer:

* ``REPRO_BENCH_WORKERS=N`` (N > 1) shards cold-start trace generation and
  simulations — single-thread and SMT pairs alike — over an N-process
  :class:`~repro.experiments.parallel.ParallelExperimentRunner` pool.
* ``REPRO_BENCH_CACHE=<dir>`` attaches a shared on-disk cache directory: a
  :class:`~repro.experiments.cache.ResultCache` (single-thread and SMT
  entries) plus a :class:`~repro.experiments.cache.ReportCache` for Load
  Inspector reports, so repeated benchmark runs (and any other harness
  pointed at the same directory) reuse simulation results and inspector
  reports instead of recomputing them.  Cache keys cover the full core
  configuration, workload spec, trace parameters and a schema version, so
  stale hits across code changes are prevented by bumping
  :data:`repro.experiments.cache.SCHEMA_VERSION`.  Set
  ``REPRO_CACHE_MAX_MB`` to cap the directory's size (LRU eviction; a
  malformed value warns once and is ignored).

The benchmarks, the figure harnesses and the ``repro`` CLI all execute
through the same plan → filter-by-shard → execute → commit runner pipeline,
so a directory warmed by ``repro sweep`` (even sharded across hosts) serves
this benchmark session too — point ``REPRO_BENCH_CACHE`` at it with matching
trace parameters.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import default_runner
from repro.experiments.runner import ExperimentRunner

#: Workloads per suite and trace length used by the benchmark harnesses.
BENCH_PER_SUITE = 1
BENCH_INSTRUCTIONS = 5000


def _runner_from_environment() -> ExperimentRunner:
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or "0")
    return default_runner(per_suite=BENCH_PER_SUITE,
                          instructions=BENCH_INSTRUCTIONS,
                          workers=workers,
                          cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None)


@pytest.fixture(scope="session")
def bench_runner():
    """One shared reduced-workload runner for every figure benchmark."""
    runner = _runner_from_environment()
    yield runner
    runner.close()


def run_once(benchmark, function, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
