#!/usr/bin/env python3
"""Load Inspector study: why do global-stable loads exist? (paper §4.1-4.2, Fig. 3).

Analyses one workload per suite, printing the fraction of dynamic loads that are
global-stable, their addressing-mode breakdown and inter-occurrence distances,
plus the effect of an APX-sized (32-entry) architectural register file - the
analysis performed by the paper's open-source Load Inspector tool.
"""

from repro.analysis import inspect_trace
from repro.experiments import format_table
from repro.workloads import SUITE_NAMES, generate_trace, workload_specs_for_suite


def main() -> None:
    rows = []
    for suite in SUITE_NAMES:
        spec = workload_specs_for_suite(suite)[0]
        trace = generate_trace(spec, num_instructions=12_000)
        report = inspect_trace(trace)
        modes = report.addressing_mode_breakdown()
        distances = report.distance_distribution()
        rows.append((
            f"{spec.name} ({suite})",
            f"{report.global_stable_dynamic_fraction():.1%}",
            f"{modes['pc_relative']:.0%}/{modes['stack']:.0%}/{modes['register']:.0%}",
            f"{distances['[0-50)']:.0%}",
            f"{distances['250+']:.0%}",
        ))
    print(format_table(
        ["workload", "global-stable", "PC/stack/reg", "reuse < 50", "reuse 250+"],
        rows, title="Global-stable load characterisation (Fig. 3)"))

    # APX study (paper appendix B): double the architectural registers.
    spec = workload_specs_for_suite("Client")[0]
    base = inspect_trace(generate_trace(spec, num_instructions=12_000, num_registers=16))
    apx = inspect_trace(generate_trace(spec, num_instructions=12_000, num_registers=32))
    print(f"\nAPX study on {spec.name}:")
    print(f"  dynamic loads      : {base.total_dynamic_loads()} -> {apx.total_dynamic_loads()}")
    print(f"  global-stable share: {base.global_stable_dynamic_fraction():.1%} -> "
          f"{apx.global_stable_dynamic_fraction():.1%}")


if __name__ == "__main__":
    main()
