#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without Constable.

Generates a Client-suite synthetic workload, runs the baseline Golden-Cove-like
core and the same core with Constable attached, and prints speedup, elimination
coverage and the reduction in reservation-station allocations and L1-D accesses
-- the paper's headline metrics (Figs. 11, 18).

A second stage runs the same comparison as a small multi-workload sweep through
the experiment-runner layer.  ``--workers N`` shards the sweep over N worker
processes (``ParallelExperimentRunner``); ``--cache DIR`` attaches the on-disk
result cache so a rerun of this script performs zero simulations:

    PYTHONPATH=src python examples/quickstart.py --workers 4 --cache .repro-cache
"""

from __future__ import annotations

import argparse

from repro.analysis import inspect_trace
from repro.core import ConstableConfig
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.figures import default_runner
from repro.experiments.runner import ExperimentRunner
from repro.pipeline import CoreConfig, simulate_trace
from repro.workloads import generate_trace, get_workload_spec


def make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build a serial or parallel runner (with optional on-disk cache) from flags."""
    return default_runner(per_suite=args.per_suite, instructions=args.instructions,
                          workers=args.workers, cache_dir=args.cache)


def single_workload_demo() -> None:
    spec = get_workload_spec("client_00")
    trace = generate_trace(spec, num_instructions=20_000)
    report = inspect_trace(trace)
    print(f"workload: {spec.name} ({spec.suite}), {len(trace)} instructions, "
          f"{len(trace.loads())} loads")
    print(f"global-stable dynamic loads: {report.global_stable_dynamic_fraction():.1%}")

    baseline = simulate_trace(trace, CoreConfig(), name="baseline")
    constable = simulate_trace(
        trace, CoreConfig(constable=ConstableConfig(confidence_threshold=8)),
        name="constable")

    print(f"\nbaseline : {baseline.cycles} cycles, IPC {baseline.ipc:.2f}")
    print(f"constable: {constable.cycles} cycles, IPC {constable.ipc:.2f}")
    print(f"speedup  : {constable.speedup_over(baseline):.3f}x")
    print(f"loads eliminated: {constable.constable_stats['loads_eliminated']:.0f} "
          f"({constable.constable_stats['elimination_coverage']:.1%} of loads)")

    rs_base = baseline.resource_stats["rs_allocations"]
    rs_cons = constable.resource_stats["rs_allocations"]
    l1_base = baseline.power_events["l1d_accesses"]
    l1_cons = constable.power_events["l1d_accesses"]
    print(f"RS allocations : {rs_base} -> {rs_cons} ({1 - rs_cons / rs_base:.1%} fewer)")
    print(f"L1-D accesses  : {l1_base} -> {l1_cons} ({1 - l1_cons / l1_base:.1%} fewer)")


def sweep_demo(runner: ExperimentRunner) -> None:
    flavour = type(runner).__name__
    print(f"\n--- mini sweep via {flavour} "
          f"({len(runner.specs())} workloads x 2 configs) ---")
    runner.run_config("baseline", baseline_config())
    runner.run_config("constable", constable_config())
    for suite, value in runner.speedups_by_suite("constable").items():
        print(f"  {suite:<10} constable speedup {value:.3f}x")
    if runner.cache is not None:
        stats = runner.cache.stats.as_dict()
        print(f"  result cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['stores']} stores ({runner.cache.directory})")
    if runner.report_cache is not None:
        stats = runner.report_cache.stats.as_dict()
        print(f"  report cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['stores']} stores")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (>1 uses the parallel runner)")
    parser.add_argument("--cache", default=None,
                        help="directory of the shared on-disk result cache")
    parser.add_argument("--per-suite", type=int, default=1,
                        help="workloads per suite in the sweep stage")
    parser.add_argument("--instructions", type=int, default=5000,
                        help="trace length for the sweep stage")
    parser.add_argument("--skip-single", action="store_true",
                        help="skip the single-workload demo and only run the sweep")
    args = parser.parse_args()

    if not args.skip_single:
        single_workload_demo()
    with make_runner(args) as runner:
        sweep_demo(runner)


if __name__ == "__main__":
    main()
