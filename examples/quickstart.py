#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without Constable.

Generates a Client-suite synthetic workload, runs the baseline Golden-Cove-like
core and the same core with Constable attached, and prints speedup, elimination
coverage and the reduction in reservation-station allocations and L1-D accesses
-- the paper's headline metrics (Figs. 11, 18).
"""

from repro.analysis import inspect_trace
from repro.core import ConstableConfig
from repro.pipeline import CoreConfig, simulate_trace
from repro.workloads import generate_trace, get_workload_spec


def main() -> None:
    spec = get_workload_spec("client_00")
    trace = generate_trace(spec, num_instructions=20_000)
    report = inspect_trace(trace)
    print(f"workload: {spec.name} ({spec.suite}), {len(trace)} instructions, "
          f"{len(trace.loads())} loads")
    print(f"global-stable dynamic loads: {report.global_stable_dynamic_fraction():.1%}")

    baseline = simulate_trace(trace, CoreConfig(), name="baseline")
    constable = simulate_trace(
        trace, CoreConfig(constable=ConstableConfig(confidence_threshold=8)),
        name="constable")

    print(f"\nbaseline : {baseline.cycles} cycles, IPC {baseline.ipc:.2f}")
    print(f"constable: {constable.cycles} cycles, IPC {constable.ipc:.2f}")
    print(f"speedup  : {constable.speedup_over(baseline):.3f}x")
    print(f"loads eliminated: {constable.constable_stats['loads_eliminated']:.0f} "
          f"({constable.constable_stats['elimination_coverage']:.1%} of loads)")

    rs_base = baseline.resource_stats["rs_allocations"]
    rs_cons = constable.resource_stats["rs_allocations"]
    l1_base = baseline.power_events["l1d_accesses"]
    l1_cons = constable.power_events["l1d_accesses"]
    print(f"RS allocations : {rs_base} -> {rs_cons} ({1 - rs_cons / rs_base:.1%} fewer)")
    print(f"L1-D accesses  : {l1_base} -> {l1_cons} ({1 - l1_cons / l1_base:.1%} fewer)")


if __name__ == "__main__":
    main()
