#!/usr/bin/env python3
"""SMT2 study: Constable's benefit grows when two threads share load resources.

The paper's §9.1.2 shows Constable gaining more under 2-way SMT (8.8%) than
without it (5.1%), because eliminated loads free the load execution units and
reservation-station entries that SMT threads fight over.  This example runs a
Client+Server thread pair in both modes and prints the comparison.
"""

from repro.core import ConstableConfig
from repro.experiments import format_table
from repro.pipeline import CoreConfig, simulate_smt_pair, simulate_trace
from repro.workloads import generate_trace, workload_specs_for_suite


def main() -> None:
    instructions = 8000
    constable = ConstableConfig(confidence_threshold=8)
    trace_a = generate_trace(workload_specs_for_suite("Client")[0],
                             num_instructions=instructions)
    trace_b = generate_trace(workload_specs_for_suite("Server")[0],
                             num_instructions=instructions, base_pc=0x800000)

    rows = []
    # Single-thread (noSMT) comparison on thread A.
    base_single = simulate_trace(trace_a, CoreConfig())
    cons_single = simulate_trace(trace_a, CoreConfig(constable=constable))
    rows.append(("noSMT", f"{cons_single.speedup_over(base_single):.3f}x",
                 f"{base_single.ipc:.2f}", f"{cons_single.ipc:.2f}"))

    # SMT2 comparison on the pair.
    base_pair = simulate_smt_pair(trace_a, trace_b, CoreConfig())
    cons_pair = simulate_smt_pair(trace_a, trace_b, CoreConfig(constable=constable))
    rows.append(("SMT2", f"{base_pair.cycles / cons_pair.cycles:.3f}x",
                 f"{base_pair.throughput():.2f}", f"{cons_pair.throughput():.2f}"))

    print(format_table(["mode", "constable speedup", "baseline IPC", "constable IPC"],
                       rows, title="Constable under SMT contention"))
    print("\nper-thread IPC (SMT2 baseline):",
          [f"{ipc:.2f}" for ipc in base_pair.per_thread_ipc])
    print("per-thread IPC (SMT2 constable):",
          [f"{ipc:.2f}" for ipc in cons_pair.per_thread_ipc])


if __name__ == "__main__":
    main()
