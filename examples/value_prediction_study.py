#!/usr/bin/env python3
"""Constable versus and combined with a load value predictor (paper Figs. 11/16/19).

Runs four configurations (baseline, EVES, Constable, EVES+Constable) over a
small suite-balanced workload set and prints speedups, load coverage and the
core dynamic power estimate - the comparison at the heart of the paper:
value prediction breaks only the data dependence, Constable also removes the
load's resource usage.
"""

from repro.experiments import (
    ExperimentRunner,
    baseline_config,
    constable_config,
    eves_config,
    eves_constable_config,
    format_table,
)
from repro.power import CorePowerModel


def main() -> None:
    runner = ExperimentRunner(per_suite=1, instructions=8000)
    configs = {
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    }
    for name, config in configs.items():
        runner.run_config(name, config)

    model = CorePowerModel()
    rows = []
    baseline_energy = 0.0
    energies = {}
    for name in configs:
        total = sum(model.evaluate(run.results[name].power_events).total
                    for run in runner.workloads().values())
        energies[name] = total
        if name == "baseline":
            baseline_energy = total
    for name in configs:
        speedup = runner.geomean_speedup(name)
        coverage = 0.0
        runs = runner.workloads().values()
        for run in runs:
            result = run.results[name]
            covered = result.stats.value_predicted_loads
            if result.constable_stats:
                covered += result.constable_stats["loads_eliminated"]
            coverage += covered / max(1, result.stats.loads_renamed)
        coverage /= len(list(runs))
        rows.append((name, f"{speedup:.3f}x", f"{coverage:.1%}",
                     f"{energies[name] / baseline_energy:.3f}"))

    print(format_table(["config", "speedup", "load coverage", "relative power"], rows,
                       title="Constable vs EVES (reduced workload set)"))


if __name__ == "__main__":
    main()
