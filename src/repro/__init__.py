"""Python reproduction of Constable (ISCA 2024): load-value speculation study.

The package models an out-of-order core with the paper's load-handling
schemes and the experiment machinery to reproduce its figures:

* ``repro.core`` — the Constable predictor family and its baselines.
* ``repro.pipeline`` / ``frontend`` / ``backend`` / ``memory`` / ``rename`` /
  ``lvp`` — the cycle-accurate simulation core (bit-identical cycle and
  event engines).
* ``repro.workloads`` — deterministic synthetic kernels and suite specs.
* ``repro.experiments`` — sweeps, the on-disk result cache, figure
  harnesses, bench reports and the orchestrator.
* ``repro.analysis`` — trace inspection and the ``repro lint`` invariant
  checker.

Entry point: the ``repro`` CLI (``repro.cli``).
"""
