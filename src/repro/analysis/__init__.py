"""Trace analysis: the Load Inspector and small statistics helpers."""

from repro.analysis.load_inspector import (
    LoadInspector,
    LoadSiteStats,
    GlobalStableReport,
    inspect_trace,
    DISTANCE_BUCKETS,
)
from repro.analysis.stats_utils import (
    geomean,
    speedup,
    box_whisker_summary,
    weighted_fraction,
)

__all__ = [
    "LoadInspector",
    "LoadSiteStats",
    "GlobalStableReport",
    "inspect_trace",
    "DISTANCE_BUCKETS",
    "geomean",
    "speedup",
    "box_whisker_summary",
    "weighted_fraction",
]
