"""``repro lint`` — AST-based checker for the repo's mechanical invariants.

The package pairs a rule-agnostic engine (:mod:`repro.analysis.lint.engine`)
with six project rules, each enforcing a contract that used to live only in
prose and after-the-fact differential tests:

* **RL001** (:mod:`~repro.analysis.lint.determinism`) — the simulation core
  must not read clocks/entropy, use the process-global RNG, or iterate bare
  sets.
* **RL002** (:mod:`~repro.analysis.lint.cache_purity`) — cache-key and
  fingerprint functions must not read ``os.environ`` or any engine-named
  state.
* **RL003** (:mod:`~repro.analysis.lint.schema`) — serialized ``to_dict``
  key sets must match the committed manifest unless
  ``SCHEMA_VERSION``/``BENCH_SCHEMA_VERSION`` changed in the same tree.
* **RL004** (:mod:`~repro.analysis.lint.env_registry`) — every ``REPRO_*``
  variable read in code needs a ``docs/ENVIRONMENT.md`` row and vice versa.
* **RL005** (:mod:`~repro.analysis.lint.engine_parity`) — event-engine
  branches may only store to the allowlisted event-only state set.
* **RL006** (:mod:`~repro.analysis.lint.hygiene`) — no bare ``except:`` or
  broad silent swallows in ``experiments/`` and the CLI.

Surfaced as ``repro lint [--json] [--rule RLxxx] [--refresh-manifest]`` in
the CLI, mirrored in-process by ``tests/test_lint.py`` (so the tier-1 suite
enforces a clean tree without any extra tooling installed), and run as a CI
job.  A finding can be allowlisted with an inline
``# repro-lint: ignore[RLxxx]`` comment — unknown rule names in such a
comment are themselves an error, never silence.
"""

from repro.analysis.lint.engine import (  # noqa: F401  (public API re-exports)
    META_RULE_ID,
    Finding,
    LintContext,
    LintReport,
    Rule,
    all_rules,
    load_context,
    run_lint,
)

# Importing the rule modules registers them with the engine; the import
# order here is the display/registration order of the rules.
from repro.analysis.lint import determinism  # noqa: F401,E402
from repro.analysis.lint import cache_purity  # noqa: F401,E402
from repro.analysis.lint import schema  # noqa: F401,E402
from repro.analysis.lint import env_registry  # noqa: F401,E402
from repro.analysis.lint import engine_parity  # noqa: F401,E402
from repro.analysis.lint import hygiene  # noqa: F401,E402

from repro.analysis.lint.schema import (  # noqa: F401,E402
    MANIFEST_REL,
    compare_manifest,
    extract_manifest,
    load_manifest,
    refresh_manifest,
)
