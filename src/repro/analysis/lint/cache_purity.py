"""RL002 — cache keys must be pure functions of config + workload + trace.

The on-disk cache's whole warm-rerun story rests on one invariant: a cache
key fingerprints *what will be simulated* and nothing else.  The execution
engine (``engine=`` / ``REPRO_CORE_ENGINE``) is deliberately excluded — the
engines are bit-identical, so warm entries must stay valid under either —
and no ``REPRO_*`` runtime knob may leak in, or two hosts with different
environments would silently stop sharing work.  The same goes for the fault
injection and supervision layer (``REPRO_FAULT_PLAN``, retry budgets, job
timeouts): a faulted-and-retried run must produce entries bit-identical to a
clean run, so none of that configuration may fingerprint.  This rule
statically forbids ``os.environ``/``os.getenv`` reads, any ``engine``-named
name or attribute, and any fault/retry/timeout-named name, attribute or
parameter inside the key/fingerprint functions of ``experiments/cache.py``,
``experiments/orchestrator.py``, ``experiments/faults.py`` and
``experiments/parallel.py``.

**Reachability.**  The call graph is walked one level deep within each
module: a seed function's body plus the bodies of same-module functions it
calls directly.  That covers the real composition (``key_for`` →
``_digest``, ``_sim_identity`` → ``_fingerprint_text``) without a whole-
program analysis; deeper or cross-module helpers are expected to be seeds
themselves (``config_fingerprint`` in ``cache.py`` is, for example).  The
runtime twin — ``test_cache_fingerprint_ignores_engine_and_runtime_env`` in
``tests/test_lint.py`` — asserts the same invariant dynamically.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.analysis.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: The modules whose key/fingerprint functions this rule guards.
SCOPE_FILES = (
    "src/repro/experiments/cache.py",
    "src/repro/experiments/orchestrator.py",
    "src/repro/experiments/faults.py",
    "src/repro/experiments/parallel.py",
    "src/repro/experiments/warehouse.py",
)

#: Exact function names treated as cache-key seeds wherever they appear.
SEED_NAMES = frozenset({"canonical_value", "_digest"})

#: Names that smell of supervision state (fault plans, retry budgets, job
#: timeouts).  None of it may fingerprint: a faulted-and-retried sweep must
#: write cache entries bit-identical to a clean run's.
_FAULT_NAME_RE = re.compile(
    # Segment-anchored so DEFAULT_BASE_PC does not match on its 'FAULT':
    # the keyword must start and end a snake_case/word segment.
    r"(?<![A-Za-z])(?:faults?|retry|retries|timeouts?)(?![a-z])",
    re.IGNORECASE)

_FAULT_MESSAGE = ("references fault/retry/timeout configuration: supervision "
                  "state must never enter cache-key material (a faulted-and-"
                  "retried run must stay bit-identical to a clean one)")


def is_key_function(name: str) -> bool:
    """True when a function participates in cache-key/fingerprint material."""
    return (name.startswith("key_for")
            or "fingerprint" in name
            or "identity" in name
            or name in SEED_NAMES)


def _function_index(tree: ast.Module) -> Dict[str, List[ast.FunctionDef]]:
    """Every function/method definition in the module, keyed by bare name."""
    index: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.setdefault(node.name, []).append(node)
    return index


def _called_names(func: ast.FunctionDef) -> Set[str]:
    """Bare names of functions/methods called directly from ``func``'s body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id in ("self", "cls")):
            names.add(target.attr)
    return names


def _violations(func: ast.FunctionDef) -> Iterator[Tuple[int, str, str]]:
    """``(line, category, message)`` for every impurity in one function body.

    The category key exists so nested matches of one expression (the inner
    ``os.environ`` of an ``os.environ.get`` chain) collapse into a single
    finding per line.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None and (
                    dotted in ("os.environ", "os.getenv")
                    or dotted.startswith("os.environ.")):
                yield (node.lineno, "env",
                       "reads os.environ: runtime environment must never "
                       "reach cache-key material (two hosts with different "
                       "env would stop sharing warm entries)")
            elif node.attr == "engine":
                yield (node.lineno, "engine",
                       "touches an 'engine'-named attribute: the execution "
                       "engine is bit-identical by contract and must never "
                       "enter a cache key (docs/ARCHITECTURE.md)")
            elif _FAULT_NAME_RE.search(node.attr):
                yield (node.lineno, "fault", f"'{node.attr}' {_FAULT_MESSAGE}")
        elif isinstance(node, ast.Name):
            if node.id in ("environ", "getenv"):
                yield (node.lineno, "env",
                       "reads the process environment: runtime environment "
                       "must never reach cache-key material")
            elif _FAULT_NAME_RE.search(node.id):
                yield (node.lineno, "fault", f"'{node.id}' {_FAULT_MESSAGE}")
        elif isinstance(node, ast.arg):
            if node.arg == "engine":
                yield (node.lineno, "engine",
                       "takes an 'engine' parameter: the execution engine "
                       "must never enter a cache key")
            elif _FAULT_NAME_RE.search(node.arg):
                yield (node.lineno, "fault", f"'{node.arg}' {_FAULT_MESSAGE}")


@register
class CachePurityRule(Rule):
    """Forbid env reads and engine references inside cache-key functions."""

    id = "RL002"
    title = ("cache-key/fingerprint functions must not read os.environ or "
             "any engine-named state")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Walk each key function plus its direct same-module callees."""
        for source in ctx.files_under(*SCOPE_FILES):
            if source.tree is None:
                continue
            index = _function_index(source.tree)
            seeds = [func for funcs in index.values() for func in funcs
                     if is_key_function(func.name)]
            seen_lines: Set[Tuple[int, str]] = set()
            for seed in seeds:
                closure: List[ast.FunctionDef] = [seed]
                for name in sorted(_called_names(seed)):
                    for callee in index.get(name, []):
                        if callee is not seed:
                            closure.append(callee)
                for func in closure:
                    for line, category, message in _violations(func):
                        # The same helper may be reachable from several
                        # seeds, and one expression can match both the
                        # inner and outer node of an attribute chain;
                        # report each offending line once per category.
                        dedup = (line, category)
                        if dedup in seen_lines:
                            continue
                        seen_lines.add(dedup)
                        via = ("" if func is seed
                               else f" (reached from {seed.name} via {func.name})")
                        yield Finding(self.id, source.rel, line,
                                      f"{seed.name}: {message}{via}")
