"""RL001 — the simulation core must be bit-deterministic.

The parallel runner, the on-disk cache and the event/cycle engine
differential all assume that simulating the same (config, workload, trace)
twice — on any host, in any process — produces the same bits.  Wall-clock
reads, OS entropy, the process-global ``random`` RNG and iteration over bare
``set`` literals (whose order is hash-seed-dependent for strings) each break
that silently.  This rule bans them statically in the simulation core
packages; ``tests/test_parallel_determinism.py`` and
``tests/test_event_driven.py`` are the runtime backstops that would otherwise
catch the damage only after an expensive differential run.

Seeded randomness is fine: ``random.Random(seed)`` instances are exactly how
workload generation is *meant* to get deterministic variety.  Only the
module-level functions (which share one unseeded global RNG) and a
zero-argument ``random.Random()`` are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.analysis.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: Packages (path prefixes) and single files forming the simulation core.
SCOPE_PREFIXES = (
    "src/repro/pipeline/",
    "src/repro/frontend/",
    "src/repro/backend/",
    "src/repro/memory/",
    "src/repro/rename/",
    "src/repro/lvp/",
    "src/repro/workloads/",
)

#: Individual files in scope beyond the package prefixes.
SCOPE_FILES = ("src/repro/analysis/load_inspector.py",)

#: Dotted call suffixes that read wall-clock time or OS entropy.
BANNED_CALLS = {
    "time.time": "reads wall-clock time",
    "time.time_ns": "reads wall-clock time",
    "time.monotonic": "reads a host clock",
    "time.monotonic_ns": "reads a host clock",
    "time.perf_counter": "reads a host clock",
    "time.perf_counter_ns": "reads a host clock",
    "datetime.now": "reads wall-clock time",
    "datetime.utcnow": "reads wall-clock time",
    "datetime.today": "reads wall-clock time",
    "date.today": "reads wall-clock time",
    "os.urandom": "reads OS entropy",
    "uuid.uuid1": "depends on host and clock",
    "uuid.uuid4": "reads OS entropy",
}

#: ``random.<fn>`` module-level functions backed by the shared global RNG.
GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "seed",
})


def _banned_call(node: ast.Call) -> Iterator[str]:
    dotted = dotted_name(node.func)
    if dotted is None:
        return
    for suffix, why in BANNED_CALLS.items():
        if dotted == suffix or dotted.endswith("." + suffix):
            yield f"call to {dotted} {why}; simulation outcomes must depend only on config+workload+trace"
            return
    if dotted == "random.SystemRandom" or dotted.endswith(".random.SystemRandom"):
        yield "random.SystemRandom draws OS entropy; use a seeded random.Random"
        return
    if dotted == "random.Random" and not node.args:
        yield ("random.Random() without a seed argument is nondeterministic; "
               "derive the seed from the workload spec")
        return
    if dotted.startswith("random.") and dotted[len("random."):] in GLOBAL_RANDOM_FUNCS:
        yield (f"module-level {dotted} uses the process-global unseeded RNG; "
               f"thread a seeded random.Random instance through instead")


def _set_iteration_sites(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """``(line, what)`` for every loop/comprehension iterating a bare set."""
    for node in ast.walk(tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(generator.iter for generator in node.generators)
        for candidate in iters:
            if isinstance(candidate, ast.Set):
                yield candidate.lineno, "a set literal"
            elif isinstance(candidate, ast.SetComp):
                yield candidate.lineno, "a set comprehension"


@register
class DeterminismRule(Rule):
    """Ban nondeterministic APIs and set-order iteration in the core model."""

    id = "RL001"
    title = ("simulation core must not read clocks/entropy, use the global "
             "RNG, or iterate bare sets")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Scan the core packages for banned calls and bare-set iteration."""
        for source in ctx.files_under(*SCOPE_PREFIXES, *SCOPE_FILES):
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call):
                    for message in _banned_call(node):
                        yield Finding(self.id, source.rel, node.lineno, message)
            for line, what in _set_iteration_sites(source.tree):
                yield Finding(
                    self.id, source.rel, line,
                    f"iteration over {what}: set order is hash-dependent "
                    f"(PYTHONHASHSEED) and differs across processes; sort it "
                    f"or use a list/tuple")
