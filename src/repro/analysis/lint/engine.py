"""Rule engine for ``repro lint`` — AST-based repo invariant checking.

The repo's core contracts (engine bit-identity, cache-key purity, schema
versioning, env-var registration) are documented in ``docs/ARCHITECTURE.md``
and backstopped by differential tests, but those tests run *after* a
simulation; this engine catches the whole violation class statically, at lint
time.  It owns everything rule-agnostic:

* **File scanning** — every ``*.py`` under :data:`SCAN_ROOTS` relative to a
  repository root is read and parsed once into a :class:`SourceFile` (source
  text, AST, ignore-comment map).  Rules never touch the filesystem directly,
  which is what lets the fixture tests in ``tests/test_lint.py`` run every
  rule against a tiny repo-shaped tree in ``tmp_path``.
* **The allowlist mechanism** — a ``# repro-lint: ignore[RL001]`` comment on
  a flagged line suppresses that line's findings for the named rules.
  Unknown rule names in an ignore comment are an **error**
  (:data:`META_RULE_ID`), never silence: a typoed allowlist must not rot into
  an un-enforced invariant.  Malformed ``repro-lint`` comments and files that
  fail to parse error the same way.
* **Reporting** — :class:`LintReport` renders both the human form
  (``path:line: RLxxx message``) and the ``--json`` form consumed by the CI
  artifact upload.

Rules are plain objects registered with :func:`register`; the project rules
live in the sibling modules (``determinism``, ``cache_purity``, ``schema``,
``env_registry``, ``engine_parity``, ``hygiene``) and are imported by the
package ``__init__``, which is also what makes ``run_lint`` see them.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type, Union

#: Rule id reserved for the lint framework itself: unparseable files,
#: malformed ``repro-lint`` comments and unknown rule names in an ignore
#: comment all report under this id.  Meta findings are never suppressible —
#: an ignore comment cannot vouch for its own spelling.
META_RULE_ID = "RL000"

#: Directories (relative to the repository root) scanned for Python sources.
#: ``tests/`` is deliberately absent: the lint fixtures seeded there violate
#: the rules on purpose.
SCAN_ROOTS = ("src/repro", "benchmarks", "examples")

#: A well-formed allowlist comment: ``# repro-lint: ignore[RL001]`` or
#: ``# repro-lint: ignore[RL001, RL004]`` anywhere in a comment token.
_IGNORE_RE = re.compile(r"repro-lint:\s*ignore\[([^\]]*)\]")

#: A comment is treated as a lint directive when it contains the marker
#: immediately followed by a colon (which distinguishes directives from prose
#: that merely mentions the tool); a directive that is not a well-formed
#: ignore comment is reported as malformed rather than silently skipped.
_MARKER = "repro-lint"
_DIRECTIVE_RE = re.compile(r"repro-lint\s*:")

#: Shape of a single rule name inside an ignore comment's brackets.
_RULE_NAME_RE = re.compile(r"RL\d{3}\Z")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding: a rule id anchored to a file and line.

    ``path`` is repository-root-relative and POSIX-flavoured, so findings are
    stable across hosts and usable as CI annotations.
    """

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable form (the ``--json`` reporter's element type)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class SourceFile:
    """One scanned Python file: text, AST and the parsed ignore comments.

    Parsing happens eagerly in the constructor; a file that fails to parse
    (or tokenize) records the error instead of raising, and the engine turns
    it into a :data:`META_RULE_ID` finding so a syntax error in a scanned
    file fails the lint run loudly instead of silently shrinking coverage.
    """

    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        #: Line number -> rule ids allowlisted on that line.
        self.ignores: Dict[int, Set[str]] = {}
        #: ``(line, message)`` pairs for malformed ``repro-lint`` comments.
        self.ignore_problems: List[Tuple[int, str]] = []
        self.syntax_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(self.text)
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = f"file does not parse: {error.msg} (line {error.lineno})"
            return
        self._parse_ignore_comments()

    def _parse_ignore_comments(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # ast.parse succeeded, so this should be unreachable; recorded
            # rather than raised for the same loudness-over-crash reason.
            self.syntax_error = "file does not tokenize"
            return
        for token in tokens:
            if (token.type != tokenize.COMMENT
                    or not _DIRECTIVE_RE.search(token.string)):
                continue
            line = token.start[0]
            match = _IGNORE_RE.search(token.string)
            if match is None:
                self.ignore_problems.append(
                    (line, f"malformed {_MARKER} comment {token.string.strip()!r}; "
                           f"expected '# {_MARKER}: ignore[RL001]'"))
                continue
            names = [name.strip() for name in match.group(1).split(",")]
            names = [name for name in names if name]
            if not names:
                self.ignore_problems.append(
                    (line, f"empty ignore list in {_MARKER} comment"))
                continue
            self.ignores.setdefault(line, set()).update(names)

    def ignored_rules(self, line: int) -> Set[str]:
        """The rule ids allowlisted on ``line`` (empty set when none)."""
        return self.ignores.get(line, set())


class LintContext:
    """Everything a rule may look at: the scanned files and the repo root.

    The root is exposed for the two rules that read non-Python inputs (the
    schema manifest and ``docs/ENVIRONMENT.md``); Python sources must go
    through :meth:`file`/:meth:`files_under` so fixture trees behave exactly
    like the real repository.
    """

    def __init__(self, root: Path, files: Sequence[SourceFile]):
        self.root = root
        self.files = list(files)
        self._by_rel = {source.rel: source for source in self.files}

    def file(self, rel: str) -> Optional[SourceFile]:
        """The scanned file at root-relative POSIX path ``rel``, or None."""
        return self._by_rel.get(rel)

    def files_under(self, *prefixes: str) -> Iterator[SourceFile]:
        """Every scanned file whose path starts with one of ``prefixes``."""
        for source in self.files:
            if any(source.rel.startswith(prefix) for prefix in prefixes):
                yield source


class Rule:
    """Base class for lint rules: an id, a one-line title, and a check.

    Subclasses set :attr:`id`/:attr:`title` and implement :meth:`check`
    yielding :class:`Finding` objects; the engine owns ignore-comment
    suppression, ordering and reporting.
    """

    #: Unique rule identifier (``RL`` + three digits), used in ignore comments.
    id: str = ""
    #: One-line description shown by reporters and ``--json`` output.
    title: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Yield every finding for this rule over the scanned tree."""
        raise NotImplementedError


#: Registry of project rules in registration (= display) order.
_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (instantiated once) to the registry."""
    rule = rule_cls()
    if not _RULE_NAME_RE.match(rule.id or ""):
        raise ValueError(f"rule id {rule.id!r} does not match RLxxx")
    if rule.id in _REGISTRY or rule.id == META_RULE_ID:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registered project rules, id -> instance, in registration order."""
    return dict(_REGISTRY)


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run: findings plus enough context to act on them."""

    root: str
    rules: List[str]
    files_scanned: int
    findings: List[Finding]

    @property
    def ok(self) -> bool:
        """True when the run produced no findings."""
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """The ``--json`` payload (uploaded as a CI artifact)."""
        return {
            "root": self.root,
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render(self) -> str:
        """The human-readable report: one line per finding plus a summary."""
        lines = [str(finding) for finding in self.findings]
        if self.findings:
            lines.append(f"repro lint: {len(self.findings)} finding(s) in "
                         f"{self.files_scanned} scanned file(s) "
                         f"(rules: {', '.join(self.rules)})")
        else:
            lines.append(f"repro lint: clean ({self.files_scanned} file(s) "
                         f"scanned, rules: {', '.join(self.rules)})")
        return "\n".join(lines)


def _scan_files(root: Path) -> List[SourceFile]:
    files: List[SourceFile] = []
    for scan_root in SCAN_ROOTS:
        base = root / scan_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            files.append(SourceFile(root, path))
    return files


def load_context(root: Union[str, Path]) -> LintContext:
    """Scan the tree at ``root`` into a :class:`LintContext`.

    The same scan :func:`run_lint` performs, exposed so callers needing rule
    internals against a live tree — the manifest writer, the in-memory drift
    tests — share one file-collection path with the real lint run.
    """
    root = Path(root)
    return LintContext(root, _scan_files(root))


def _meta_findings(files: Sequence[SourceFile], known: Set[str]) -> Iterator[Finding]:
    """Framework-level findings: parse failures and broken ignore comments."""
    for source in files:
        if source.syntax_error is not None:
            yield Finding(META_RULE_ID, source.rel, 1, source.syntax_error)
        for line, message in source.ignore_problems:
            yield Finding(META_RULE_ID, source.rel, line, message)
        for line, names in sorted(source.ignores.items()):
            for name in sorted(names - known):
                yield Finding(
                    META_RULE_ID, source.rel, line,
                    f"unknown rule {name!r} in ignore comment (known rules: "
                    f"{', '.join(sorted(known))}); a typo here would silently "
                    f"disable nothing — fix the name or drop the comment")


def run_lint(root: Union[str, Path],
             rule_ids: Optional[Sequence[str]] = None) -> LintReport:
    """Run the (selected) registered rules over the tree at ``root``.

    ``rule_ids=None`` runs every registered rule; an explicit selection must
    name known rules (:class:`ValueError` otherwise — a typoed ``--rule`` must
    not report a clean run it never performed).  Meta checks (ignore-comment
    hygiene, parse failures) always run regardless of the selection, so an
    unknown rule name in an allowlist comment is an error even when linting a
    single rule.  Findings on a line carrying ``# repro-lint: ignore[<id>]``
    for their rule id are suppressed; :data:`META_RULE_ID` findings are not
    suppressible.
    """
    root = Path(root)
    registry = all_rules()
    if rule_ids is None:
        selected = list(registry.values())
    else:
        unknown = sorted(set(rule_ids) - set(registry))
        if unknown:
            raise ValueError(f"unknown lint rules {unknown}; "
                             f"available: {sorted(registry)}")
        # Preserve registry order regardless of the selection's order.
        selected = [rule for rid, rule in registry.items() if rid in set(rule_ids)]
    files = _scan_files(root)
    ctx = LintContext(root, files)
    known = set(registry) | {META_RULE_ID}
    findings = list(_meta_findings(files, known))
    for rule in selected:
        for finding in rule.check(ctx):
            source = ctx.file(finding.path)
            if source is not None and finding.rule in source.ignored_rules(finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule,
                                       finding.message))
    return LintReport(root=str(root),
                      rules=[rule.id for rule in selected],
                      files_scanned=len(files),
                      findings=findings)


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted form of a Name/Attribute chain (``a.b.c``), else None.

    Chains not rooted at a plain name (calls, subscripts) return None —
    shared by several rules, which match banned APIs by dotted suffix.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
