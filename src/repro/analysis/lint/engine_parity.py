"""RL005 — event-engine-only state must come from an explicit allowlist.

The event and cycle engines are bit-identical by construction: the event
engine may keep *private bookkeeping* (the completion heap, parked-waiter
lists, quiescence flags) but must never grow architectural state the
reference stepper lacks, or the differential tests in
``tests/test_event_driven.py`` stop proving what they claim.  This rule makes
the boundary mechanical: inside any branch of ``pipeline/cpu.py`` guarded by
an ``engine == "event"`` comparison, every ``self.<attr>`` store must target
a name in :data:`EVENT_ONLY_STATE`.  Adding event-engine state is still easy
— extend the allowlist in the same diff — but it becomes an explicit,
reviewable widening of the bit-identity surface instead of a silent one.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from repro.analysis.lint.engine import Finding, LintContext, Rule, register

#: The guarded file.
CPU_REL = "src/repro/pipeline/cpu.py"

#: Private event-engine bookkeeping ``OutOfOrderCore`` may legitimately write
#: under an ``engine == "event"`` guard.  Everything here is reconstructible
#: from the architectural state (heap of in-flight completions, parked RS
#: waiter lists, quiescence flags) — i.e. skipping-related, never
#: timing-relevant on its own.  Widen it consciously, in the same diff as the
#: differential test that proves the new state keeps the engines
#: bit-identical.
EVENT_ONLY_STATE = frozenset({
    "_completion_heap",
    "_heap_counter",
    "_rs_waiting",
    "_rs_woken",
    "_rs_slot_counter",
    "_issue_quiescent",
    "_park_blocked",
    "stepped_cycles",
})


def _event_comparison(test: ast.expr) -> Iterator[bool]:
    """Yield ``is_event_branch`` for every engine comparison in an ``if`` test.

    Matches ``<x>.engine == "event"`` / ``engine != "event"`` (either operand
    order) anywhere inside the test; ``==`` selects the body as the event
    branch (True), ``!=`` the ``else`` branch (False).
    """
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        operands = [node.left] + list(node.comparators)
        mentions_engine = any(
            (isinstance(op, ast.Attribute) and op.attr == "engine")
            or (isinstance(op, ast.Name) and op.id == "engine")
            for op in operands)
        compares_event = any(
            isinstance(op, ast.Constant) and op.value == "event"
            for op in operands)
        if mentions_engine and compares_event:
            yield isinstance(node.ops[0], ast.Eq)


def _self_stores(statements: List[ast.stmt]) -> Iterator[Tuple[int, str]]:
    """``(line, attribute)`` for every ``self.<attr>`` store in a branch."""
    for statement in statements:
        for node in ast.walk(statement):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    yield node.lineno, target.attr


@register
class EngineParityRule(Rule):
    """Restrict engine-guarded attribute stores to the declared event state."""

    id = "RL005"
    title = ("attribute stores under engine == 'event' guards in "
             "pipeline/cpu.py must target the allowlisted event-only state")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Find engine-guarded ``if`` branches and audit their self-stores."""
        source = ctx.file(CPU_REL)
        if source is None or source.tree is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.If):
                continue
            for is_event_branch in _event_comparison(node.test):
                branch = node.body if is_event_branch else node.orelse
                for line, attr in _self_stores(branch):
                    if attr in EVENT_ONLY_STATE:
                        continue
                    yield Finding(
                        self.id, source.rel, line,
                        f"store to self.{attr} under an engine == 'event' "
                        f"guard: not in the declared event-only state set "
                        f"(EVENT_ONLY_STATE in analysis/lint/engine_parity.py). "
                        f"New event-engine state widens the bit-identity "
                        f"surface — allowlist it in the same diff as the "
                        f"differential test that covers it")
                break  # one matching comparison per If is enough
