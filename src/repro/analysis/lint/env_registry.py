"""RL004 — every ``REPRO_*`` env var must be registered in the docs, and vice versa.

``docs/ENVIRONMENT.md`` is the authoritative contract for runtime knobs: each
row states the variable's consumer, default, cache-key relevance and
malformed-value behaviour.  The contract only works if it is complete in both
directions — a knob read in code but missing a row is undocumented behaviour,
and a row whose variable nothing reads any more is doc rot (exactly the drift
class the PR 7 stale-docstring episode demonstrated).

The code side is collected from the AST: every string literal that *is* a
``REPRO_*`` name (full match, so prose mentioning a variable inside a longer
docstring does not count) in any scanned source — ``src/repro``, plus
``benchmarks/`` and ``examples/``, which read the two ``REPRO_BENCH_*``
session knobs.  The docs side is the ``| `REPRO_X` | ...`` table rows.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from repro.analysis.lint.engine import Finding, LintContext, Rule, register

#: Repo-relative path of the registry this rule reconciles against.
DOCS_REL = "docs/ENVIRONMENT.md"

#: A string literal that *is* an env-var name (not prose mentioning one).
_ENV_NAME_RE = re.compile(r"REPRO_[A-Z0-9_]+\Z")

#: A registry table row:  ``| `REPRO_X` | consumer | ...``.
_ROW_RE = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`")


def _code_references(ctx: LintContext) -> Dict[str, List[Tuple[str, int]]]:
    """Every ``REPRO_*`` literal in scanned sources: name -> [(path, line)]."""
    references: Dict[str, List[Tuple[str, int]]] = {}
    for source in ctx.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                    and _ENV_NAME_RE.fullmatch(node.value)):
                references.setdefault(node.value, []).append(
                    (source.rel, node.lineno))
    return references


def _documented_rows(ctx: LintContext) -> Dict[str, int]:
    """Registry rows in ``docs/ENVIRONMENT.md``: variable name -> line number."""
    rows: Dict[str, int] = {}
    path = ctx.root / DOCS_REL
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return rows
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ROW_RE.match(line.strip())
        if match and match.group(1) not in rows:
            rows[match.group(1)] = lineno
    return rows


@register
class EnvRegistryRule(Rule):
    """Reconcile ``REPRO_*`` reads in code with the docs/ENVIRONMENT.md table."""

    id = "RL004"
    title = ("every REPRO_* variable read in code needs a docs/ENVIRONMENT.md "
             "row, and every row a reader")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Two-way diff of code references against registry rows."""
        references = _code_references(ctx)
        rows = _documented_rows(ctx)
        if not rows and references:
            yield Finding(self.id, DOCS_REL, 1,
                          f"{DOCS_REL} missing or has no registry rows while "
                          f"{len(references)} REPRO_* variable(s) are read in "
                          f"code: {', '.join(sorted(references))}")
            return
        for name in sorted(set(references) - set(rows)):
            path, line = references[name][0]
            yield Finding(
                self.id, path, line,
                f"{name} is read here but has no row in {DOCS_REL}; every "
                f"runtime knob must document its default, cache-key "
                f"relevance and malformed-value behaviour")
        for name in sorted(set(rows) - set(references)):
            yield Finding(
                self.id, DOCS_REL, rows[name],
                f"{name} is documented but nothing under "
                f"src/repro, benchmarks/ or examples/ reads it; drop the row "
                f"or restore the reader")
