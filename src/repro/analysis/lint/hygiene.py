"""RL006 — no bare ``except:`` or broad silent swallows in the ops-facing layer.

``experiments/`` and the CLI are where failures must surface: a bare
``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and turns an
operator's Ctrl-C into a hang, and an ``except Exception: pass`` silently
eats the very diagnostics a multi-host sweep needs.  Narrow, deliberate
swallows (``except OSError: pass`` around best-effort ledger I/O) are
idiomatic in this layer and stay legal; what this rule bans is the
*unbounded* catch:

* a handler with no exception type at all, and
* a handler catching ``Exception``/``BaseException`` whose body is nothing
  but ``pass``/``...``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint.engine import Finding, LintContext, Rule, register

#: Where the rule applies: the experiment/ops layer and the CLI.
SCOPE = ("src/repro/experiments/", "src/repro/cli.py")

#: Exception names considered an unbounded catch.
_BROAD = frozenset({"Exception", "BaseException"})


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    names = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [element.id for element in handler.type.elts
                 if isinstance(element, ast.Name)]
    return any(name in _BROAD for name in names)


def _is_silent(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(statement, ast.Pass)
        or (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis)
        for statement in handler.body)


@register
class HygieneRule(Rule):
    """Ban bare excepts and silent broad swallows in experiments/ and cli.py."""

    id = "RL006"
    title = ("experiments/ and cli.py must not use bare except or silently "
             "swallow Exception/BaseException")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Audit every exception handler in the ops-facing modules."""
        for source in ctx.files_under(*SCOPE):
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield Finding(
                        self.id, source.rel, node.lineno,
                        "bare except: catches KeyboardInterrupt/SystemExit "
                        "too; name the exceptions this code can actually "
                        "handle")
                elif _catches_broad(node) and _is_silent(node):
                    yield Finding(
                        self.id, source.rel, node.lineno,
                        "except Exception/BaseException with a pass-only "
                        "body silently swallows every failure; narrow the "
                        "type or handle/log the error")
