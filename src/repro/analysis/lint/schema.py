"""RL003 — serialized ``to_dict`` key sets must not drift without a schema bump.

Every record persisted by the cache/bench layer round-trips through a
``to_dict`` method, and the compatibility contract (``docs/ARCHITECTURE.md``)
says any timing-affecting serialization change must bump
``SCHEMA_VERSION`` (cache entries) or ``BENCH_SCHEMA_VERSION`` (bench
reports) so stale entries read as misses instead of decoding wrongly.  The
PR 7 stale-docstring episode showed prose contracts drift; this rule makes
the contract mechanical:

* The key set of every ``to_dict`` in :data:`SERIALIZED_MODULES` is
  extracted from the AST (string keys of returned dict literals, ``d["k"] =``
  assignments, plus dataclass field names when the method builds on
  ``dataclasses.asdict``).
* The result is compared against the committed manifest
  (:data:`MANIFEST_REL`).  Key drift while the schema versions are unchanged
  is a finding; a version bump in the same tree unlocks the drift but then
  *requires* refreshing the manifest (``repro lint --refresh-manifest``), so
  the committed manifest always records the current versions and key sets.

The runtime backstop is ``tests/test_serialization.py``'s round-trip suite:
it proves values survive; this rule proves the *shape* cannot change
unnoticed.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: Repo-relative path of the committed manifest.
MANIFEST_REL = "src/repro/analysis/lint/schema_manifest.json"

#: Modules whose ``to_dict`` payloads reach the on-disk cache or the bench
#: reports — i.e. whose key sets the schema versions vouch for.  A
#: ``to_dict`` elsewhere (e.g. the lint report itself) is not persisted
#: key material and is deliberately out of scope.
SERIALIZED_MODULES = (
    "src/repro/pipeline/stats.py",
    "src/repro/pipeline/smt.py",
    "src/repro/workloads/suites.py",
    "src/repro/experiments/orchestrator.py",
    "src/repro/experiments/warehouse.py",
    "src/repro/analysis/load_inspector.py",
)

#: Where the guarded schema versions are defined: manifest field ->
#: (module, module-level constant name).
VERSION_SOURCES = {
    "schema_version": ("src/repro/experiments/cache.py", "SCHEMA_VERSION"),
    "bench_schema_version": ("src/repro/experiments/bench.py",
                             "BENCH_SCHEMA_VERSION"),
    "warehouse_schema_version": ("src/repro/experiments/warehouse.py",
                                 "WAREHOUSE_SCHEMA_VERSION"),
}


def _dataclass_field_names(cls: ast.ClassDef) -> List[str]:
    """Annotated field names of a (presumed) dataclass body, ClassVars excluded."""
    names: List[str] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        annotation = node.annotation
        dotted = dotted_name(annotation.value if isinstance(annotation, ast.Subscript)
                             else annotation)
        if dotted is not None and dotted.split(".")[-1] == "ClassVar":
            continue
        names.append(node.target.id)
    return names


def _to_dict_keys(cls: ast.ClassDef, method: ast.FunctionDef) -> List[str]:
    """The statically visible string keys produced by one ``to_dict``.

    The union of: string keys of every dict literal in the body, subscript
    assignments with a constant string key, and — when the body calls
    ``dataclasses.asdict`` — the class's dataclass field names.  Dynamically
    computed keys (dict comprehensions over runtime data) are invisible by
    design: the manifest pins the schema's fixed shape, not its payload.
    """
    keys: Set[str] = set()
    uses_asdict = False
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    keys.add(target.slice.value)
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None and dotted.split(".")[-1] == "asdict":
                uses_asdict = True
    if uses_asdict:
        keys.update(_dataclass_field_names(cls))
    return sorted(keys)


def _module_constant(ctx: LintContext, rel: str, name: str) -> Optional[int]:
    """A module-level integer constant read from the AST, or None."""
    source = ctx.file(rel)
    if source is None or source.tree is None:
        return None
    for node in source.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(node.value, ast.Constant):
                value = node.value.value
                if isinstance(value, int):
                    return value
    return None


def extract_manifest(ctx: LintContext) -> Dict[str, object]:
    """The current tree's manifest: schema versions + per-class key sets.

    Classes are keyed ``<repo-relative path>::<class name>``; the mapping is
    sorted, so the JSON form is byte-stable and ``--refresh-manifest`` is
    idempotent.
    """
    to_dict_keys: Dict[str, List[str]] = {}
    for rel in SERIALIZED_MODULES:
        source = ctx.file(rel)
        if source is None or source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for member in node.body:
                if isinstance(member, ast.FunctionDef) and member.name == "to_dict":
                    to_dict_keys[f"{rel}::{node.name}"] = _to_dict_keys(node, member)
    manifest: Dict[str, object] = {
        "to_dict_keys": {name: to_dict_keys[name] for name in sorted(to_dict_keys)},
    }
    for field, (rel, constant) in VERSION_SOURCES.items():
        manifest[field] = _module_constant(ctx, rel, constant)
    return manifest


def _class_line(ctx: LintContext, class_key: str) -> Tuple[str, int]:
    """``(path, line)`` anchoring a manifest class key to its definition."""
    rel, _, class_name = class_key.partition("::")
    source = ctx.file(rel)
    if source is not None and source.tree is not None:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return rel, node.lineno
    return rel or MANIFEST_REL, 1


def compare_manifest(ctx: LintContext, current: Dict[str, object],
                     committed: Optional[Dict[str, object]],
                     rule_id: str) -> List[Finding]:
    """Findings for the drift between ``current`` and the ``committed`` manifest.

    Split out of :meth:`SchemaManifestRule.check` so tests can exercise the
    gate against an in-memory mutated manifest without touching the committed
    file (the acceptance criterion: mutate a ``to_dict`` key set, assert the
    rule reports drift absent a schema bump).
    """
    if committed is None:
        return [Finding(rule_id, MANIFEST_REL, 1,
                        "schema manifest missing or unreadable; run "
                        "`repro lint --refresh-manifest` and commit the result")]
    versions_bumped = any(
        current.get(field) != committed.get(field) for field in VERSION_SOURCES)
    current_keys: Dict[str, List[str]] = dict(current.get("to_dict_keys", {}))
    committed_keys: Dict[str, List[str]] = dict(committed.get("to_dict_keys", {}))
    if versions_bumped:
        # The bump unlocks any drift, but the manifest must be regenerated in
        # the same tree so the next drift is judged against *these* versions.
        return [Finding(
            rule_id, MANIFEST_REL, 1,
            f"schema version changed "
            f"({committed.get('schema_version')}/"
            f"{committed.get('bench_schema_version')} -> "
            f"{current.get('schema_version')}/"
            f"{current.get('bench_schema_version')}) but the manifest still "
            f"records the old one; run `repro lint --refresh-manifest`")]
    findings: List[Finding] = []
    for class_key in sorted(set(current_keys) | set(committed_keys)):
        now = current_keys.get(class_key)
        then = committed_keys.get(class_key)
        if now == then:
            continue
        path, line = _class_line(ctx, class_key)
        if then is None:
            detail = "new serialized type not in the manifest"
        elif now is None:
            detail = "serialized type removed but still in the manifest"
        else:
            added = sorted(set(now) - set(then))
            removed = sorted(set(then) - set(now))
            parts = []
            if added:
                parts.append(f"added {added}")
            if removed:
                parts.append(f"removed {removed}")
            detail = f"to_dict keys drifted ({'; '.join(parts)})"
        findings.append(Finding(
            rule_id, path, line,
            f"{class_key.partition('::')[2]}: {detail} without a "
            f"SCHEMA_VERSION/BENCH_SCHEMA_VERSION bump; bump the version "
            f"(stale entries must read as misses) and run "
            f"`repro lint --refresh-manifest`"))
    return findings


def load_manifest(root: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The committed manifest under ``root``, or None when missing/corrupt."""
    path = Path(root) / MANIFEST_REL
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def refresh_manifest(root: Union[str, Path],
                     ctx: Optional[LintContext] = None) -> Path:
    """Regenerate the committed manifest from the tree at ``root``.

    Backs ``repro lint --refresh-manifest``.  The output is byte-stable
    (sorted keys, two-space indent, trailing newline) so reruns never dirty
    the working tree.
    """
    if ctx is None:
        from repro.analysis.lint.engine import load_context
        ctx = load_context(root)
    manifest = extract_manifest(ctx)
    path = Path(root) / MANIFEST_REL
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@register
class SchemaManifestRule(Rule):
    """Gate serialized-type key drift on an explicit schema-version bump."""

    id = "RL003"
    title = ("to_dict key sets must match the committed schema manifest "
             "unless SCHEMA_VERSION/BENCH_SCHEMA_VERSION changed")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Compare the tree's extracted manifest against the committed one."""
        return compare_manifest(ctx, extract_manifest(ctx),
                                load_manifest(ctx.root), self.id)
