"""Load Inspector: find global-stable loads in a trace (paper §4.1-4.2, Figs. 3, 23, 24).

The paper's Load Inspector instruments off-the-shelf x86-64 binaries with Pin;
here the same analysis runs over the synthetic dynamic traces.  A static load
is *global-stable* when every one of its dynamic instances fetched the same
value from the same address across the whole trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.isa.instruction import AddressingMode, DynamicInstruction
from repro.workloads.trace import Trace

#: Inter-occurrence distance buckets used by Fig. 3(c)/(d): bucket label ->
#: (inclusive lower bound, exclusive upper bound).
DISTANCE_BUCKETS: Tuple[Tuple[str, int, float], ...] = (
    ("[0-50)", 0, 50),
    ("[50-100)", 50, 100),
    ("[100-250)", 100, 250),
    ("250+", 250, float("inf")),
)


def bucket_for_distance(distance: int) -> str:
    """Return the Fig. 3 bucket label for an inter-occurrence distance."""
    for label, low, high in DISTANCE_BUCKETS:
        if low <= distance < high:
            return label
    return DISTANCE_BUCKETS[-1][0]


class LoadSiteStats:
    """Per-static-load (per-PC) accumulation of dynamic behaviour."""

    __slots__ = ("pc", "addressing_mode", "dynamic_count", "first_address",
                 "first_value", "stable", "last_seq", "distance_buckets",
                 "distinct_addresses")

    def __init__(self, pc: int, addressing_mode: AddressingMode):
        self.pc = pc
        self.addressing_mode = addressing_mode
        self.dynamic_count = 0
        self.first_address: Optional[int] = None
        self.first_value: Optional[int] = None
        self.stable = True
        self.last_seq: Optional[int] = None
        self.distance_buckets: Dict[str, int] = {label: 0 for label, _, _ in DISTANCE_BUCKETS}
        self.distinct_addresses: Set[int] = set()

    def observe(self, dyn: DynamicInstruction) -> None:
        """Record one dynamic instance of this load."""
        self.dynamic_count += 1
        self.distinct_addresses.add(dyn.address)
        if self.first_address is None:
            self.first_address = dyn.address
            self.first_value = dyn.load_value
        elif dyn.address != self.first_address or dyn.load_value != self.first_value:
            self.stable = False
        if self.last_seq is not None:
            distance = dyn.seq - self.last_seq
            self.distance_buckets[bucket_for_distance(distance)] += 1
        self.last_seq = dyn.seq

    @property
    def is_global_stable(self) -> bool:
        """True if every dynamic instance fetched the same value from the same address."""
        return self.stable and self.dynamic_count > 1

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding the per-site statistics."""
        return {
            "pc": self.pc,
            "addressing_mode": self.addressing_mode.value,
            "dynamic_count": self.dynamic_count,
            "first_address": self.first_address,
            "first_value": self.first_value,
            "stable": self.stable,
            "last_seq": self.last_seq,
            "distance_buckets": dict(self.distance_buckets),
            "distinct_addresses": sorted(self.distinct_addresses),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LoadSiteStats":
        """Rebuild per-site statistics from :meth:`to_dict` output."""
        site = cls(int(data["pc"]), AddressingMode(data["addressing_mode"]))
        site.dynamic_count = int(data["dynamic_count"])
        site.first_address = data["first_address"]
        site.first_value = data["first_value"]
        site.stable = bool(data["stable"])
        site.last_seq = data["last_seq"]
        site.distance_buckets.update({str(label): int(count)
                                      for label, count in data["distance_buckets"].items()})
        site.distinct_addresses = set(data["distinct_addresses"])
        return site


class GlobalStableReport:
    """Aggregated Load Inspector results for one trace."""

    def __init__(self, sites: Dict[int, LoadSiteStats], total_instructions: int):
        self.sites = sites
        self.total_instructions = total_instructions

    # -------------------------------------------------------------- primitives

    def total_dynamic_loads(self) -> int:
        """Total dynamic load count across all observed sites."""
        return sum(s.dynamic_count for s in self.sites.values())

    def global_stable_sites(self) -> List[LoadSiteStats]:
        """Every load site classified as global-stable."""
        return [s for s in self.sites.values() if s.is_global_stable]

    def global_stable_pcs(self) -> Set[int]:
        """PCs of global-stable static loads (the Ideal Constable oracle set)."""
        return {s.pc for s in self.global_stable_sites()}

    # ------------------------------------------------------------------ Fig 3a

    def global_stable_dynamic_fraction(self) -> float:
        """Fraction of all dynamic loads that come from global-stable static loads."""
        total = self.total_dynamic_loads()
        if total == 0:
            return 0.0
        stable = sum(s.dynamic_count for s in self.global_stable_sites())
        return stable / total

    # ------------------------------------------------------------------ Fig 3b

    def addressing_mode_breakdown(self) -> Dict[str, float]:
        """Fraction of global-stable dynamic loads using each addressing mode."""
        stable_sites = self.global_stable_sites()
        total = sum(s.dynamic_count for s in stable_sites)
        breakdown = {mode.value: 0.0 for mode in
                     (AddressingMode.PC_RELATIVE, AddressingMode.STACK_RELATIVE,
                      AddressingMode.REG_RELATIVE)}
        if total == 0:
            return breakdown
        for site in stable_sites:
            breakdown[site.addressing_mode.value] += site.dynamic_count / total
        return breakdown

    # ------------------------------------------------------------------ Fig 3c

    def distance_distribution(self) -> Dict[str, float]:
        """Inter-occurrence distance distribution of global-stable loads."""
        counts = {label: 0 for label, _, _ in DISTANCE_BUCKETS}
        for site in self.global_stable_sites():
            for label, count in site.distance_buckets.items():
                counts[label] += count
        total = sum(counts.values())
        if total == 0:
            return {label: 0.0 for label in counts}
        return {label: count / total for label, count in counts.items()}

    # ------------------------------------------------------------------ Fig 3d

    def distance_distribution_by_mode(self) -> Dict[str, Dict[str, float]]:
        """Distance distribution of global-stable loads, split by addressing mode."""
        result: Dict[str, Dict[str, float]] = {}
        for mode in (AddressingMode.PC_RELATIVE, AddressingMode.STACK_RELATIVE,
                     AddressingMode.REG_RELATIVE):
            counts = {label: 0 for label, _, _ in DISTANCE_BUCKETS}
            for site in self.global_stable_sites():
                if site.addressing_mode is not mode:
                    continue
                for label, count in site.distance_buckets.items():
                    counts[label] += count
            total = sum(counts.values())
            if total == 0:
                result[mode.value] = {label: 0.0 for label in counts}
            else:
                result[mode.value] = {label: count / total for label, count in counts.items()}
        return result

    # -------------------------------------------------------------- Fig 23/24

    def dynamic_load_fraction(self) -> float:
        """Dynamic loads as a fraction of all dynamic instructions."""
        if self.total_instructions == 0:
            return 0.0
        return self.total_dynamic_loads() / self.total_instructions

    def summary(self) -> Dict[str, object]:
        """A compact dictionary of the headline Load Inspector numbers."""
        return {
            "total_instructions": self.total_instructions,
            "total_dynamic_loads": self.total_dynamic_loads(),
            "static_loads": len(self.sites),
            "global_stable_static_loads": len(self.global_stable_sites()),
            "global_stable_dynamic_fraction": self.global_stable_dynamic_fraction(),
            "addressing_mode_breakdown": self.addressing_mode_breakdown(),
            "distance_distribution": self.distance_distribution(),
        }

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding the full report.

        Site order is preserved (not sorted): aggregate fractions accumulate
        floats in site order, so round-tripping must not reorder sites or the
        rebuilt report could differ from the original in the last ulp.
        """
        return {
            "total_instructions": self.total_instructions,
            "sites": [site.to_dict() for site in self.sites.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GlobalStableReport":
        """Rebuild a report from :meth:`to_dict` output."""
        sites = {int(entry["pc"]): LoadSiteStats.from_dict(entry)
                 for entry in data["sites"]}
        return cls(sites, int(data["total_instructions"]))


class LoadInspector:
    """Streaming Load Inspector: feed dynamic instructions, then build a report."""

    def __init__(self):
        self._sites: Dict[int, LoadSiteStats] = {}
        self._instructions = 0

    def observe(self, dyn: DynamicInstruction) -> None:
        """Observe one dynamic instruction (loads update the per-PC statistics)."""
        self._instructions += 1
        if not dyn.is_load:
            return
        site = self._sites.get(dyn.pc)
        if site is None:
            site = LoadSiteStats(dyn.pc, dyn.static.addressing_mode())
            self._sites[dyn.pc] = site
        site.observe(dyn)

    def observe_all(self, instructions: Iterable[DynamicInstruction]) -> None:
        """Feed every instruction of an iterable through :meth:`observe`."""
        for dyn in instructions:
            self.observe(dyn)

    def report(self) -> GlobalStableReport:
        """Build the aggregated report for everything observed so far."""
        return GlobalStableReport(dict(self._sites), self._instructions)


def inspect_trace(trace: Trace) -> GlobalStableReport:
    """Run the Load Inspector over a full trace."""
    inspector = LoadInspector()
    inspector.observe_all(trace.instructions)
    return inspector.report()
