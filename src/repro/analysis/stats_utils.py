"""Small statistics helpers used across experiments and reports."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (1.0 for an empty input)."""
    values = list(values)
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def filtered_geomean(values: Iterable[float], default: float = 1.0) -> float:
    """Geometric mean over the strictly positive subset of ``values``.

    Degenerate runs (zero-cycle traces from tiny instruction budgets) can feed
    aggregation paths non-positive ratios that carry no speedup information;
    the figure harnesses use this variant so such runs are excluded instead of
    crashing :func:`geomean`.  Returns ``default`` when nothing positive
    remains.
    """
    positive = [value for value in values if value > 0]
    return geomean(positive) if positive else default


def speedup(baseline_cycles: float, candidate_cycles: float) -> float:
    """Speedup of a candidate over a baseline given cycle counts."""
    if baseline_cycles <= 0 or candidate_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / candidate_cycles


def weighted_fraction(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """Sum(numerators) / sum(denominators), 0.0 when the denominator sum is zero."""
    total = sum(denominators)
    if total == 0:
        return 0.0
    return sum(numerators) / total


def median(values: Iterable[float]) -> float:
    """Median of ``values`` (0.0 for an empty input).

    The bench layer gates on medians, not means: on shared CI hosts a single
    contended run inflates a mean arbitrarily but moves the median of N
    repetitions only when the host is *persistently* loaded.
    """
    data = sorted(values)
    if not data:
        return 0.0
    return _percentile(data, 0.50)


def median_abs_deviation(values: Iterable[float]) -> float:
    """Median absolute deviation around the median (0.0 for < 2 values).

    A robust spread estimate: unlike the standard deviation a single outlier
    repetition cannot blow it up, which is what makes it usable as the noise
    margin of a perf gate fed by a handful of repetitions.
    """
    data = sorted(values)
    if len(data) < 2:
        return 0.0
    center = _percentile(data, 0.50)
    return median(abs(value - center) for value in data)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    interpolated = sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight
    # Rounding (e.g. with subnormal inputs) can push the interpolation outside
    # [lower, upper]; clamp so quantiles always respect the value ordering.
    return min(max(interpolated, sorted_values[lower]), sorted_values[upper])


def box_whisker_summary(values: Iterable[float]) -> Dict[str, float]:
    """Summary matching the paper's box-and-whiskers plots (Figs. 9, 18, 21).

    Returns the quartiles, the 1.5*IQR whiskers (clamped to observed values)
    and the mean.
    """
    data = sorted(values)
    if not data:
        return {"min": 0.0, "q1": 0.0, "median": 0.0, "q3": 0.0, "max": 0.0,
                "mean": 0.0, "whisker_low": 0.0, "whisker_high": 0.0}
    q1 = _percentile(data, 0.25)
    median = _percentile(data, 0.50)
    q3 = _percentile(data, 0.75)
    iqr = q3 - q1
    low_bound = q1 - 1.5 * iqr
    high_bound = q3 + 1.5 * iqr
    whisker_low = min((v for v in data if v >= low_bound), default=data[0])
    whisker_high = max((v for v in data if v <= high_bound), default=data[-1])
    return {
        "min": data[0],
        "q1": q1,
        "median": median,
        "q3": q3,
        "max": data[-1],
        "mean": sum(data) / len(data),
        "whisker_low": whisker_low,
        "whisker_high": whisker_high,
    }
