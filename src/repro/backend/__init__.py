"""Out-of-order backend building blocks: buffers, ports, memory disambiguation."""

from repro.backend.resources import ResourcePool
from repro.backend.ports import ExecutionPorts, PortKind
from repro.backend.dependence import MemoryDependencePredictor
from repro.backend.store_queue import StoreQueue, StoreRecord

__all__ = [
    "ResourcePool",
    "ExecutionPorts",
    "PortKind",
    "MemoryDependencePredictor",
    "StoreQueue",
    "StoreRecord",
]
