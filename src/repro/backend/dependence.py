"""Memory dependence prediction (store-set style) for aggressive OOO load issue.

The baseline issues loads out of order past unresolved stores (Table 2,
"aggressive out-of-order load scheduling with memory dependence prediction").
When that speculation is wrong - a store later resolves to the same address as
a younger, already-executed load - the pipeline flushes from the load and the
offending load PC is trained to wait next time.  Constable's incorrectly
eliminated loads reuse exactly this recovery path (paper §6.5, Fig. 21).
"""

from __future__ import annotations

from typing import Dict


class MemoryDependencePredictor:
    """Tracks load PCs that have violated memory ordering and should wait."""

    def __init__(self, capacity: int = 1024, confidence_max: int = 15,
                 forget_interval: int = 50_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.confidence_max = confidence_max
        self.forget_interval = forget_interval
        self._conflicting: Dict[int, int] = {}
        self._observations = 0
        self.violations_trained = 0

    def should_wait_for_stores(self, load_pc: int) -> bool:
        """True if the load at ``load_pc`` must wait for all older store addresses."""
        return self._conflicting.get(load_pc, 0) > 0

    def train_violation(self, load_pc: int) -> None:
        """Record a memory-ordering violation caused by ``load_pc``."""
        self.violations_trained += 1
        if load_pc not in self._conflicting and len(self._conflicting) >= self.capacity:
            self._conflicting.pop(next(iter(self._conflicting)))
        current = self._conflicting.get(load_pc, 0)
        self._conflicting[load_pc] = min(current + 4, self.confidence_max)

    def observe_safe_execution(self, load_pc: int) -> None:
        """Decay the wait bias when the load executes without conflict."""
        self._observations += 1
        if load_pc in self._conflicting:
            remaining = self._conflicting[load_pc] - 1
            if remaining <= 0:
                del self._conflicting[load_pc]
            else:
                self._conflicting[load_pc] = remaining
        if self.forget_interval and self._observations % self.forget_interval == 0:
            self._conflicting.clear()

    def tracked_loads(self) -> int:
        """Number of load PCs currently tracked as store-conflicting."""
        return len(self._conflicting)
