"""Execution-port model: per-cycle issue bandwidth for ALU, load and store pipes.

The baseline (Table 2) issues six micro-ops per cycle to twelve ports: five
ALU, three load (AGU + load port pairs), two store-address and two store-data.
Constable's headline effect is freeing the *load* ports, so per-cycle load-port
occupancy is also tracked for the Fig. 6 analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class PortKind(enum.Enum):
    """Issue port categories."""

    ALU = "alu"
    LOAD = "load"
    STORE_ADDRESS = "store_address"
    STORE_DATA = "store_data"


@dataclass
class PortConfig:
    """Number of ports of each kind and the overall issue width."""

    issue_width: int = 6
    alu: int = 5
    load: int = 3
    store_address: int = 2
    store_data: int = 2

    def count(self, kind: PortKind) -> int:
        return {
            PortKind.ALU: self.alu,
            PortKind.LOAD: self.load,
            PortKind.STORE_ADDRESS: self.store_address,
            PortKind.STORE_DATA: self.store_data,
        }[kind]


class ExecutionPorts:
    """Per-cycle port arbitration with utilisation statistics."""

    def __init__(self, config: PortConfig = PortConfig()):
        self.config = config
        self._available: Dict[PortKind, int] = {}
        self._issued_this_cycle = 0
        self.cycles = 0
        self.load_port_busy_cycles = 0       # cycles with >= 1 load port in use
        self.load_port_uses = 0              # total load issues
        self.issue_counts: Dict[PortKind, int] = {kind: 0 for kind in PortKind}
        self.new_cycle()

    def new_cycle(self) -> None:
        """Start a new cycle: refresh port availability and issue bandwidth."""
        if self._available and self._available[PortKind.LOAD] < self.config.load:
            # At least one load port was claimed during the cycle that just ended.
            self.load_port_busy_cycles += 1
        self._available = {kind: self.config.count(kind) for kind in PortKind}
        self._issued_this_cycle = 0
        self.cycles += 1

    def can_issue(self, kind: PortKind) -> bool:
        """True if a micro-op of this kind can issue this cycle."""
        if self._issued_this_cycle >= self.config.issue_width:
            return False
        return self._available[kind] > 0

    def issue(self, kind: PortKind) -> bool:
        """Claim a port of ``kind`` for this cycle; returns False if none is free."""
        if not self.can_issue(kind):
            return False
        self._available[kind] -= 1
        self._issued_this_cycle += 1
        self.issue_counts[kind] += 1
        if kind is PortKind.LOAD:
            self.load_port_uses += 1
        return True

    def skip_idle_cycles(self, cycles: int) -> None:
        """Account ``cycles`` cycles in which no micro-op issued.

        Used by the event-driven core when it jumps over an idle gap: each
        skipped cycle would have started with a fresh (fully available) port
        set and issued nothing, so the only state the per-cycle reference
        would have changed is the cycle count.  The availability snapshot is
        left untouched — it already reflects an idle cycle, so the busy-cycle
        check in the next :meth:`new_cycle` stays a no-op, exactly as it
        would after stepping the gap cycle by cycle.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.cycles += cycles

    def next_release_cycle(self) -> Optional[int]:
        """Earliest future cycle at which a busy port frees up, if any.

        Ports arbitrate per cycle (every :meth:`new_cycle` restores full
        availability), so there is never a cross-cycle reservation to wait
        for: the answer is always ``None``.  The query exists so the
        event-driven scheduler can treat the port model like every other
        timed resource; a future model with multi-cycle port reservations
        only has to implement it.
        """
        return None

    def loads_issued_this_cycle(self) -> int:
        """Number of load ports already claimed in the current cycle."""
        return self.config.load - self._available[PortKind.LOAD]
