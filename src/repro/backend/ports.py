"""Execution-port model: per-cycle issue bandwidth for ALU, load and store pipes.

The baseline (Table 2) issues six micro-ops per cycle to twelve ports: five
ALU, three load (AGU + load port pairs), two store-address and two store-data.
Constable's headline effect is freeing the *load* ports, so per-cycle load-port
occupancy is also tracked for the Fig. 6 analysis.

The per-kind availability lives in plain integer slots rather than a dict
keyed by :class:`PortKind` — :meth:`new_cycle` runs every simulated cycle and
:meth:`issue` runs on every issued micro-op, so the enum-hashing dictionary
rebuild used to dominate the per-cycle sweep.  The dict-shaped
:attr:`issue_counts` view is kept for reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class PortKind(enum.Enum):
    """Issue port categories."""

    ALU = "alu"
    LOAD = "load"
    STORE_ADDRESS = "store_address"
    STORE_DATA = "store_data"


@dataclass
class PortConfig:
    """Number of ports of each kind and the overall issue width."""

    issue_width: int = 6
    alu: int = 5
    load: int = 3
    store_address: int = 2
    store_data: int = 2

    def count(self, kind: PortKind) -> int:
        """Number of ports of ``kind`` in this configuration."""
        return {
            PortKind.ALU: self.alu,
            PortKind.LOAD: self.load,
            PortKind.STORE_ADDRESS: self.store_address,
            PortKind.STORE_DATA: self.store_data,
        }[kind]


class ExecutionPorts:
    """Per-cycle port arbitration with utilisation statistics."""

    def __init__(self, config: PortConfig = PortConfig()):
        self.config = config
        self._issued_this_cycle = 0
        self.cycles = 0
        self.load_port_busy_cycles = 0       # cycles with >= 1 load port in use
        self.load_port_uses = 0              # total load issues
        # Per-kind issue totals as plain ints (the dict view is rebuilt on
        # demand): ``issue`` runs per micro-op, where enum hashing shows up.
        self._count_alu = 0
        self._count_load = 0
        self._count_sa = 0
        self._count_sd = 0
        #: Earliest scheduled completion among micro-ops issued through the
        #: ports that is still in flight (None when nothing is outstanding or
        #: the stored timer has already expired).  Fed by
        #: :meth:`note_inflight`; read by :meth:`next_release_cycle`.
        self._earliest_inflight: Optional[int] = None
        self._avail_alu = config.alu
        self._avail_load = config.load
        self._avail_sa = config.store_address
        self._avail_sd = config.store_data
        self.new_cycle()

    @property
    def issue_counts(self) -> Dict[PortKind, int]:
        """Total issues per port kind (reporting view)."""
        return {PortKind.ALU: self._count_alu,
                PortKind.LOAD: self._count_load,
                PortKind.STORE_ADDRESS: self._count_sa,
                PortKind.STORE_DATA: self._count_sd}

    def new_cycle(self) -> None:
        """Start a new cycle: refresh port availability and issue bandwidth."""
        config = self.config
        if self._avail_load < config.load:
            # At least one load port was claimed during the cycle that just ended.
            self.load_port_busy_cycles += 1
        self._avail_alu = config.alu
        self._avail_load = config.load
        self._avail_sa = config.store_address
        self._avail_sd = config.store_data
        self._issued_this_cycle = 0
        self.cycles += 1

    def _available_for(self, kind: PortKind) -> int:
        if kind is PortKind.ALU:
            return self._avail_alu
        if kind is PortKind.LOAD:
            return self._avail_load
        if kind is PortKind.STORE_ADDRESS:
            return self._avail_sa
        return self._avail_sd

    def can_issue(self, kind: PortKind) -> bool:
        """True if a micro-op of this kind can issue this cycle."""
        if self._issued_this_cycle >= self.config.issue_width:
            return False
        return self._available_for(kind) > 0

    def issue(self, kind: PortKind) -> bool:
        """Claim a port of ``kind`` for this cycle; returns False if none is free."""
        if self._issued_this_cycle >= self.config.issue_width:
            return False
        if kind is PortKind.ALU:
            if self._avail_alu <= 0:
                return False
            self._avail_alu -= 1
            self._count_alu += 1
        elif kind is PortKind.LOAD:
            if self._avail_load <= 0:
                return False
            self._avail_load -= 1
            self.load_port_uses += 1
            self._count_load += 1
        elif kind is PortKind.STORE_ADDRESS:
            if self._avail_sa <= 0:
                return False
            self._avail_sa -= 1
            self._count_sa += 1
        else:
            if self._avail_sd <= 0:
                return False
            self._avail_sd -= 1
            self._count_sd += 1
        self._issued_this_cycle += 1
        return True

    def skip_idle_cycles(self, cycles: int) -> None:
        """Account ``cycles`` cycles in which no micro-op issued.

        Used by the event-driven core when it jumps over an idle gap: each
        skipped cycle would have started with a fresh (fully available) port
        set and issued nothing, so the only state the per-cycle reference
        would have changed is the cycle count.  The availability snapshot is
        left untouched — it already reflects an idle cycle, so the busy-cycle
        check in the next :meth:`new_cycle` stays a no-op, exactly as it
        would after stepping the gap cycle by cycle.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.cycles += cycles

    def note_inflight(self, completion_cycle: int) -> None:
        """Record that a micro-op issued through the ports completes at
        ``completion_cycle``.

        The core calls this at issue time with the same completion cycle it
        pushes onto its completion heap, which makes the port model a genuine
        owner of its forward timer: :meth:`next_release_cycle` can answer the
        event-driven scheduler from local state instead of ``None``.
        """
        earliest = self._earliest_inflight
        if earliest is None or completion_cycle < earliest:
            self._earliest_inflight = completion_cycle

    def next_release_cycle(self, now: int) -> Optional[int]:
        """Earliest known future cycle at which an in-flight micro-op that
        went through the ports completes, or None.

        Port *bandwidth* renews every cycle (:meth:`new_cycle` restores full
        availability), so the timer tracks the resource's in-flight work
        rather than a cross-cycle reservation: the earliest completion
        recorded by :meth:`note_inflight` that is still in the future.  A
        timer at or before ``now`` has expired and is dropped (the next
        earliest completion is unknown locally — the core's completion heap
        still bounds the skip, so forgetting is safe).
        """
        earliest = self._earliest_inflight
        if earliest is None:
            return None
        if earliest <= now:
            self._earliest_inflight = None
            return None
        return earliest

    def loads_issued_this_cycle(self) -> int:
        """Number of load ports already claimed in the current cycle."""
        return self.config.load - self._avail_load
