"""Counted pipeline resources: ROB, reservation station, load/store buffers, xPRF.

Occupancy-limited resources are what make load *resource* dependence visible:
a load that cannot get an RS entry or a load port stalls allocation for
everything behind it.  Each pool counts allocations (Fig. 18a reports the
reduction in RS allocations) and allocation-stall events.
"""

from __future__ import annotations

from dataclasses import dataclass


class ResourcePool:
    """A capacity-limited resource with allocation statistics."""

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.occupied = 0
        self.total_allocations = 0
        self.allocation_stalls = 0
        self.peak_occupancy = 0

    def available(self) -> int:
        """Number of free entries."""
        return self.capacity - self.occupied

    def can_allocate(self, count: int = 1) -> bool:
        """True if ``count`` entries can be allocated right now."""
        return self.occupied + count <= self.capacity

    def allocate(self, count: int = 1) -> bool:
        """Allocate ``count`` entries; returns False (and records a stall) if full."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self.can_allocate(count):
            self.allocation_stalls += 1
            return False
        self.occupied += count
        self.total_allocations += count
        if self.occupied > self.peak_occupancy:
            self.peak_occupancy = self.occupied
        return True

    def release(self, count: int = 1) -> None:
        """Free ``count`` previously allocated entries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.occupied:
            raise ValueError(f"{self.name}: releasing more entries than occupied")
        self.occupied -= count

    def reset_occupancy(self) -> None:
        """Drop all occupancy (used on pipeline flush of the whole window)."""
        self.occupied = 0

    def utilisation(self) -> float:
        """Current occupancy as a fraction of capacity."""
        return self.occupied / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ResourcePool({self.name}, {self.occupied}/{self.capacity}, "
                f"allocations={self.total_allocations})")


@dataclass
class BackendSizes:
    """Convenience bundle of backend buffer sizes (paper Table 2 defaults)."""

    rob: int = 512
    rs: int = 248
    load_buffer: int = 240
    store_buffer: int = 112
    xprf: int = 32

    def scaled(self, factor: float) -> "BackendSizes":
        """Scale the window depth (Fig. 20b pipeline-depth sensitivity)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return BackendSizes(
            rob=max(16, int(self.rob * factor)),
            rs=max(8, int(self.rs * factor)),
            load_buffer=max(8, int(self.load_buffer * factor)),
            store_buffer=max(8, int(self.store_buffer * factor)),
            xprf=self.xprf,
        )
