"""In-flight store tracking: store-to-load forwarding and ordering checks.

The store queue records every in-flight store's address (once generated) and
data readiness so that (1) younger loads can forward from it, and (2) when a
store's address resolves, younger loads that already obtained a value for an
overlapping address - including loads eliminated by Constable - can be caught
as memory-ordering violations (paper §6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class StoreRecord:
    """One in-flight store."""

    __slots__ = ("seq", "pc", "address", "line_address", "value",
                 "address_ready", "data_ready")

    def __init__(self, seq: int, pc: int):
        self.seq = seq
        self.pc = pc
        self.address: Optional[int] = None
        self.line_address: Optional[int] = None
        self.value: Optional[int] = None
        self.address_ready = False
        self.data_ready = False

    def overlaps(self, address: int) -> bool:
        """Word-granularity overlap check against a load address."""
        if not self.address_ready or self.address is None:
            return False
        return (self.address & ~0x7) == (address & ~0x7)


class StoreQueue:
    """Age-ordered list of in-flight stores."""

    def __init__(self):
        self._stores: List[StoreRecord] = []

    def __len__(self) -> int:
        return len(self._stores)

    def insert(self, seq: int, pc: int) -> StoreRecord:
        """Allocate a record for a renamed store (address/data still unknown)."""
        record = StoreRecord(seq, pc)
        self._stores.append(record)
        return record

    def remove(self, seq: int) -> None:
        """Remove the store with sequence number ``seq`` (at retirement)."""
        self._stores = [s for s in self._stores if s.seq != seq]

    def squash_younger_than(self, seq: int) -> None:
        """Drop all stores younger than ``seq`` (pipeline flush)."""
        self._stores = [s for s in self._stores if s.seq <= seq]

    def clear(self) -> None:
        self._stores = []

    def records(self) -> List[StoreRecord]:
        return list(self._stores)

    # ---------------------------------------------------------------- queries

    def forwarding_candidate(self, load_seq: int, address: int) -> Optional[StoreRecord]:
        """Youngest older store with a resolved, overlapping address."""
        best: Optional[StoreRecord] = None
        for store in self._stores:
            if store.seq < load_seq and store.overlaps(address):
                if best is None or store.seq > best.seq:
                    best = store
        return best

    def has_unresolved_older_store(self, load_seq: int) -> bool:
        """True if any older store has not generated its address yet."""
        for store in self._stores:
            if store.seq < load_seq and not store.address_ready:
                return True
        return False

    def unresolved_older_stores(self, load_seq: int) -> List[StoreRecord]:
        """All older stores whose address is still unknown."""
        return [s for s in self._stores if s.seq < load_seq and not s.address_ready]

    def next_release_cycle(self) -> Optional[int]:
        """Earliest future cycle at which a queue entry's state changes, if any.

        Store records resolve (address/data ready) when the store's execution
        completes, and drain at retirement — both are events the core's
        completion heap and retire stage already schedule, so the queue itself
        never holds a timer of its own and the answer is always ``None``.
        The query gives the event-driven scheduler a uniform surface over all
        timed resources; a model adding, say, a store-buffer drain rate would
        implement it for real.
        """
        return None
