"""In-flight store tracking: store-to-load forwarding and ordering checks.

The store queue records every in-flight store's address (once generated) and
data readiness so that (1) younger loads can forward from it, and (2) when a
store's address resolves, younger loads that already obtained a value for an
overlapping address - including loads eliminated by Constable - can be caught
as memory-ordering violations (paper §6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class StoreRecord:
    """One in-flight store."""

    __slots__ = ("seq", "pc", "address", "line_address", "value",
                 "address_ready", "data_ready", "resolve_cycle")

    def __init__(self, seq: int, pc: int):
        self.seq = seq
        self.pc = pc
        self.address: Optional[int] = None
        self.line_address: Optional[int] = None
        self.value: Optional[int] = None
        self.address_ready = False
        self.data_ready = False
        #: Cycle at which the store's address generation completes (set by the
        #: core at issue time, None while the store sits unissued).  This is
        #: the record's own forward timer: before it fires the address is
        #: unknown, at it the record flips to ``address_ready``.
        self.resolve_cycle: Optional[int] = None

    def overlaps(self, address: int) -> bool:
        """Word-granularity overlap check against a load address."""
        if not self.address_ready or self.address is None:
            return False
        return (self.address & ~0x7) == (address & ~0x7)


class StoreQueue:
    """Age-ordered list of in-flight stores."""

    def __init__(self):
        self._stores: List[StoreRecord] = []

    def __len__(self) -> int:
        return len(self._stores)

    def insert(self, seq: int, pc: int) -> StoreRecord:
        """Allocate a record for a renamed store (address/data still unknown)."""
        record = StoreRecord(seq, pc)
        self._stores.append(record)
        return record

    def remove(self, seq: int) -> None:
        """Remove the store with sequence number ``seq`` (at retirement).

        Stores retire in program order and the queue is age-ordered, so the
        common case is popping the head; the filter fallback keeps the method
        correct for arbitrary callers.
        """
        stores = self._stores
        if stores and stores[0].seq == seq:
            del stores[0]
            return
        self._stores = [s for s in stores if s.seq != seq]

    def squash_younger_than(self, seq: int) -> None:
        """Drop all stores younger than ``seq`` (pipeline flush)."""
        self._stores = [s for s in self._stores if s.seq <= seq]

    def clear(self) -> None:
        """Drop every buffered store record."""
        self._stores = []

    def records(self) -> List[StoreRecord]:
        """A snapshot copy of the buffered store records."""
        return list(self._stores)

    # ---------------------------------------------------------------- queries

    def forwarding_candidate(self, load_seq: int, address: int) -> Optional[StoreRecord]:
        """Youngest older store with a resolved, overlapping address.

        The queue is age-ordered, so scanning youngest-first returns the
        first (and therefore youngest) match; the overlap check is inlined
        from :meth:`StoreRecord.overlaps` (word granularity).
        """
        word = address & ~0x7
        for store in reversed(self._stores):
            if (store.seq < load_seq and store.address_ready
                    and store.address is not None
                    and (store.address & ~0x7) == word):
                return store
        return None

    def has_unresolved_older_store(self, load_seq: int) -> bool:
        """True if any older store has not generated its address yet."""
        for store in self._stores:
            if store.seq < load_seq and not store.address_ready:
                return True
        return False

    def unresolved_older_stores(self, load_seq: int) -> List[StoreRecord]:
        """All older stores whose address is still unknown."""
        return [s for s in self._stores if s.seq < load_seq and not s.address_ready]

    def next_release_cycle(self, now: int) -> Optional[int]:
        """Earliest future cycle at which a queue entry resolves, or None.

        Each record carries its own forward timer (``resolve_cycle``, set by
        the core when the store's address generation issues); the queue's
        next-release answer is the earliest timer still in the future for a
        record whose address has not resolved yet.  Stores that have not
        issued (``resolve_cycle`` is None) have no locally knowable timer —
        their issue waits on events the core's completion heap already bounds.
        Drain at retirement is likewise heap-scheduled (retire follows the
        ROB head's completion), so resolution slots are the only timers the
        queue owns.
        """
        earliest: Optional[int] = None
        for store in self._stores:
            resolve = store.resolve_cycle
            if (not store.address_ready and resolve is not None
                    and resolve > now
                    and (earliest is None or resolve < earliest)):
                earliest = resolve
        return earliest
