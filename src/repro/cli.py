"""``repro`` — console entry point for distributed sweeps and cache operations.

Subcommands:

* ``repro cache stats|gc|clear|verify`` — operate on a (possibly shared) cache
  directory: entry counts and bytes by kind, LRU eviction to a cap, full
  clears, and integrity verification (corrupt/stale/orphan detection against
  the current ``SCHEMA_VERSION``; non-zero exit when anything is wrong).
  ``stats`` and ``gc`` also report/compact the columnar results warehouse
  under ``<dir>/.warehouse/``.
* ``repro query`` — aggregate cached results from the columnar warehouse
  (zero object-store decodes when warehouse files exist; falls back to a
  full object-store scan otherwise): filter by family/suite/config/workload,
  ``--metric``/``--agg``/``--group-by`` for geomean/median-style rollups,
  ``--speedup-over baseline`` for cross-sweep speedup tables, ``--json``
  for the machine-readable form.
* ``repro warehouse rebuild|compact|verify`` — regenerate the warehouse from
  the object store (lossless migration of pre-warehouse caches), fold its
  append-only row files into one columnar segment, and check that the
  warehouse agrees with the cache journal (exit 1 when any journaled entry
  lacks a row; ``--strict`` also fails on rows whose entries were evicted).
* ``repro sweep`` — run the paper's configuration sweep through the shared
  plan → filter-by-shard → execute → commit pipeline.  ``--shard K/N``
  deterministically restricts execution to shard K of N, so N hosts pointed
  at one cache directory cover the full suite disjointly; an unsharded
  ``repro sweep --merge`` afterwards folds the per-shard cache entries into
  results bit-identical to a serial unsharded run and prints the summary.
  With ``--workers > 1`` every job runs under per-job supervision
  (``--max-retries`` pool attempts with backoff, ``--job-timeout`` wall
  clocks, pool rebuilds, in-process degradation); jobs that exhaust every
  recovery path are *dead-lettered* and the sweep exits with code 3 after
  journaling all completed work to the cache.  ``repro sweep --resume``
  points at that journal and re-executes only the missing jobs.  Ctrl-C
  shuts the pool down, flushes the counter ledgers and exits 130.
* ``repro figures <name ...|all>`` — regenerate paper figure harnesses from
  ``repro.experiments.figures``; warm from a swept cache this performs zero
  simulations and zero inspection passes (enforceable via ``--expect-warm``).
* ``repro lint`` — AST-based invariant checker (``repro.analysis.lint``):
  enforces the determinism, cache-key-purity, schema-manifest, env-registry,
  engine-parity and exception-hygiene contracts statically, before a single
  simulation runs.  ``--json`` for the CI artifact form, ``--rule RLxxx`` to
  select rules, ``--refresh-manifest`` to regenerate the committed
  ``schema_manifest.json`` after a deliberate schema bump.  Exits 1 on any
  finding.
* ``repro bench`` — wall-clock performance harness for the simulator core:
  measures every figure family with the per-cycle reference stepper and the
  event-driven cycle-skipping engine, verifies the two are bit-identical, and
  writes a ``BENCH_<timestamp>.json`` report (``--quick`` for the reduced CI
  budgets).  Exits non-zero if the engines diverge.

Every subcommand resolves its cache directory from ``--cache-dir``, then the
``REPRO_CACHE_DIR`` environment variable, then ``.repro-cache``.  ``sweep``
and ``figures`` print the hit/miss counters of the run they just performed and
flush them to the directory's counter ledger on exit, so ``repro cache
stats`` reports real aggregate hit rates across every process — including the
other hosts of a ``--shard K/N`` sweep — that shared the directory.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments.bench import (
    BENCH_FAMILIES,
    BENCH_REPORTS_DIR,
    BENCH_REPS_ENV,
    DEFAULT_BENCH_REPS,
    ORCHESTRATOR_BENCH_FIGURES,
    format_bench_history,
    format_bench_table,
    load_bench_history,
    run_bench,
    run_orchestrator_bench,
    write_bench_report,
)
from repro.experiments.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    SCHEMA_VERSION,
    CacheVerifyReport,
    ReportCache,
    ResultCache,
    compact_persisted_stats,
    persisted_cache_stats,
)
from repro.experiments.warehouse import (
    QUERY_AGGREGATES,
    QUERY_METRICS,
    aggregate_rows,
    compact_warehouse,
    filter_rows,
    load_rows,
    rebuild_warehouse,
    speedup_summary,
    verify_warehouse,
    warehouse_present,
    warehouse_stats,
)
from repro.experiments.figures import (
    FIGURE_HARNESSES,
    STANDALONE_HARNESSES,
    SWEEP_FAMILIES,
    default_runner,
    sweep_smt_configs,
)
from repro.analysis.lint import all_rules, refresh_manifest, run_lint
from repro.experiments.orchestrator import (
    FIGURE_PLANS,
    FigurePlan,
    SweepOrchestrator,
    orchestrate_figures,
)
from repro.experiments.parallel import (
    DEFAULT_MAX_RETRIES,
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
)
from repro.pipeline.cpu import CORE_ENGINES
from repro.experiments.reporting import (
    format_dead_letters,
    format_dedup_stats,
    format_health_report,
    format_persisted_dedup,
    format_persisted_health,
    format_table,
)
from repro.experiments.runner import ExperimentRunner, Shard, SweepExecutionError
from repro.workloads.suites import SUITE_NAMES

#: Exit code for a sweep that dead-lettered at least one job after exhausting
#: every recovery path (retries, pool rebuilds, in-process fallback).  Distinct
#: from 1 (generic failure) and 2 (usage/validation) so wrappers can branch on
#: "partial results are journaled; rerun with --resume".
EXIT_DEAD_LETTER = 3

#: Exit code on Ctrl-C, following the shell convention of 128 + SIGINT.
EXIT_INTERRUPT = 130

#: Environment variable flipping the default of ``--orchestrate`` (``0``,
#: ``false``, ``no`` or ``off`` disable cross-figure orchestration when the
#: flag is not given explicitly).
ORCHESTRATE_ENV = "REPRO_ORCHESTRATE"


def _resolve_cache_dir(arg: Optional[str]) -> str:
    return arg or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def _resolve_orchestrate(flag: Optional[bool]) -> bool:
    """The effective orchestration switch: explicit flag, else env, else on."""
    if flag is not None:
        return flag
    raw = os.environ.get(ORCHESTRATE_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in {"0", "false", "no", "off"}


def _human_bytes(count: int) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.2f} MiB"
    if count >= 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{count} B"


def _add_cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"cache directory (default: ${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})")


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    _add_cache_dir_argument(parser)
    parser.add_argument(
        "--orchestrate", action=argparse.BooleanOptionalAction, default=None,
        help="dedupe shared jobs across figures/configs and execute them as "
             "one continuously fed wave (default: on, or $"
             f"{ORCHESTRATE_ENV})")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (>1 uses the parallel runner)")
    parser.add_argument("--per-suite", type=int, default=2,
                        help="workloads per suite (0 = the full suite)")
    parser.add_argument("--instructions", type=int, default=6000,
                        help="trace length in instructions")
    parser.add_argument("--suites", default=None,
                        help="comma-separated suite subset (default: all suites)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="extra pool attempts per failed job before the "
                             "in-process fallback (parallel runner only; "
                             f"default: ${MAX_RETRIES_ENV} or "
                             f"{DEFAULT_MAX_RETRIES})")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock timeout in seconds (parallel "
                             f"runner only; default: ${JOB_TIMEOUT_ENV} or "
                             "no timeout)")


def _build_runner(args: argparse.Namespace) -> ExperimentRunner:
    suites: Sequence[str] = SUITE_NAMES
    if args.suites:
        suites = [name.strip() for name in args.suites.split(",") if name.strip()]
        unknown = sorted(set(suites) - set(SUITE_NAMES))
        if unknown:
            raise SystemExit(f"unknown suites {unknown}; available: {list(SUITE_NAMES)}")
    per_suite = None if args.per_suite == 0 else args.per_suite
    return default_runner(per_suite=per_suite, instructions=args.instructions,
                          workers=args.workers,
                          cache_dir=_resolve_cache_dir(args.cache_dir),
                          suites=suites,
                          max_retries=args.max_retries,
                          job_timeout=args.job_timeout)


def _print_verify_report(report: CacheVerifyReport, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return
    print(f"cache directory : {report.directory}")
    print(f"schema version  : {report.schema_version}")
    print(f"entries         : {report.entries} ({_human_bytes(report.total_bytes)})")
    for kind in sorted(report.by_kind):
        print(f"  {kind:<14}: {report.by_kind[kind]}")
    print(f"stale schema    : {len(report.stale_schema)}")
    print(f"corrupt         : {len(report.corrupt)}")
    print(f"key mismatch    : {len(report.key_mismatch)}")
    print(f"orphan temp     : {len(report.orphan_temp)}")
    if report.purged:
        print(f"purged          : {report.purged}")
    for label, paths in (("corrupt", report.corrupt),
                         ("key mismatch", report.key_mismatch),
                         ("orphan temp", report.orphan_temp)):
        for path in paths:
            print(f"  {label}: {path}")


def _expect_warm_violated(simulated: int, inspected: int, wave_stats) -> bool:
    """Report (to stderr) and detect an ``--expect-warm`` violation.

    Checks the harness-side counters *and* the orchestrator's own accounting:
    ``wave_stats.executed`` counts jobs the wave actually simulated, which
    catches cold work even when no cache is attached to count stores, and
    ``cold_jobs`` names the offenders so a mis-warmed sweep is debuggable from
    the CI log alone.
    """
    wave_cold = wave_stats.executed if wave_stats is not None else 0
    if simulated <= 0 and inspected <= 0 and wave_cold <= 0:
        return False
    print(f"--expect-warm violated: {simulated} simulations, {inspected} "
          f"inspection passes and {wave_cold} cold orchestrator jobs executed",
          file=sys.stderr)
    if wave_cold:
        for label in wave_stats.cold_jobs:
            print(f"  cold job: {label}", file=sys.stderr)
    return True


# ------------------------------------------------------------------- commands

def _print_persisted_counters(counters: Dict[str, object]) -> None:
    total = counters["total"]
    lookups = total["hits"] + total["misses"]
    rate = f"{total['hits'] / lookups * 100:.1f}%" if lookups else "n/a"
    print(f"persisted counters ({counters['ledgers']} ledgers, all processes):")
    for cache_name in sorted(counters["by_cache"]):
        bucket = counters["by_cache"][cache_name]
        print(f"  {cache_name:<14}: hits {bucket['hits']} misses {bucket['misses']} "
              f"stores {bucket['stores']} evictions {bucket['evictions']}")
    print(f"  {'total':<14}: hits {total['hits']} misses {total['misses']} "
          f"stores {total['stores']} evictions {total['evictions']} "
          f"(hit rate {rate})")
    dedup = counters.get("dedup") or {}
    if dedup.get("waves"):
        print(format_persisted_dedup(dedup))
    health = counters.get("health") or {}
    if health.get("runs"):
        print(format_persisted_health(health))


def _print_runner_health(runner: ExperimentRunner) -> None:
    """Surface supervision events (retries, timeouts, ...) after a sweep.

    Quiet on a healthy run: the table only appears when something had to be
    recovered, so clean CI logs stay clean.
    """
    if runner.health.healthy:
        return
    print(format_health_report(runner.health))
    if runner.health.dead_letters:
        print(format_dead_letters(runner.health.dead_letters))


def _print_failure_summary(error: SweepExecutionError) -> None:
    """Explain a dead-lettered sweep on stderr, including the resume hint."""
    print("sweep failed: job(s) dead-lettered after exhausting retries and "
          "the in-process fallback", file=sys.stderr)
    print(format_dead_letters(error.dead_letters), file=sys.stderr)
    print(format_health_report(error.health, title="sweep health at failure"),
          file=sys.stderr)
    print("completed jobs are journaled in the cache; rerun with --resume to "
          "execute only the missing ones", file=sys.stderr)


def _print_warehouse_summary(summary: Dict[str, object]) -> None:
    """One ``cache stats`` block describing the columnar warehouse."""
    if not summary["present"]:
        print("warehouse       : absent (queries fall back to the object "
              "store; run `repro warehouse rebuild` to build it)")
        return
    print(f"warehouse       : {summary['rows']} rows in "
          f"{summary['segments']} segment(s) + {summary['row_files']} row "
          f"file(s) ({_human_bytes(summary['total_bytes'])})")
    for kind in sorted(summary["by_kind"]):
        print(f"  {kind:<14}: {summary['by_kind'][kind]} rows")


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(_resolve_cache_dir(args.cache_dir))
    if args.cache_command == "stats":
        # Envelope-only scan: counts and bytes should stay cheap on large
        # directories; `cache verify` is the full-decode integrity pass.
        report = cache.verify(decode_bodies=False)
        counters = persisted_cache_stats(cache.directory)
        # Warehouse summary reads columnar files only — never entry bodies —
        # so stats stays cheap however large the object store is.
        wh_summary = warehouse_stats(cache.directory)
        if args.json:
            payload = report.as_dict()
            payload["persisted_counters"] = counters
            payload["warehouse"] = wh_summary
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            _print_verify_report(report, as_json=False)
            _print_persisted_counters(counters)
            _print_warehouse_summary(wh_summary)
        return 0
    if args.cache_command == "gc":
        max_mb = args.max_mb if args.max_mb is not None else cache.max_mb
        if max_mb is None:
            print("no size cap: pass --max-mb or set REPRO_CACHE_MAX_MB",
                  file=sys.stderr)
            return 2
        if not math.isfinite(max_mb) or max_mb <= 0:
            print(f"--max-mb must be a positive number of megabytes, got {max_mb}",
                  file=sys.stderr)
            return 2
        removed = cache.gc(max_mb=max_mb)
        # Flush the evictions to the directory ledger so `cache stats` on any
        # host counts manual GC passes, not just runner auto-GC ones — then
        # fold the accumulated per-run ledgers so their count stays bounded.
        cache.persist_stats()
        compact_persisted_stats(cache.directory)
        # Fold the warehouse's per-process row files too: gc is the natural
        # "keep the shared directory tidy" entry point for both ledgers.
        compact_warehouse(cache.directory)
        print(f"evicted {len(removed)} entries; "
              f"{len(cache)} remain ({_human_bytes(cache.total_bytes())})")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    if args.cache_command == "verify":
        report = cache.verify(purge=args.purge)
        _print_verify_report(report, args.json)
        if not report.ok and not args.purge:
            return 1
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _query_rows(args: argparse.Namespace):
    """Resolve, filter and return warehouse rows for ``repro query``.

    Reads the columnar warehouse when present (zero object-store decodes) and
    falls back to a full object-store scan otherwise, so the command works on
    caches written before the warehouse existed.
    """
    directory = _resolve_cache_dir(args.cache_dir)
    if args.engine is not None and args.engine not in CORE_ENGINES:
        raise SystemExit(f"unknown engine {args.engine!r}; available: "
                         f"{list(CORE_ENGINES)} (note: engines are verified "
                         "bit-identical, so this filter never changes which "
                         "rows are selected)")
    configs = None
    if args.family:
        configs = set(_sweep_families(args.family))
    rows = load_rows(directory, SCHEMA_VERSION)
    return filter_rows(rows, kind=args.kind, suite=args.suite,
                       config=args.config, workload=args.workload,
                       configs=configs)


def _cmd_query(args: argparse.Namespace) -> int:
    """Aggregate cached results from the warehouse (``repro query``)."""
    rows = _query_rows(args)
    if args.speedup_over is not None:
        summary = speedup_summary(rows, baseline=args.speedup_over,
                                  group_by=args.group_by)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        if not summary:
            print(f"no speedups computable against {args.speedup_over!r} "
                  f"({len(rows)} rows selected)")
            return 0
        groups = sorted({group for block in summary.values()
                         for group in block} - {"GEOMEAN"})
        headers = ["config"] + groups + ["GEOMEAN"]
        table_rows = [[config] + [
            f"{block[g]:.6g}" if g in block else "-"
            for g in groups + ["GEOMEAN"]]
            for config, block in sorted(summary.items())]
        print(format_table(headers, table_rows,
                           title=f"speedup over {args.speedup_over}"))
        return 0
    if args.metric is not None:
        values = aggregate_rows(rows, args.metric, agg=args.agg,
                                group_by=args.group_by)
        if args.json:
            print(json.dumps(values, indent=2, sort_keys=True))
            return 0
        label = args.group_by or "group"
        table_rows = [[group, f"{value:.6g}"]
                      for group, value in sorted(values.items())]
        print(format_table([label, f"{args.agg} {args.metric}"], table_rows,
                           title=f"{len(rows)} rows"))
        return 0
    # Default: one overview line per config from the flat rows alone.
    by_config = aggregate_rows(rows, "ipc", agg="count", group_by="config")
    if args.json:
        overview = {
            config: {
                "rows": int(count),
                "geomean_ipc": aggregate_rows(
                    filter_rows(rows, config=config), "ipc")["all"],
                "geomean_coverage": aggregate_rows(
                    filter_rows(rows, config=config), "coverage")["all"],
            } for config, count in sorted(by_config.items())
        }
        print(json.dumps(overview, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no rows selected (empty cache, or filters matched nothing)")
        return 0
    table_rows = []
    for config, count in sorted(by_config.items()):
        subset = filter_rows(rows, config=config)
        ipc = aggregate_rows(subset, "ipc")["all"]
        cov = aggregate_rows(subset, "coverage")["all"]
        power = aggregate_rows(subset, "power", agg="median")["all"]
        table_rows.append([config, str(int(count)), f"{ipc:.6g}",
                           f"{cov:.6g}", f"{power:.6g}"])
    print(format_table(
        ["config", "rows", "geomean ipc", "geomean coverage", "median power"],
        table_rows, title=f"{len(rows)} rows"))
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    """Maintain the columnar warehouse: rebuild, compact, verify."""
    directory = _resolve_cache_dir(args.cache_dir)
    if args.warehouse_command == "rebuild":
        try:
            rows, replaced = rebuild_warehouse(directory, SCHEMA_VERSION)
        except OSError as error:
            print(f"rebuild failed: {error}", file=sys.stderr)
            return 1
        print(f"rebuilt warehouse: {rows} rows "
              f"(replaced {replaced} warehouse file(s))")
        return 0
    if args.warehouse_command == "compact":
        removed = compact_warehouse(directory)
        summary = warehouse_stats(directory)
        print(f"compacted: folded {removed} file(s); {summary['rows']} rows "
              f"in {summary['segments']} segment(s)")
        return 0
    if args.warehouse_command == "verify":
        report = verify_warehouse(directory, SCHEMA_VERSION)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(f"journal entries : {report['entries']}")
            print(f"warehouse rows  : {report['rows']}")
            print(f"missing rows    : {len(report['missing'])}")
            print(f"extra rows      : {len(report['extra'])}"
                  + (" (entries evicted; benign)" if report["extra"] else ""))
            for key in report["missing"]:
                print(f"  missing: {key}")
        if report["missing"]:
            return 1
        if args.strict and report["extra"]:
            return 1
        return 0
    raise AssertionError(
        f"unhandled warehouse command {args.warehouse_command!r}")


def _parse_config_subset(raw: Optional[str], available: Dict[str, object],
                         what: str) -> Dict[str, object]:
    if raw is None:
        return dict(available)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if names == ["none"]:
        return {}
    unknown = [name for name in names if name not in available]
    if unknown:
        raise SystemExit(
            f"unknown {what} {unknown}; available: {sorted(available)}")
    return {name: available[name] for name in names}


def _sweep_families(raw: str) -> Dict[str, object]:
    """Merge the selected sweep families into one name->config dictionary."""
    names = [name.strip() for name in raw.split(",") if name.strip()]
    # Validate before expanding 'all' so a typo next to it still errors.
    unknown = [name for name in names
               if name != "all" and name not in SWEEP_FAMILIES]
    if unknown:
        raise SystemExit(
            f"unknown sweep families {unknown}; available: "
            f"{sorted(SWEEP_FAMILIES)} or 'all'")
    if "all" in names:
        names = list(SWEEP_FAMILIES)
    merged: Dict[str, object] = {}
    for name in names:
        merged.update(SWEEP_FAMILIES[name]())
    return merged


def _cmd_sweep(args: argparse.Namespace) -> int:
    shard = Shard.parse(args.shard) if args.shard else None
    if shard is not None and args.merge:
        raise SystemExit("--merge folds every shard's results; drop --shard")
    if args.resume:
        journal = _resolve_cache_dir(args.cache_dir)
        if not os.path.isdir(journal):
            raise SystemExit(
                f"--resume: cache directory {journal!r} does not exist; an "
                "interrupted sweep leaves its journal there, so there is "
                "nothing to resume from")
    configs = _parse_config_subset(args.configs, _sweep_families(args.families),
                                   "configs")
    smt_configs = _parse_config_subset(args.smt_configs, sweep_smt_configs(),
                                       "SMT configs")
    orchestrate = _resolve_orchestrate(args.orchestrate)
    wave_stats = None
    with _build_runner(args) as runner:
        label = f"shard {shard.index}/{shard.count}" if shard else "full sweep"
        print(f"{label}: {len(runner.specs())} workloads, "
              f"{len(configs)} configs, {len(smt_configs)} SMT configs "
              f"-> cache {runner.cache.directory}")
        if orchestrate and (configs or smt_configs):
            # One deduped wave over every outstanding job (single-thread and
            # SMT alike); the per-config loops below then just read back the
            # committed results without simulating anything.
            plan = FigurePlan("sweep", configs=configs, smt_configs=smt_configs,
                              smt_max_pairs=args.max_pairs)
            wave_stats = SweepOrchestrator(runner).execute([plan], shard=shard)
            print(format_dedup_stats(wave_stats, title="orchestrated wave"))
            if args.resume:
                print(f"resume: {wave_stats.cache_warm} job(s) already "
                      f"journaled, {wave_stats.executed} executed")
        for name, config in configs.items():
            before = runner.cache.stats.stores
            results = runner.run_config(name, config, shard=shard)
            note = ("wave" if orchestrate
                    else f"{runner.cache.stats.stores - before} simulated")
            print(f"  {name}: {len(results)} workloads ({note})")
        for name, config in smt_configs.items():
            before = runner.cache.stats.stores
            results = runner.run_smt_config(name, config,
                                            max_pairs=args.max_pairs, shard=shard)
            note = ("wave" if orchestrate
                    else f"{runner.cache.stats.stores - before} simulated")
            print(f"  smt:{name}: {len(results)} pairs ({note})")
        simulated = runner.cache.stats.stores
        inspected = (runner.report_cache.stats.stores
                     if runner.report_cache is not None else 0)
        print(f"done: {simulated} simulated, {runner.cache.stats.hits} cache hits, "
              f"{inspected} inspection passes")
        _print_runner_health(runner)
        if args.merge and "baseline" in configs:
            rows = [(name, f"{runner.geomean_speedup(name):.4f}")
                    for name in configs if name != "baseline"]
            if rows:
                print(format_table(["config", "geomean speedup"], rows,
                                   title="merged sweep summary"))
    if args.expect_warm and _expect_warm_violated(simulated, inspected,
                                                  wave_stats):
        return 2
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    names: List[str] = []
    for name in args.names:
        if name == "all":
            names.extend(key for key in FIGURE_HARNESSES if key not in names)
        elif name in FIGURE_HARNESSES or name in STANDALONE_HARNESSES:
            if name not in names:
                names.append(name)
        else:
            available = sorted(FIGURE_HARNESSES) + sorted(STANDALONE_HARNESSES)
            raise SystemExit(f"unknown figure {name!r}; available: {available}")
    orchestrate = _resolve_orchestrate(args.orchestrate)
    with _build_runner(args) as runner:
        orchestrated: Dict[str, Dict[str, object]] = {}
        dedup_stats = None
        if orchestrate:
            planned = [name for name in names if name in FIGURE_PLANS]
            if planned:
                orchestrated, dedup_stats = orchestrate_figures(runner, planned)
        for name in names:
            if name in orchestrated:
                result = orchestrated[name]
            elif name in FIGURE_HARNESSES:
                result = FIGURE_HARNESSES[name](runner)
            else:
                result = STANDALONE_HARNESSES[name]()
            if args.json:
                payload = {key: value for key, value in result.items() if key != "text"}
                print(json.dumps({name: payload}, indent=2, sort_keys=True,
                                 default=str))
            elif isinstance(result.get("text"), str):
                print(result["text"])
            else:
                print(f"{name}: {sorted(result)}")
        if dedup_stats is not None:
            print(format_dedup_stats(dedup_stats, title="orchestrated wave"))
        simulated = runner.cache.stats.stores if runner.cache is not None else 0
        inspected = (runner.report_cache.stats.stores
                     if runner.report_cache is not None else 0)
        hits = runner.cache.stats.hits if runner.cache is not None else 0
        print(f"done: {simulated} simulated, {hits} cache hits, "
              f"{inspected} inspection passes")
        _print_runner_health(runner)
    if args.expect_warm and _expect_warm_violated(simulated, inspected,
                                                  dedup_stats):
        return 2
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant checker; exit 0 clean, 1 on findings, 2 on usage."""
    if args.refresh_manifest:
        path = refresh_manifest(args.root)
        print(f"wrote {path}")
        return 0
    try:
        report = run_lint(args.root, rule_ids=args.rules)
    except ValueError as error:  # unknown --rule name
        print(str(error), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_bench_history(args: argparse.Namespace) -> int:
    entries = load_bench_history(directory=args.dir,
                                 legacy_directory=args.legacy_dir)
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        # An empty trajectory is a normal state (fresh clone, wiped
        # bench_reports/), not an error: say so plainly and exit 0 so
        # scripted `repro bench history` probes don't trip on it.
        print(f"no bench reports accumulated yet under {args.dir} "
              f"(or {args.legacy_dir}); run `repro bench --quick` to "
              f"record the first one")
        return 0
    print(format_bench_history(entries))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_command", None) == "history":
        return _cmd_bench_history(args)
    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    families = None
    if args.families:
        families = [name.strip() for name in args.families.split(",")
                    if name.strip()]
    if args.workers is not None and not args.orchestrator:
        print("--workers only applies to the orchestrator measurement; "
              "pass --orchestrator too (engine timings are serial by design)",
              file=sys.stderr)
        return 2
    try:
        payload = run_bench(quick=args.quick, engines=engines, families=families,
                            instructions=args.instructions, reps=args.reps,
                            discard_warmup=not args.keep_warmup)
        if args.orchestrator:
            payload["orchestrator"] = run_orchestrator_bench(
                quick=args.quick, workers=args.workers,
                instructions=args.instructions, reps=args.reps,
                discard_warmup=not args.keep_warmup)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(format_bench_table(payload))
    path = write_bench_report(payload, output=args.output)
    print(f"wrote {path}")
    if not payload["identical"]:
        print("ENGINE DIVERGENCE: at least one workload/config simulated "
              "differently under the cycle and event engines", file=sys.stderr)
        return 1
    orchestrator = payload.get("orchestrator")
    if orchestrator is not None and not orchestrator["identical"]:
        print("ORCHESTRATOR DIVERGENCE: orchestrated figure payloads differ "
              "from the serial per-figure path", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- parser

def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed sweep, figure and cache operations for the "
                    "Constable reproduction.")
    commands = parser.add_subparsers(dest="command", required=True)

    cache = commands.add_parser("cache", help="operate on an on-disk cache directory")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_commands.add_parser("stats", help="entry counts and bytes by kind")
    _add_cache_dir_argument(stats)
    stats.add_argument("--json", action="store_true", help="machine-readable output")
    gc = cache_commands.add_parser("gc", help="evict LRU entries down to a cap")
    _add_cache_dir_argument(gc)
    gc.add_argument("--max-mb", type=float, default=None,
                    help="size cap in megabytes (default: REPRO_CACHE_MAX_MB)")
    clear = cache_commands.add_parser("clear", help="delete every cache entry")
    _add_cache_dir_argument(clear)
    verify = cache_commands.add_parser(
        "verify", help="detect corrupt/stale/orphaned entries (exit 1 if any)")
    _add_cache_dir_argument(verify)
    verify.add_argument("--purge", action="store_true",
                        help="delete every flagged file")
    verify.add_argument("--json", action="store_true", help="machine-readable output")

    query = commands.add_parser(
        "query", help="aggregate cached results from the columnar warehouse "
                      "(object-store fallback when no warehouse exists)")
    _add_cache_dir_argument(query)
    query.add_argument("--kind", choices=["result", "smt"], default=None,
                       help="restrict to single-thread or SMT rows")
    query.add_argument("--family", default=None,
                       help="restrict to a sweep family's configs "
                            f"({', '.join(sorted(SWEEP_FAMILIES))}, "
                            "comma-separable, or 'all')")
    query.add_argument("--suite", default=None,
                       help="restrict to one workload suite "
                            f"({', '.join(SUITE_NAMES)})")
    query.add_argument("--config", default=None,
                       help="restrict to one config label")
    query.add_argument("--workload", default=None,
                       help="restrict to one workload name")
    query.add_argument("--engine", default=None,
                       help="validated for symmetry with sweep filters; rows "
                            "are engine-independent (engines are verified "
                            "bit-identical), so this never changes selection")
    query.add_argument("--metric", choices=list(QUERY_METRICS), default=None,
                       help="aggregate this column instead of the overview")
    query.add_argument("--agg", choices=sorted(QUERY_AGGREGATES),
                       default="geomean",
                       help="aggregation for --metric (default: geomean)")
    query.add_argument("--group-by",
                       choices=["suite", "config", "workload", "kind"],
                       default=None, help="group the aggregate by this column")
    query.add_argument("--speedup-over", default=None, metavar="BASELINE",
                       help="per-config geomean speedup table against this "
                            "baseline config (joined per workload+budget)")
    query.add_argument("--json", action="store_true",
                       help="machine-readable output")

    warehouse = commands.add_parser(
        "warehouse", help="maintain the columnar results warehouse "
                          "(<cache-dir>/.warehouse/)")
    warehouse_commands = warehouse.add_subparsers(dest="warehouse_command",
                                                  required=True)
    rebuild = warehouse_commands.add_parser(
        "rebuild", help="regenerate every warehouse row from the object store "
                        "(lossless migration of pre-warehouse caches)")
    _add_cache_dir_argument(rebuild)
    compact = warehouse_commands.add_parser(
        "compact", help="fold append-only row files into one columnar segment")
    _add_cache_dir_argument(compact)
    wverify = warehouse_commands.add_parser(
        "verify", help="check warehouse/journal agreement (exit 1 when a "
                       "journaled entry has no warehouse row)")
    _add_cache_dir_argument(wverify)
    wverify.add_argument("--strict", action="store_true",
                         help="also fail on rows whose entries were evicted")
    wverify.add_argument("--json", action="store_true",
                         help="machine-readable output")

    sweep = commands.add_parser(
        "sweep", help="run the configuration sweep (optionally one shard of N)")
    _add_runner_arguments(sweep)
    sweep.add_argument("--shard", default=None, metavar="K/N",
                       help="run only shard K of N (1-based)")
    sweep.add_argument("--families", default="main",
                       help="comma-separated sweep families "
                            f"({', '.join(sorted(SWEEP_FAMILIES))}) or 'all' "
                            "(default: main)")
    sweep.add_argument("--configs", default=None,
                       help="comma-separated single-thread config subset, or 'none'")
    sweep.add_argument("--smt-configs", default=None,
                       help="comma-separated SMT config subset, or 'none'")
    sweep.add_argument("--max-pairs", type=int, default=4,
                       help="SMT pair budget (matches fig. 14's default)")
    sweep.add_argument("--merge", action="store_true",
                       help="full run that folds shard results and prints a summary")
    sweep.add_argument("--expect-warm", action="store_true",
                       help="exit 2 if anything had to be simulated or inspected")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted or dead-lettered sweep from "
                            "its cache journal (the cache directory must "
                            "exist); only missing jobs are executed")

    figures = commands.add_parser(
        "figures", help="regenerate paper figure harnesses (warm-from-cache)")
    figures.add_argument("names", nargs="+",
                         help="figure names (fig11, fig14, ...) or 'all'")
    _add_runner_arguments(figures)
    figures.add_argument("--json", action="store_true", help="machine-readable output")
    figures.add_argument("--expect-warm", action="store_true",
                         help="exit 2 if anything had to be simulated or inspected")

    lint = commands.add_parser(
        "lint", help="run the AST-based repo invariant checker "
                     f"(rules: {', '.join(all_rules())})")
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument("--rule", action="append", dest="rules", default=None,
                      metavar="RLxxx",
                      help="run only this rule (repeatable; default: all)")
    lint.add_argument("--root", default=".",
                      help="repository root to scan (default: the working "
                           "directory)")
    lint.add_argument("--refresh-manifest", action="store_true",
                      help="regenerate src/repro/analysis/lint/"
                           "schema_manifest.json from the current tree "
                           "(required after a deliberate schema bump)")

    bench = commands.add_parser(
        "bench", help="measure simulator wall-clock performance per figure "
                      "family and write a BENCH_<timestamp>.json report")
    bench_commands = bench.add_subparsers(dest="bench_command")
    history = bench_commands.add_parser(
        "history", help="render the perf trajectory across every accumulated "
                        "BENCH_*.json report")
    history.add_argument("--dir", default=BENCH_REPORTS_DIR,
                         help=f"report directory (default: {BENCH_REPORTS_DIR})")
    history.add_argument("--legacy-dir", default=".",
                         help="pre-bench_reports/ location also scanned "
                              "(default: the working directory)")
    history.add_argument("--json", action="store_true",
                         help="machine-readable output")
    bench.add_argument("--quick", action="store_true",
                       help="reduced instruction budgets (CI perf-smoke mode)")
    bench.add_argument("--reps", type=int, default=None,
                       help="repetitions per measurement; median-of-N walls "
                            f"(default: ${BENCH_REPS_ENV} or "
                            f"{DEFAULT_BENCH_REPS})")
    bench.add_argument("--keep-warmup", action="store_true",
                       help="include the first (warm-up) repetition in the "
                            "statistics instead of discarding it")
    bench.add_argument("--families", default=None,
                       help="comma-separated family subset "
                            f"(default: all of {', '.join(BENCH_FAMILIES)})")
    bench.add_argument("--engines", default="cycle,event",
                       help="comma-separated engines to measure "
                            f"(available: {', '.join(CORE_ENGINES)})")
    bench.add_argument("--instructions", type=int, default=None,
                       help="override the per-family instruction budgets")
    bench.add_argument("--orchestrator", action="store_true",
                       help="also measure the cross-figure orchestrator against "
                            "the serial per-figure path (figures: "
                            f"{', '.join(ORCHESTRATOR_BENCH_FIGURES)})")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes for the orchestrator measurement "
                            "(default: the parallel runner's default)")
    bench.add_argument("--output", default=None,
                       help="report path (default: BENCH_<timestamp>.json in "
                            "bench_reports/)")
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "warehouse":
        return _cmd_warehouse(args)
    if args.command == "sweep":
        try:
            return _cmd_sweep(args)
        except ValueError as error:  # e.g. malformed --shard or --job-timeout
            print(str(error), file=sys.stderr)
            return 2
    if args.command == "figures":
        try:
            return _cmd_figures(args)
        except ValueError as error:  # e.g. invalid --max-retries
            print(str(error), file=sys.stderr)
            return 2
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: parse ``argv``, dispatch, return the exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # The `with runner` blocks unwound on the way here: pools are shut
        # down and the counter ledgers flushed, so the journal is consistent.
        print("interrupted: pool shut down, counter ledgers flushed; rerun "
              "with --resume to pick the sweep back up", file=sys.stderr)
        return EXIT_INTERRUPT
    except SweepExecutionError as error:
        _print_failure_summary(error)
        return EXIT_DEAD_LETTER


if __name__ == "__main__":
    raise SystemExit(main())
