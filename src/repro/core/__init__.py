"""Constable: safe elimination of load instruction execution (the paper's contribution).

The engine is purely microarchitectural: a Stable Load Detector (SLD) learns
which loads repeatedly fetch the same value from the same address, a Register
Monitor Table (RMT) watches their source architectural registers, and an
Address Monitor Table (AMT) watches stores and snoops to their memory
locations.  Once a load's ``can_eliminate`` flag is set, later instances are
converted at rename into register moves fed from a small extra register file
(xPRF) and never execute.
"""

from repro.core.config import ConstableConfig
from repro.core.sld import StableLoadDetector, SldEntry
from repro.core.rmt import RegisterMonitorTable
from repro.core.amt import AddressMonitorTable
from repro.core.xprf import ExtraRegisterFile
from repro.core.constable import ConstableEngine, EliminationDecision, ConstableStats
from repro.core.ideal import IdealOracle, IdealMode, build_oracle_from_trace
from repro.core.storage import storage_overhead_bits, storage_overhead_report

__all__ = [
    "ConstableConfig",
    "StableLoadDetector",
    "SldEntry",
    "RegisterMonitorTable",
    "AddressMonitorTable",
    "ExtraRegisterFile",
    "ConstableEngine",
    "EliminationDecision",
    "ConstableStats",
    "IdealOracle",
    "IdealMode",
    "build_oracle_from_trace",
    "storage_overhead_bits",
    "storage_overhead_report",
]
