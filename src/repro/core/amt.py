"""Address Monitor Table (AMT): watches stores and snoops to eliminated-load lines.

Indexed by physical address at cacheline granularity (paper §6.6).  Each entry
lists up to four (hashed) load PCs currently being eliminated that read the
line.  A store address generation or an incoming snoop consumes the entry and
resets the listed loads' ``can_eliminate`` flags (Condition 2, §6.4.3/§6.4.4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import ConstableConfig


class _AmtEntry:
    __slots__ = ("line_address", "load_pcs")

    def __init__(self, line_address: int):
        self.line_address = line_address
        self.load_pcs: List[int] = []


class AddressMonitorTable:
    """Set-associative, LRU-replaced AMT."""

    def __init__(self, config: Optional[ConstableConfig] = None):
        self.config = config or ConstableConfig()
        self._sets: List[List[_AmtEntry]] = [[] for _ in range(self.config.amt_sets)]
        self.insertions = 0
        self.entry_evictions = 0
        self.pc_evictions = 0
        self.consumes = 0

    # ------------------------------------------------------------------ helpers

    def line_address(self, address: int) -> int:
        """The cacheline-aligned base address containing ``address``."""
        return address - (address % self.config.cacheline_size)

    def _set_index(self, line_address: int) -> int:
        return (line_address // self.config.cacheline_size) % self.config.amt_sets

    def _find(self, line_address: int) -> Optional[_AmtEntry]:
        for entry in self._sets[self._set_index(line_address)]:
            if entry.line_address == line_address:
                return entry
        return None

    # ------------------------------------------------------------------- access

    def insert(self, address: int, load_pc: int) -> List[int]:
        """Track ``load_pc`` under the line of ``address``.

        Returns load PCs displaced by capacity (either because the per-entry PC
        list was full or because a whole entry had to be evicted); the caller
        must reset their elimination status to stay safe.
        """
        line = self.line_address(address)
        index = self._set_index(line)
        amt_set = self._sets[index]
        displaced: List[int] = []
        entry = self._find(line)
        if entry is None:
            if len(amt_set) >= self.config.amt_ways:
                victim = amt_set.pop(0)
                displaced.extend(victim.load_pcs)
                self.entry_evictions += 1
            entry = _AmtEntry(line)
            amt_set.append(entry)
        else:
            amt_set.remove(entry)
            amt_set.append(entry)
        if load_pc not in entry.load_pcs:
            if len(entry.load_pcs) >= self.config.amt_pcs_per_entry:
                displaced.append(entry.load_pcs.pop(0))
                self.pc_evictions += 1
            entry.load_pcs.append(load_pc)
            self.insertions += 1
        return displaced

    def consume(self, address: int) -> List[int]:
        """Remove the entry for the line of ``address`` and return its load PCs."""
        line = self.line_address(address)
        entry = self._find(line)
        if entry is None:
            return []
        self._sets[self._set_index(line)].remove(entry)
        self.consumes += 1
        return list(entry.load_pcs)

    def lookup(self, address: int) -> List[int]:
        """Read the load PCs tracked for the line of ``address`` without removing them."""
        entry = self._find(self.line_address(address))
        return list(entry.load_pcs) if entry is not None else []

    def tracked_lines(self) -> int:
        """Number of cachelines currently tracked across all sets."""
        return sum(len(s) for s in self._sets)

    def tracked_pcs(self) -> int:
        """Number of (line, load PC) associations currently tracked."""
        return sum(len(e.load_pcs) for s in self._sets for e in s)

    def clear(self) -> None:
        """Invalidate the whole table (context switch, §6.7.3)."""
        self._sets = [[] for _ in range(self.config.amt_sets)]
