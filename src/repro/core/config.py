"""Configuration of the Constable engine (paper §6, Table 1 geometries)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.isa.instruction import AddressingMode

#: All load addressing modes eligible for elimination by default.
ALL_ADDRESSING_MODES: FrozenSet[AddressingMode] = frozenset({
    AddressingMode.PC_RELATIVE,
    AddressingMode.STACK_RELATIVE,
    AddressingMode.REG_RELATIVE,
})


@dataclass
class ConstableConfig:
    """Structure geometries, thresholds and design-variant switches."""

    # Stable Load Detector: 512 entries = 32 sets x 16 ways (Table 1).
    sld_sets: int = 32
    sld_ways: int = 16
    confidence_bits: int = 5
    confidence_threshold: int = 30

    # Register Monitor Table: 16 load PCs for RSP/RBP, 8 for the rest (Table 1).
    rmt_stack_capacity: int = 16
    rmt_other_capacity: int = 8

    # Address Monitor Table: 256 entries = 32 sets x 8 ways, 4 hashed PCs each.
    amt_sets: int = 32
    amt_ways: int = 8
    amt_pcs_per_entry: int = 4
    cacheline_size: int = 64

    # Extra register file holding values of in-flight eliminated loads (§6.3).
    xprf_entries: int = 32

    # SLD port model (§6.7.1): rename stalls beyond these per-cycle budgets.
    sld_read_ports: int = 3
    sld_write_ports: int = 2

    # Which addressing modes may be eliminated (Fig. 13 restricts this).
    eliminate_addressing_modes: FrozenSet[AddressingMode] = field(
        default_factory=lambda: ALL_ADDRESSING_MODES)

    # Design variants.
    #: Invalidate AMT entries on every L1-D eviction instead of pinning CV bits
    #: (the Constable-AMT-I variant of Fig. 22).
    amt_invalidate_on_l1_eviction: bool = False
    #: Pin the own core's CV bit in the directory for eliminated-load lines (§6.6).
    pin_cv_bits: bool = True
    #: Inject synthetic wrong-path RMT/SLD updates after every branch
    #: misprediction.  The paper finds that leaving the structures unrestored
    #: after mispredictions costs only ~0.2% (Fig. 9b), so the default models
    #: that negligible impact (no injection); enabling this gives a pessimistic
    #: upper bound used by the Fig. 9b benchmark.
    wrong_path_updates: bool = False

    def __post_init__(self) -> None:
        if self.confidence_threshold >= (1 << self.confidence_bits):
            raise ValueError("confidence threshold must fit in confidence_bits")
        for name in ("sld_sets", "sld_ways", "amt_sets", "amt_ways",
                     "amt_pcs_per_entry", "xprf_entries",
                     "rmt_stack_capacity", "rmt_other_capacity"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def confidence_max(self) -> int:
        """Saturation value of the confidence counter."""
        return (1 << self.confidence_bits) - 1

    @property
    def sld_entries(self) -> int:
        """Total SLD capacity in entries (sets times ways)."""
        return self.sld_sets * self.sld_ways

    @property
    def amt_entries(self) -> int:
        """Total AMT capacity in entries (sets times ways)."""
        return self.amt_sets * self.amt_ways

    def mode_allowed(self, mode: AddressingMode) -> bool:
        """Is a load with this addressing mode eligible for elimination?"""
        return mode in self.eliminate_addressing_modes
