"""The Constable engine: ties SLD, RMT, AMT and xPRF into the pipeline hooks.

The pipeline calls into this engine at the points marked in Fig. 8 of the paper:

1/2/3  at rename of a load           -> :meth:`on_load_rename`
4/5/6  at writeback of a likely-stable, non-eliminated load
                                      -> :meth:`on_load_writeback`
7/8    at rename of any instruction with a destination register
                                      -> :meth:`on_register_write`
9/8    when a store generates its address -> :meth:`on_store_address`
10/8   when a snoop arrives           -> :meth:`on_snoop`

plus the L1-eviction hook used by the Constable-AMT-I variant (Fig. 22) and the
memory-ordering-violation hook used by the disambiguation logic (§6.5/§6.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.amt import AddressMonitorTable
from repro.core.config import ConstableConfig
from repro.core.rmt import RegisterMonitorTable
from repro.core.sld import StableLoadDetector
from repro.core.xprf import ExtraRegisterFile
from repro.isa.instruction import AddressingMode


@dataclass
class EliminationDecision:
    """Result of consulting Constable at rename time for a load."""

    eliminate: bool = False
    likely_stable: bool = False
    value: int = 0
    address: int = 0


@dataclass
class ConstableStats:
    """Counters reported by the engine (several feed paper figures directly)."""

    loads_seen: int = 0
    loads_eliminated: int = 0
    loads_marked_likely_stable: int = 0
    eliminations_blocked_by_xprf: int = 0
    eliminations_blocked_by_mode: int = 0
    resets_by_register_write: int = 0
    resets_by_store: int = 0
    resets_by_snoop: int = 0
    resets_by_l1_eviction: int = 0
    resets_by_capacity: int = 0
    ordering_violations: int = 0
    sld_update_events: int = 0      # can_eliminate updates during rename (Fig. 9a)
    cv_pin_requests: int = 0

    def elimination_coverage(self) -> float:
        """Fraction of all renamed loads whose execution was eliminated."""
        if self.loads_seen == 0:
            return 0.0
        return self.loads_eliminated / self.loads_seen

    def as_dict(self) -> Dict[str, float]:
        """All counters plus the derived elimination coverage, as a dict."""
        data = dict(self.__dict__)
        data["elimination_coverage"] = self.elimination_coverage()
        return data


class ConstableEngine:
    """Constable's microarchitectural state machine."""

    def __init__(self, config: Optional[ConstableConfig] = None, num_registers: int = 16):
        self.config = config or ConstableConfig()
        self.sld = StableLoadDetector(self.config)
        self.rmt = RegisterMonitorTable(self.config, num_registers=num_registers)
        self.amt = AddressMonitorTable(self.config)
        self.xprf = ExtraRegisterFile(self.config)
        self.stats = ConstableStats()
        #: per-cycle SLD write counter, reset by the pipeline every cycle; used to
        #: model the 2-write-port constraint of §6.7.1.
        self.sld_updates_this_cycle = 0

    # --------------------------------------------------------------- rename path

    def on_load_rename(self, pc: int, addressing_mode: AddressingMode) -> EliminationDecision:
        """Steps 1-3 of Fig. 8: decide whether this load instance is eliminated."""
        self.stats.loads_seen += 1
        entry = self.sld.lookup(pc)
        if entry is None:
            return EliminationDecision()
        if entry.can_eliminate:
            if not self.config.mode_allowed(addressing_mode):
                self.stats.eliminations_blocked_by_mode += 1
                return EliminationDecision(likely_stable=True)
            if not self.xprf.try_allocate():
                self.stats.eliminations_blocked_by_xprf += 1
                return EliminationDecision(likely_stable=True)
            self.stats.loads_eliminated += 1
            return EliminationDecision(
                eliminate=True, likely_stable=True,
                value=entry.last_value or 0, address=entry.last_address or 0,
            )
        if entry.confidence >= self.config.confidence_threshold:
            self.stats.loads_marked_likely_stable += 1
            return EliminationDecision(likely_stable=True)
        return EliminationDecision()

    def on_register_write(self, register: int) -> int:
        """Steps 7-8 of Fig. 8: a renamed instruction writes ``register``.

        Returns the number of SLD updates performed (for write-port modelling).
        """
        pcs = self.rmt.consume(register)
        updates = 0
        for pc in pcs:
            if self.sld.reset_elimination(pc):
                updates += 1
                self.stats.resets_by_register_write += 1
        self.stats.sld_update_events += updates
        self.sld_updates_this_cycle += updates
        return updates

    # ------------------------------------------------------------ writeback path

    def on_load_writeback(self, pc: int, address: int, value: int,
                          source_registers: Iterable[int],
                          likely_stable: bool) -> bool:
        """Steps 4-6 of Fig. 8 plus the confidence update of §6.2.

        Returns True when the caller should pin the own core's CV bit for the
        accessed line (i.e. the load became eliminable).
        """
        entry = self.sld.record_execution(pc, address, value)
        if not likely_stable:
            return False
        for register in source_registers:
            for displaced in self.rmt.insert(register, pc):
                if self.sld.reset_elimination(displaced):
                    self.stats.resets_by_capacity += 1
        for displaced in self.amt.insert(address, pc):
            if self.sld.reset_elimination(displaced):
                self.stats.resets_by_capacity += 1
        entry.can_eliminate = True
        if self.config.pin_cv_bits:
            self.stats.cv_pin_requests += 1
            return True
        return False

    # ------------------------------------------------------- store / snoop paths

    def _reset_for_line(self, address: int, cause: str) -> int:
        pcs = self.amt.consume(address)
        resets = 0
        for pc in pcs:
            if self.sld.reset_elimination(pc):
                resets += 1
                self.rmt.remove_pc(pc)
        if cause == "store":
            self.stats.resets_by_store += resets
        elif cause == "snoop":
            self.stats.resets_by_snoop += resets
        else:
            self.stats.resets_by_l1_eviction += resets
        return resets

    def on_store_address(self, address: int) -> int:
        """Step 9 of Fig. 8: a store generated its physical address."""
        return self._reset_for_line(address, "store")

    def on_snoop(self, address: int) -> int:
        """Step 10 of Fig. 8: a snoop request arrived at the core."""
        return self._reset_for_line(address, "snoop")

    def on_l1_eviction(self, line_address: int) -> int:
        """Constable-AMT-I variant: treat every L1-D eviction like an invalidation."""
        if not self.config.amt_invalidate_on_l1_eviction:
            return 0
        return self._reset_for_line(line_address, "eviction")

    # ----------------------------------------------------------- recovery / misc

    def on_ordering_violation(self, pc: int) -> None:
        """An eliminated load was caught by memory disambiguation (§6.5, §6.8)."""
        self.stats.ordering_violations += 1
        self.sld.punish(pc)
        self.rmt.remove_pc(pc)

    def release_xprf(self) -> None:
        """Free the xPRF register of a retired (or squashed) eliminated load."""
        self.xprf.release()

    def on_context_switch(self) -> None:
        """Physical address mapping changed: drop all elimination state (§6.7.3)."""
        self.sld.reset_all()
        self.rmt.clear()
        self.amt.clear()

    def begin_cycle(self) -> None:
        """Reset the per-cycle SLD write counter (write-port model, §6.7.1)."""
        self.sld_updates_this_cycle = 0

    # -------------------------------------------------------------------- stats

    def coverage(self) -> float:
        """Fraction of eligible loads eliminated (stats shortcut)."""
        return self.stats.elimination_coverage()
