"""Ideal (oracle) configurations for the headroom study (paper §4.4, Fig. 7).

The oracle knows, offline, the set of global-stable load PCs of a trace (from
the Load Inspector).  Three idealised mechanisms are modelled on top of it:

* ``IdealMode.CONSTABLE``        - eliminate the full execution of every
  global-stable load (after its first instance supplies the value).
* ``IdealMode.STABLE_LVP``       - perfectly value-predict every global-stable
  load; the load still executes completely.
* ``IdealMode.STABLE_LVP_FETCH_ELIM`` - perfectly value-predict and skip the
  data fetch; the load still computes its address (RS + AGU, no load port).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.workloads.trace import Trace


class IdealMode(enum.Enum):
    """Which idealised mechanism the oracle drives."""

    CONSTABLE = "ideal_constable"
    STABLE_LVP = "ideal_stable_lvp"
    STABLE_LVP_FETCH_ELIM = "ideal_stable_lvp_fetch_elim"


@dataclass
class IdealOracle:
    """Offline knowledge of global-stable loads plus the chosen ideal mode."""

    stable_pcs: Set[int]
    mode: IdealMode = IdealMode.CONSTABLE
    _seen: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    loads_covered: int = 0
    loads_seen: int = 0

    def reset_runtime_state(self) -> None:
        """Forget per-run learning (call between simulations sharing one oracle)."""
        self._seen = {}
        self.loads_covered = 0
        self.loads_seen = 0

    def is_stable(self, pc: int) -> bool:
        """True when the oracle knows ``pc`` as a stable load."""
        return pc in self.stable_pcs

    def covers(self, pc: int) -> bool:
        """Can this dynamic instance be handled ideally?

        The very first instance of every static load must execute so the value
        is known; every later instance of an oracle-stable load is covered.
        """
        self.loads_seen += 1
        if pc in self.stable_pcs and pc in self._seen:
            self.loads_covered += 1
            return True
        return False

    def known_value(self, pc: int) -> Tuple[int, int]:
        """(address, value) recorded from the load's first executed instance."""
        return self._seen[pc]

    def observe_execution(self, pc: int, address: int, value: int) -> None:
        """Record the first executed instance of a stable load."""
        if pc in self.stable_pcs and pc not in self._seen:
            self._seen[pc] = (address, value)

    def coverage(self) -> float:
        """Fraction of observed loads covered by the oracle."""
        if self.loads_seen == 0:
            return 0.0
        return self.loads_covered / self.loads_seen


def build_oracle_from_trace(trace: Trace, mode: IdealMode = IdealMode.CONSTABLE,
                            report=None) -> IdealOracle:
    """Build an oracle from a trace by running the Load Inspector over it.

    ``report`` may be a pre-computed :class:`GlobalStableReport` to avoid
    re-scanning the trace.
    """
    from repro.analysis.load_inspector import inspect_trace

    if report is None:
        report = inspect_trace(trace)
    return IdealOracle(stable_pcs=set(report.global_stable_pcs()), mode=mode)
