"""Register Monitor Table (RMT): watches source registers of eliminated loads.

Indexed by architectural register.  Each entry lists the PCs of loads that are
currently being eliminated and use that register as an address source.  When
any instruction writes the register, the listed loads lose their
``can_eliminate`` status (Condition 1, paper §5/§6.4.2).  Stack registers
(RSP/RBP) get deeper lists because stack-relative loads are the most common
stable category (Table 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ConstableConfig
from repro.isa.registers import STACK_REGISTERS


class RegisterMonitorTable:
    """Architectural-register-indexed lists of eliminated-load PCs."""

    def __init__(self, config: Optional[ConstableConfig] = None, num_registers: int = 16):
        self.config = config or ConstableConfig()
        self.num_registers = num_registers
        self._entries: Dict[int, List[int]] = {r: [] for r in range(num_registers)}
        self.insertions = 0
        self.capacity_evictions = 0
        self.consumes = 0

    def capacity(self, register: int) -> int:
        """Maximum tracked load PCs for ``register``."""
        if register in STACK_REGISTERS:
            return self.config.rmt_stack_capacity
        return self.config.rmt_other_capacity

    def insert(self, register: int, load_pc: int) -> List[int]:
        """Track ``load_pc`` under ``register``; returns PCs displaced by capacity."""
        if register >= self.num_registers:
            raise ValueError(f"register {register} out of range")
        entry = self._entries[register]
        displaced: List[int] = []
        if load_pc in entry:
            return displaced
        if len(entry) >= self.capacity(register):
            displaced.append(entry.pop(0))
            self.capacity_evictions += 1
        entry.append(load_pc)
        self.insertions += 1
        return displaced

    def consume(self, register: int) -> List[int]:
        """Return and clear the load PCs tracked under ``register`` (on a write to it)."""
        if register >= self.num_registers:
            return []
        entry = self._entries[register]
        if not entry:
            return []
        self.consumes += 1
        pcs = list(entry)
        entry.clear()
        return pcs

    def peek(self, register: int) -> List[int]:
        """Read the tracked load PCs without clearing them."""
        return list(self._entries.get(register, []))

    def remove_pc(self, load_pc: int) -> None:
        """Remove ``load_pc`` from every register entry (when it stops being eliminated)."""
        for entry in self._entries.values():
            if load_pc in entry:
                entry.remove(load_pc)

    def clear(self) -> None:
        """Invalidate the whole table (context switch, §6.7.3)."""
        for entry in self._entries.values():
            entry.clear()

    def tracked_pcs(self) -> int:
        """Number of (register, load PC) associations currently tracked."""
        return sum(len(entry) for entry in self._entries.values())
