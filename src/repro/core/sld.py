"""Stable Load Detector (SLD): PC-indexed table of likely-stable load candidates.

Each entry carries the last-computed address, last-fetched value, a 5-bit
stability confidence level and the ``can_eliminate`` flag (paper §6.2, Table 1).
On every completed (non-eliminated) load the confidence is incremented when
both address and value match the previous execution and halved otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ConstableConfig


class SldEntry:
    """One SLD way."""

    __slots__ = ("pc", "last_address", "last_value", "confidence", "can_eliminate")

    def __init__(self, pc: int):
        self.pc = pc
        self.last_address: Optional[int] = None
        self.last_value: Optional[int] = None
        self.confidence = 0
        self.can_eliminate = False

    def matches(self, address: int, value: int) -> bool:
        """True if the completed load repeated its previous address and value."""
        return self.last_address == address and self.last_value == value


class StableLoadDetector:
    """Set-associative, LRU-replaced SLD."""

    def __init__(self, config: Optional[ConstableConfig] = None):
        self.config = config or ConstableConfig()
        self._sets: List[List[SldEntry]] = [[] for _ in range(self.config.sld_sets)]
        self.lookups = 0
        self.allocations = 0
        self.evictions = 0
        self.confidence_resets = 0

    # ------------------------------------------------------------------ helpers

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.sld_sets

    def _touch(self, sld_set: List[SldEntry], entry: SldEntry) -> None:
        sld_set.remove(entry)
        sld_set.append(entry)

    # ------------------------------------------------------------------- access

    def lookup(self, pc: int, update_lru: bool = True) -> Optional[SldEntry]:
        """Find the entry for ``pc`` (None if not tracked)."""
        self.lookups += 1
        sld_set = self._sets[self._set_index(pc)]
        for entry in sld_set:
            if entry.pc == pc:
                if update_lru:
                    self._touch(sld_set, entry)
                return entry
        return None

    def lookup_or_allocate(self, pc: int) -> SldEntry:
        """Find the entry for ``pc``, allocating (and possibly evicting) if absent."""
        entry = self.lookup(pc)
        if entry is not None:
            return entry
        sld_set = self._sets[self._set_index(pc)]
        if len(sld_set) >= self.config.sld_ways:
            sld_set.pop(0)
            self.evictions += 1
        entry = SldEntry(pc)
        sld_set.append(entry)
        self.allocations += 1
        return entry

    # ------------------------------------------------------------------ updates

    def record_execution(self, pc: int, address: int, value: int) -> SldEntry:
        """Update confidence with the outcome of a completed, non-eliminated load."""
        entry = self.lookup_or_allocate(pc)
        if entry.last_address is None:
            entry.confidence = 0
        elif entry.matches(address, value):
            entry.confidence = min(entry.confidence + 1, self.config.confidence_max)
        else:
            entry.confidence //= 2
        entry.last_address = address
        entry.last_value = value
        return entry

    def reset_elimination(self, pc: int) -> bool:
        """Clear ``can_eliminate`` for ``pc``; returns True if an entry was updated."""
        entry = self.lookup(pc, update_lru=False)
        if entry is None:
            return False
        if entry.can_eliminate:
            entry.can_eliminate = False
            self.confidence_resets += 1
            return True
        return False

    def punish(self, pc: int) -> None:
        """Halve confidence and clear elimination (memory-ordering violation, §6.8)."""
        entry = self.lookup(pc, update_lru=False)
        if entry is None:
            return
        entry.confidence //= 2
        entry.can_eliminate = False

    def reset_all(self) -> None:
        """Drop elimination state everywhere (physical address mapping change, §6.7.3)."""
        for sld_set in self._sets:
            for entry in sld_set:
                entry.can_eliminate = False

    def clear(self) -> None:
        """Invalidate the whole table."""
        self._sets = [[] for _ in range(self.config.sld_sets)]

    # -------------------------------------------------------------------- stats

    def tracked_loads(self) -> int:
        """Number of load PCs currently tracked across all sets."""
        return sum(len(s) for s in self._sets)

    def eliminable_loads(self) -> int:
        """Number of tracked loads currently eligible for elimination."""
        return sum(1 for s in self._sets for e in s if e.can_eliminate)

    def likely_stable_loads(self) -> int:
        """Number of tracked loads at or above the confidence threshold."""
        threshold = self.config.confidence_threshold
        return sum(1 for s in self._sets for e in s if e.confidence >= threshold)
