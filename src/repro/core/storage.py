"""Storage-overhead accounting for Constable's structures (paper Table 1).

The paper reports 12.4 KB per core: a 7.9 KB SLD, a 0.4 KB RMT and a 4.0 KB
AMT, assuming a 48-bit physical address space.  The same arithmetic is exposed
here so the Table 1 benchmark can regenerate the numbers from a
:class:`ConstableConfig`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ConstableConfig

#: Bits of the physical address space modelled by the baseline system.
PHYSICAL_ADDRESS_BITS = 48

#: Field widths used in Table 1.
SLD_TAG_BITS = 24
SLD_ADDRESS_BITS = 32
SLD_VALUE_BITS = 64
AMT_TAG_BITS = 32
AMT_HASHED_PC_BITS = 24
RMT_PC_BITS = 24  # hashed load-PC identifier stored per RMT slot


def sld_bits(config: ConstableConfig) -> int:
    """Total SLD storage in bits."""
    entry_bits = (SLD_TAG_BITS + SLD_ADDRESS_BITS + SLD_VALUE_BITS
                  + config.confidence_bits + 1)
    return config.sld_entries * entry_bits


def rmt_bits(config: ConstableConfig, num_registers: int = 16,
             num_stack_registers: int = 2) -> int:
    """Total RMT storage in bits."""
    other_registers = num_registers - num_stack_registers
    slots = (num_stack_registers * config.rmt_stack_capacity
             + other_registers * config.rmt_other_capacity)
    return slots * RMT_PC_BITS


def amt_bits(config: ConstableConfig) -> int:
    """Total AMT storage in bits."""
    entry_bits = AMT_TAG_BITS + config.amt_pcs_per_entry * AMT_HASHED_PC_BITS
    return config.amt_entries * entry_bits


def storage_overhead_bits(config: Optional[ConstableConfig] = None,
                          num_registers: int = 16) -> Dict[str, int]:
    """Per-structure and total storage, in bits."""
    config = config or ConstableConfig()
    breakdown = {
        "sld": sld_bits(config),
        "rmt": rmt_bits(config, num_registers=num_registers),
        "amt": amt_bits(config),
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def storage_overhead_report(config: Optional[ConstableConfig] = None,
                            num_registers: int = 16) -> Dict[str, float]:
    """Per-structure and total storage, in kilobytes (Table 1)."""
    bits = storage_overhead_bits(config, num_registers=num_registers)
    return {name: value / 8.0 / 1024.0 for name, value in bits.items()}
