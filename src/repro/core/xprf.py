"""Extra physical register file (xPRF) holding values of in-flight eliminated loads.

The paper uses a 32-entry xPRF so that breaking the load data dependence does
not require extra write ports on the main PRF (§6.3).  If no xPRF register is
free, the load is simply not eliminated (observed in only ~0.2% of instances).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ConstableConfig


class ExtraRegisterFile:
    """Occupancy-counted xPRF."""

    def __init__(self, config: Optional[ConstableConfig] = None):
        self.config = config or ConstableConfig()
        self.capacity = self.config.xprf_entries
        self.occupied = 0
        self.total_allocations = 0
        self.allocation_failures = 0
        self.peak_occupancy = 0

    def try_allocate(self) -> bool:
        """Reserve one xPRF register; returns False (and counts a failure) when full."""
        if self.occupied >= self.capacity:
            self.allocation_failures += 1
            return False
        self.occupied += 1
        self.total_allocations += 1
        if self.occupied > self.peak_occupancy:
            self.peak_occupancy = self.occupied
        return True

    def release(self) -> None:
        """Free one xPRF register (at retirement of the eliminated load)."""
        if self.occupied <= 0:
            raise ValueError("xPRF release without a matching allocation")
        self.occupied -= 1

    def release_all(self) -> None:
        """Free everything (full pipeline flush)."""
        self.occupied = 0

    def failure_rate(self) -> float:
        """Fraction of allocation attempts that failed (register file full)."""
        total = self.total_allocations + self.allocation_failures
        if total == 0:
            return 0.0
        return self.allocation_failures / total
