"""Experiment orchestration: named configurations, the runner, and per-figure harnesses."""

from repro.experiments.configs import (
    EXPERIMENT_CONFIDENCE_THRESHOLD,
    baseline_config,
    constable_config,
    eves_config,
    eves_constable_config,
    elar_config,
    rfp_config,
    constable_engine_config,
    named_configs,
)
from repro.experiments.runner import ExperimentRunner, WorkloadRun
from repro.experiments import figures
from repro.experiments.reporting import format_table, format_percent

__all__ = [
    "EXPERIMENT_CONFIDENCE_THRESHOLD",
    "baseline_config",
    "constable_config",
    "eves_config",
    "eves_constable_config",
    "elar_config",
    "rfp_config",
    "constable_engine_config",
    "named_configs",
    "ExperimentRunner",
    "WorkloadRun",
    "figures",
    "format_table",
    "format_percent",
]
