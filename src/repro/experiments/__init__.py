"""Experiment orchestration: named configurations, the runner, and per-figure harnesses."""

from repro.experiments.configs import (
    EXPERIMENT_CONFIDENCE_THRESHOLD,
    baseline_config,
    constable_config,
    eves_config,
    eves_constable_config,
    elar_config,
    rfp_config,
    constable_engine_config,
    named_configs,
)
from repro.experiments.cache import (
    CacheVerifyReport,
    ReportCache,
    ResultCache,
    SCHEMA_VERSION,
    config_fingerprint,
)
from repro.experiments.faults import FaultPlan, FaultSpec, InjectedFault
from repro.experiments.runner import (
    DeadLetter,
    ExperimentRunner,
    Shard,
    SimulationJob,
    SmtJob,
    SweepExecutionError,
    SweepHealthReport,
    WorkloadRun,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.orchestrator import (
    DedupStats,
    FIGURE_PLANS,
    FigurePlan,
    SweepOrchestrator,
    orchestrate_figures,
)
from repro.experiments import figures
from repro.experiments.reporting import format_table, format_percent

__all__ = [
    "CacheVerifyReport",
    "ReportCache",
    "ResultCache",
    "SCHEMA_VERSION",
    "Shard",
    "config_fingerprint",
    "SimulationJob",
    "SmtJob",
    "ParallelExperimentRunner",
    "EXPERIMENT_CONFIDENCE_THRESHOLD",
    "baseline_config",
    "constable_config",
    "eves_config",
    "eves_constable_config",
    "elar_config",
    "rfp_config",
    "constable_engine_config",
    "named_configs",
    "DeadLetter",
    "DedupStats",
    "FIGURE_PLANS",
    "FaultPlan",
    "FaultSpec",
    "FigurePlan",
    "InjectedFault",
    "SweepExecutionError",
    "SweepHealthReport",
    "SweepOrchestrator",
    "orchestrate_figures",
    "ExperimentRunner",
    "WorkloadRun",
    "figures",
    "format_table",
    "format_percent",
]
