"""``repro bench`` — wall-clock performance harness for the simulator core.

The harness establishes (and keeps extending) the repo's performance
trajectory: every run measures, per *figure family*, how fast the simulator
itself executes — wall seconds, simulated instructions per second, simulated
cycles per second — for each execution engine (the ``"cycle"`` per-cycle
reference stepper and the default ``"event"`` cycle-skipping engine), verifies
the engines produce bit-identical :class:`SimulationResult` records, and
writes everything to a ``BENCH_<timestamp>.json`` report.

Measurements are **distributions, not single shots**: every job runs
``--reps`` times (``REPRO_BENCH_REPS``, default 3; the first repetition is a
discardable warm-up) and the report records every sample alongside the
median, minimum and median absolute deviation.  Summary numbers (rates,
speedups, the walls :func:`perf_gate` compares) are medians — on a shared CI
host one contended repetition inflates a mean arbitrarily but moves a
median-of-N only under persistent load.

Families mirror how the paper's figures load the simulator:

* ``memory_bound`` — pointer-chasing and random-access workloads whose DRAM
  stalls dominate (the worst case for the per-cycle stepper and the headline
  win for cycle skipping);
* ``speedup`` — the fig. 11/12/15/16 single-thread speedup sweeps over
  suite workloads;
* ``smt`` — a fig. 14-style SMT2 pair;
* ``sensitivity`` — fig. 13/20-style width/depth/category variants.

Reports land in ``bench_reports/`` by default (``BENCH_<UTC timestamp>.json``);
:func:`latest_bench_report` resolves the newest committed report, still
accepting the pre-``bench_reports/`` repo-root location with a deprecation
warning.  :func:`perf_gate` compares a fresh report against a committed
reference — the soft regression gate CI's perf-smoke job runs — and
:func:`load_bench_history` / ``repro bench history`` render the perf
trajectory across every accumulated report.

**Report schema** (``BENCH_<UTC timestamp>.json``, ``schema`` = 4)::

    {
      "schema": 4,
      "created_utc": "YYYY-mm-ddTHH:MM:SSZ",
      "quick": bool,                  # --quick run (reduced budgets)
      "reps": N,                      # repetitions per measurement
      "warmup_discarded": bool,       # first rep excluded from the stats
      "engines": ["cycle", "event"],
      "platform": {"python": "...", "machine": "...", "system": "..."},
      "host": {                       # provenance of the measuring host
        "platform": "...", "machine": "...", "system": "...",
        "release": "...", "python": "...", "implementation": "...",
        "cpu_count": N, "load_average": [l1, l5, l15] | null,
        "git_rev": "..." | null},
      "families": {
        "<family>": {
          "instructions": <per-workload budget>,
          "jobs": [                   # one entry per (workload, config)
            {"workload": "...", "config": "...", "smt": bool,
             "instructions": N, "cycles": N,
             "engines": {"<engine>": {
                 "wall_seconds": s,   # MEDIAN of the measured samples
                 "wall_samples": [s, ...],   # every repetition, warm-up first
                 "wall_min": s, "wall_mad": s,
                 "instructions_per_second": ips,
                 "cycles_per_second": cps}},
             "skipped_idle_cycles": N,   # event engine
             "stepped_cycles": N,        # event engine
             "identical": bool}, ...],
          "totals": {"<engine>": {    # per-rep family sums, same stat fields
              "wall_seconds": s, "wall_samples": [...],
              "wall_min": s, "wall_mad": s,
              "instructions_per_second": ips, "cycles_per_second": cps}},
          "speedup": median cycle wall / median event wall,
          "skipped_cycle_fraction": skipped / (skipped + stepped),
          "identical": bool},
        ...},
      "speedup_geomean": geomean of family speedups,
      "identical": bool,              # every job bit-identical across engines
      "orchestrator": {               # only with --orchestrator
        "figures": [...], "workers": N,
        "per_suite": N, "instructions": N,
        "reps": N, "warmup_discarded": bool,
        "serial_wall_seconds": s,     # median over reps (harnesses serial)
        "orchestrated_wall_seconds": s,  # median over reps (one deduped wave)
        "serial_wall_samples": [...], "orchestrated_wall_samples": [...],
        "serial_wall_mad": s, "orchestrated_wall_mad": s,
        "speedup": serial / orchestrated (medians),
        "identical": bool,            # figure payloads bit-identical
        "dedup": {"planned": N, "unique": N, "deduped": N,
                  "cache_warm": N, "executed": N, "cold_jobs": [...]},
        "health": {                 # last repetition's supervision report
            "jobs": N, "attempts": N, "retries": N, "timeouts": N,
            "pool_rebuilds": N, "degraded": N, "dead_lettered": N,
            "dead_letters": [...]}}
    }

``speedup``/``speedup_geomean`` are only present when both engines ran; the
``orchestrator`` section only when the orchestrated mode was requested.  The
CI perf-smoke job runs ``repro bench --quick`` and uploads the report as an
artifact, then soft-gates median wall seconds against the committed reference
— generous threshold plus a noise margin from the reference's recorded
spread, warn-only off the canonical repo — but the run fails loudly if any
engine pair (or the orchestrated figure set) diverges, so the harness doubles
as an end-to-end differential check.

Schema history: 1 = engine families only, single-shot walls; 2 = adds the
optional ``orchestrator`` section; 3 = adds ``reps``/``warmup_discarded``,
per-measurement sample distributions (``wall_samples``/``wall_min``/
``wall_mad``) and the ``host`` provenance block; 4 = adds the orchestrator
``health`` supervision block (retries/timeouts/pool rebuilds observed while
measuring).  ``wall_seconds`` keeps its name and position in every schema (a
single shot *is* its own median), so :func:`latest_bench_report`,
:func:`perf_gate`, :func:`format_bench_table` and :func:`load_bench_history`
read all four schemas.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats_utils import (
    filtered_geomean,
    median,
    median_abs_deviation,
)
from repro.experiments.configs import (
    baseline_config,
    constable_config,
    eves_constable_config,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import CORE_ENGINES, OutOfOrderCore
from repro.pipeline.smt import SMT_SECOND_THREAD_BASE_PC
from repro.workloads.generator import DEFAULT_BASE_PC, generate_trace
from repro.workloads.suites import WorkloadSpec, get_workload_spec
from repro.workloads.trace import Trace

#: Version of the BENCH_*.json report layout (4 adds the orchestrator
#: supervision health block; see the module docstring's history).
BENCH_SCHEMA_VERSION = 4

#: Report filename pattern; the timestamp is UTC.
BENCH_FILE_FORMAT = "BENCH_%Y%m%dT%H%M%SZ.json"

#: Where reports are written (and committed) by default.
BENCH_REPORTS_DIR = "bench_reports"

#: Filename glob matching bench-report *candidates*; discovery additionally
#: requires the strict timestamp shape of :data:`BENCH_FILE_RE`, so a stray
#: ``BENCH_notes.json`` next to the reports is ignored instead of crashing
#: ``json.loads`` (it sorts lexically *after* every timestamp).
BENCH_FILE_GLOB = "BENCH_*.json"

#: Strict report-name shape: ``BENCH_YYYYmmddTHHMMSSZ.json``.
BENCH_FILE_RE = re.compile(r"^BENCH_(\d{8}T\d{6}Z)\.json$")

#: Environment variable overriding the default repetition count.
BENCH_REPS_ENV = "REPRO_BENCH_REPS"

#: Repetitions per measurement when neither ``--reps`` nor the environment
#: overrides it.  The first repetition is a warm-up (caches, allocator, JIT-ed
#: readers) and is discarded from the statistics by default.
DEFAULT_BENCH_REPS = 3

#: Figures measured by the orchestrated mode: a heavy-overlap subset (the
#: baseline/constable family is demanded by every one of them, and fig. 13's
#: ``all_loads`` / fig. 20's ``baseline_w3``-style grid points are
#: content-identical to configs the others already demand), plus fig. 14 so
#: the wave carries SMT jobs too.
ORCHESTRATOR_BENCH_FIGURES = (
    "fig11", "fig12", "fig13", "fig14", "fig16", "fig17", "fig20")


def resolve_bench_reps(reps: Optional[int] = None) -> int:
    """The effective repetition count: argument, else env, else the default.

    A malformed or non-positive ``REPRO_BENCH_REPS`` warns and falls back to
    :data:`DEFAULT_BENCH_REPS` — repetition count is a robustness knob, never
    a correctness requirement, so it must not kill a bench run.  An explicit
    ``reps`` argument stays strict and raises on invalid values.
    """
    if reps is not None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        return reps
    raw = os.environ.get(BENCH_REPS_ENV, "").strip()
    if not raw:
        return DEFAULT_BENCH_REPS
    try:
        value = int(raw)
    except ValueError:
        value = None
    if value is None or value < 1:
        warnings.warn(
            f"ignoring invalid {BENCH_REPS_ENV}={raw!r}: expected a positive "
            f"integer; using {DEFAULT_BENCH_REPS} repetitions",
            RuntimeWarning, stacklevel=2)
        return DEFAULT_BENCH_REPS
    return value


def _git_rev() -> Optional[str]:
    """The current git revision, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def host_provenance() -> Dict[str, object]:
    """Provenance of the measuring host, embedded in every schema-3 report.

    Wall-clock samples are only comparable in context: the gate's noise
    margin assumes same-ish hardware, so the report records what ran it —
    platform, CPU count, the load average at measurement time (None where the
    OS has no :func:`os.getloadavg`) and the git revision measured (None
    outside a work tree).
    """
    try:
        load_average: Optional[List[float]] = list(os.getloadavg())
    except (OSError, AttributeError):
        load_average = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "load_average": load_average,
        "git_rev": _git_rev(),
    }


@dataclass(frozen=True)
class BenchJob:
    """One measured simulation: workload spec(s) × configuration."""

    workload: str
    config_name: str
    config: CoreConfig
    specs: Tuple[WorkloadSpec, ...]

    @property
    def smt(self) -> bool:
        """True when the job simulates an SMT2 pair (two workload specs)."""
        return len(self.specs) > 1


def _membound_specs() -> List[WorkloadSpec]:
    """Purpose-built memory-bound workloads (footprints well past the LLC)."""
    return [
        WorkloadSpec(
            name="membound_chase", suite="Bench", seed=11,
            kernels=[("pointer_chase", {"inner_iterations": 16,
                                        "ring_nodes": 1 << 16}),
                     ("random_access", {"inner_iterations": 8,
                                        "region_words": 1 << 20})],
            description="dependent pointer chase + random access over 8 MiB"),
        WorkloadSpec(
            name="membound_scatter", suite="Bench", seed=23,
            kernels=[("random_access", {"inner_iterations": 12,
                                        "region_words": 1 << 21}),
                     ("streaming", {"inner_iterations": 6,
                                    "region_words": 1 << 19})],
            description="random access over 16 MiB + LLC-sized streaming"),
    ]


def _family_memory_bound() -> List[BenchJob]:
    jobs = []
    for spec in _membound_specs():
        for config_name, config in (("baseline", baseline_config()),
                                    ("constable", constable_config())):
            jobs.append(BenchJob(spec.name, config_name, config, (spec,)))
    return jobs


def _family_speedup() -> List[BenchJob]:
    jobs = []
    for workload in ("client_00", "ispec_00"):
        spec = get_workload_spec(workload)
        for config_name, config in (("baseline", baseline_config()),
                                    ("constable", constable_config()),
                                    ("eves+constable", eves_constable_config())):
            jobs.append(BenchJob(workload, config_name, config, (spec,)))
    return jobs


def _family_smt() -> List[BenchJob]:
    first = get_workload_spec("client_00")
    second = get_workload_spec("server_00")
    return [BenchJob("client_00+server_00", config_name, config, (first, second))
            for config_name, config in (("baseline", baseline_config()),
                                        ("constable", constable_config()))]


def _family_sensitivity() -> List[BenchJob]:
    spec = get_workload_spec("client_00")
    return [
        BenchJob("client_00", "constable_w3",
                 constable_config().with_load_width(3), (spec,)),
        BenchJob("client_00", "constable_d2.0",
                 constable_config().with_depth_scale(2.0), (spec,)),
    ]


#: Family registry: name -> (job builder, full budget, quick budget).
BENCH_FAMILIES: Dict[str, Tuple[Callable[[], List[BenchJob]], int, int]] = {
    "memory_bound": (_family_memory_bound, 20_000, 4_000),
    "speedup": (_family_speedup, 6_000, 1_500),
    "smt": (_family_smt, 3_000, 1_000),
    "sensitivity": (_family_sensitivity, 6_000, 1_500),
}


def _traces_for(job: BenchJob, instructions: int,
                memo: Dict[Tuple[str, int, int], Trace]) -> List[Trace]:
    """Generate (and memoise) the job's traces; generation is not timed."""
    traces = []
    for position, spec in enumerate(job.specs):
        base_pc = DEFAULT_BASE_PC if position == 0 else SMT_SECOND_THREAD_BASE_PC
        key = (spec.name, instructions, base_pc)
        trace = memo.get(key)
        if trace is None:
            trace = generate_trace(spec, num_instructions=instructions,
                                   base_pc=base_pc)
            memo[key] = trace
        traces.append(trace)
    return traces


def _measured(samples: Sequence[float], discard_warmup: bool) -> List[float]:
    """The samples the statistics run over (warm-up dropped when possible)."""
    if discard_warmup and len(samples) > 1:
        return list(samples[1:])
    return list(samples)


def _distribution(samples: Sequence[float], instructions: int, cycles: int,
                  discard_warmup: bool) -> Dict[str, object]:
    """Sample distribution + median-derived rates for one measurement."""
    measured = _measured(samples, discard_warmup)
    center = median(measured)
    safe_wall = max(center, 1e-9)
    return {
        "wall_seconds": center,
        "wall_samples": list(samples),
        "wall_min": min(measured),
        "wall_mad": median_abs_deviation(measured),
        "instructions_per_second": instructions / safe_wall,
        "cycles_per_second": cycles / safe_wall,
    }


def run_bench(quick: bool = False,
              engines: Sequence[str] = ("cycle", "event"),
              families: Optional[Sequence[str]] = None,
              instructions: Optional[int] = None,
              reps: Optional[int] = None,
              discard_warmup: bool = True) -> Dict[str, object]:
    """Measure every requested family with every requested engine.

    Each (job, engine) measurement repeats ``reps`` times (argument, else
    ``REPRO_BENCH_REPS``, else 3); with ``discard_warmup`` (the default) and
    more than one repetition the first sample is excluded from the summary
    statistics but still recorded in ``wall_samples``.  ``instructions``
    overrides the per-family budgets (used by tests); the normal entry points
    pass None and get the full or ``--quick`` budgets.  Returns the report
    payload described in the module docstring.
    """
    for engine in engines:
        if engine not in CORE_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected {CORE_ENGINES}")
    if not engines:
        raise ValueError("at least one engine is required")
    if instructions is not None and instructions <= 0:
        raise ValueError("instructions must be positive")
    reps = resolve_bench_reps(reps)
    selected = list(families) if families is not None else list(BENCH_FAMILIES)
    unknown = sorted(set(selected) - set(BENCH_FAMILIES))
    if unknown:
        raise ValueError(
            f"unknown bench families {unknown}; available: {list(BENCH_FAMILIES)}")

    trace_memo: Dict[Tuple[str, int, int], Trace] = {}
    family_reports: Dict[str, Dict[str, object]] = {}
    all_identical = True
    for family in selected:
        builder, full_budget, quick_budget = BENCH_FAMILIES[family]
        budget = (instructions if instructions is not None
                  else (quick_budget if quick else full_budget))
        jobs = builder()
        job_reports: List[Dict[str, object]] = []
        totals = {engine: {"wall_samples": [0.0] * reps,
                           "instructions": 0, "cycles": 0}
                  for engine in engines}
        family_identical = True
        family_skipped = 0
        family_stepped = 0
        for job in jobs:
            traces = _traces_for(job, budget, trace_memo)
            results = {}
            walls: Dict[str, List[float]] = {engine: [] for engine in engines}
            record: Dict[str, object] = {
                "workload": job.workload, "config": job.config_name,
                "smt": job.smt, "engines": {},
            }
            for rep in range(reps):
                for engine in engines:
                    start = time.perf_counter()
                    core = OutOfOrderCore(job.config, traces,
                                          name=job.config_name, engine=engine)
                    result = core.run()
                    wall = time.perf_counter() - start
                    walls[engine].append(wall)
                    totals[engine]["wall_samples"][rep] += wall
                    if rep == 0:
                        results[engine] = result
                        totals[engine]["instructions"] += result.instructions
                        totals[engine]["cycles"] += result.cycles
                        if engine == "event":
                            record["skipped_idle_cycles"] = core.skipped_idle_cycles
                            record["stepped_cycles"] = core.stepped_cycles
                            family_skipped += core.skipped_idle_cycles
                            family_stepped += core.stepped_cycles
            for engine in engines:
                record["engines"][engine] = _distribution(
                    walls[engine], results[engine].instructions,
                    results[engine].cycles, discard_warmup)
            record["instructions"] = results[engines[0]].instructions
            record["cycles"] = results[engines[0]].cycles
            reference = results[engines[0]].to_dict()
            identical = all(results[engine].to_dict() == reference
                            for engine in engines[1:])
            record["identical"] = identical
            family_identical &= identical
            job_reports.append(record)
        report: Dict[str, object] = {
            "instructions": budget,
            "jobs": job_reports,
            "totals": {engine: _distribution(values["wall_samples"],
                                             values["instructions"],
                                             values["cycles"], discard_warmup)
                       for engine, values in totals.items()},
            "identical": family_identical,
        }
        if "cycle" in engines and "event" in engines:
            event_wall = max(report["totals"]["event"]["wall_seconds"], 1e-9)
            report["speedup"] = (report["totals"]["cycle"]["wall_seconds"]
                                 / event_wall)
        if family_stepped or family_skipped:
            report["skipped_cycle_fraction"] = (
                family_skipped / max(1, family_skipped + family_stepped))
        family_reports[family] = report
        all_identical &= family_identical

    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "reps": reps,
        "warmup_discarded": bool(discard_warmup and reps > 1),
        "engines": list(engines),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "host": host_provenance(),
        "families": family_reports,
        "identical": all_identical,
    }
    speedups = [report["speedup"] for report in family_reports.values()
                if "speedup" in report]
    if speedups:
        payload["speedup_geomean"] = filtered_geomean(speedups)
    return payload


def run_orchestrator_bench(quick: bool = False,
                           workers: Optional[int] = None,
                           per_suite: Optional[int] = None,
                           instructions: Optional[int] = None,
                           figures: Optional[Sequence[str]] = None,
                           reps: Optional[int] = None,
                           discard_warmup: bool = True) -> Dict[str, object]:
    """Measure the cross-figure orchestrator against the serial per-figure path.

    Both paths run the same figure set cold (no on-disk cache) on identical
    parallel runners: the *serial* path executes each harness back-to-back —
    every ``run_config`` call is its own pool barrier, exactly what
    ``repro figures all --no-orchestrate`` does — while the *orchestrated*
    path dedups all figures' jobs and feeds them through one wave.  The
    serial-vs-wave measurement repeats ``reps`` times (fresh runners each
    repetition, warm-up discardable exactly like :func:`run_bench`); figure
    payloads are verified bit-identical between the two paths on every
    repetition.  The returned section (see the module docstring's schema)
    records both wall distributions, the median speedup ratio and the dedup
    stats.
    """
    from repro.experiments.figures import FIGURE_HARNESSES
    from repro.experiments.orchestrator import orchestrate_figures
    from repro.experiments.parallel import ParallelExperimentRunner

    selected = list(figures) if figures is not None else list(ORCHESTRATOR_BENCH_FIGURES)
    unknown = sorted(set(selected) - set(FIGURE_HARNESSES))
    if unknown:
        raise ValueError(f"unknown orchestrator bench figures {unknown}; "
                         f"available: {sorted(FIGURE_HARNESSES)}")
    reps = resolve_bench_reps(reps)
    if per_suite is None:
        per_suite = 1 if quick else 2
    if instructions is None:
        instructions = 1_500 if quick else 6_000
    runner_kwargs = dict(per_suite=per_suite, instructions=instructions)
    if workers is not None:
        runner_kwargs["max_workers"] = workers

    serial_walls: List[float] = []
    orchestrated_walls: List[float] = []
    identical = True
    effective_workers = workers
    dedup = None
    health = None
    for _ in range(reps):
        with ParallelExperimentRunner(**runner_kwargs) as serial_runner:
            start = time.perf_counter()
            serial_results = {name: FIGURE_HARNESSES[name](serial_runner)
                              for name in selected}
            serial_walls.append(time.perf_counter() - start)
            effective_workers = serial_runner.max_workers

        with ParallelExperimentRunner(**runner_kwargs) as wave_runner:
            start = time.perf_counter()
            orchestrated_results, dedup = orchestrate_figures(wave_runner, selected)
            orchestrated_walls.append(time.perf_counter() - start)
            health = wave_runner.health.to_dict()

        identical &= all(serial_results[name] == orchestrated_results[name]
                         for name in selected)

    serial_measured = _measured(serial_walls, discard_warmup)
    orchestrated_measured = _measured(orchestrated_walls, discard_warmup)
    serial_wall = median(serial_measured)
    orchestrated_wall = median(orchestrated_measured)
    return {
        "figures": selected,
        "workers": effective_workers,
        "per_suite": per_suite,
        "instructions": instructions,
        "reps": reps,
        "warmup_discarded": bool(discard_warmup and reps > 1),
        "serial_wall_seconds": serial_wall,
        "orchestrated_wall_seconds": orchestrated_wall,
        "serial_wall_samples": serial_walls,
        "orchestrated_wall_samples": orchestrated_walls,
        "serial_wall_mad": median_abs_deviation(serial_measured),
        "orchestrated_wall_mad": median_abs_deviation(orchestrated_measured),
        "speedup": serial_wall / max(orchestrated_wall, 1e-9),
        "identical": identical,
        "dedup": dedup.to_dict(),
        "health": health,
    }


def write_bench_report(payload: Dict[str, object],
                       output: Optional[Union[str, Path]] = None,
                       directory: Union[str, Path] = BENCH_REPORTS_DIR) -> Path:
    """Write the report; default ``bench_reports/BENCH_<UTC timestamp>.json``."""
    if output is None:
        output = Path(directory) / time.strftime(BENCH_FILE_FORMAT, time.gmtime())
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _report_paths(directory: Union[str, Path]) -> List[Path]:
    """Strictly named report files under ``directory``, oldest first.

    The glob's loose matches (``BENCH_notes.json`` and friends) are filtered
    out by :data:`BENCH_FILE_RE` so discovery never tries to ``json.loads`` a
    scratch file; strict names embed a UTC timestamp, making lexical order
    chronological.
    """
    return sorted(path for path in Path(directory).glob(BENCH_FILE_GLOB)
                  if BENCH_FILE_RE.match(path.name))


def latest_bench_report(directory: Union[str, Path] = BENCH_REPORTS_DIR,
                        legacy_directory: Union[str, Path] = "."
                        ) -> Optional[Tuple[Path, Dict[str, object]]]:
    """Locate and load the newest committed bench report.

    Looks in ``bench_reports/`` first; when empty, falls back to the
    pre-``bench_reports/`` location (``BENCH_*.json`` in the repo root) with a
    :class:`DeprecationWarning`.  Only strictly named reports participate (see
    :data:`BENCH_FILE_RE`); filenames embed a UTC timestamp, so the lexically
    greatest name is the newest report.  A legacy-root report *newer* than
    everything in ``bench_reports/`` would silently lose to the new location —
    that shadowing gets an explicit :class:`UserWarning` so a misplaced fresh
    reference is noticed instead of green-washing the perf gate.  Returns
    ``(path, payload)`` or None when no report exists anywhere.
    """
    reports = _report_paths(directory)
    legacy = _report_paths(legacy_directory)
    if reports:
        if legacy and legacy[-1].name > reports[-1].name:
            warnings.warn(
                f"legacy-root bench report {legacy[-1]} is newer than every "
                f"report in {Path(directory)}/ but is shadowed by "
                f"{reports[-1]}; move it into {BENCH_REPORTS_DIR}/ if it is "
                f"meant to be the reference",
                UserWarning, stacklevel=2)
    elif legacy:
        warnings.warn(
            f"bench reports in {Path(legacy_directory).resolve()} are "
            f"deprecated; move them into {BENCH_REPORTS_DIR}/",
            DeprecationWarning, stacklevel=2)
        reports = legacy
    else:
        return None
    path = reports[-1]
    return path, json.loads(path.read_text(encoding="utf-8"))


def load_bench_history(directory: Union[str, Path] = BENCH_REPORTS_DIR,
                       legacy_directory: Union[str, Path] = "."
                       ) -> List[Dict[str, object]]:
    """One summary per discovered report, oldest first — the perf trajectory.

    Reads every strictly named report under ``directory`` *and* the legacy
    repo root (schemas 1-3 alike) and reduces each to the numbers the
    trajectory cares about: per-family median event-engine wall, the
    engine-speedup geomean and the orchestrator speedup.  A report that fails
    to parse is skipped with a :class:`UserWarning` rather than sinking the
    whole history.
    """
    entries: List[Dict[str, object]] = []
    seen: set = set()
    for base in (directory, legacy_directory):
        for path in _report_paths(base):
            if path.name in seen:
                continue
            seen.add(path.name)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("report is not a JSON object")
            except (OSError, ValueError) as error:
                warnings.warn(f"skipping unreadable bench report {path}: {error}",
                              UserWarning, stacklevel=2)
                continue
            family_walls: Dict[str, Optional[float]] = {}
            families = payload.get("families")
            if isinstance(families, dict):
                for family, report in families.items():
                    try:
                        family_walls[family] = (
                            report["totals"]["event"]["wall_seconds"])
                    except (KeyError, TypeError):
                        family_walls[family] = None
            orchestrator = payload.get("orchestrator") or {}
            entries.append({
                "path": str(path),
                "name": path.name,
                "created_utc": payload.get("created_utc",
                                           BENCH_FILE_RE.match(path.name).group(1)),
                "schema": payload.get("schema"),
                "quick": bool(payload.get("quick")),
                "reps": int(payload.get("reps", 1)),
                "family_walls": family_walls,
                "speedup_geomean": payload.get("speedup_geomean"),
                "orchestrator_speedup": orchestrator.get("speedup"),
            })
    entries.sort(key=lambda entry: entry["name"])
    return entries


def format_bench_history(entries: Sequence[Dict[str, object]]) -> str:
    """Render :func:`load_bench_history` entries as a trajectory table."""
    from repro.experiments.reporting import format_table

    families: List[str] = []
    for entry in entries:
        for family in entry["family_walls"]:
            if family not in families:
                families.append(family)
    rows = []
    for entry in entries:
        row = [
            entry["created_utc"],
            entry["schema"] if entry["schema"] is not None else "?",
            "quick" if entry["quick"] else "full",
            entry["reps"],
        ]
        for family in families:
            wall = entry["family_walls"].get(family)
            row.append(f"{wall:.2f}s" if wall is not None else "-")
        geomean = entry["speedup_geomean"]
        row.append(f"{geomean:.2f}x" if geomean is not None else "-")
        orchestrated = entry["orchestrator_speedup"]
        row.append(f"{orchestrated:.2f}x" if orchestrated is not None else "-")
        rows.append(row)
    headers = (["report (UTC)", "schema", "budget", "reps"]
               + [f"{family} wall" for family in families]
               + ["event/cycle", "orchestrator"])
    return format_table(headers, rows,
                        title=f"bench trajectory ({len(entries)} reports)")


@dataclass
class PerfGateResult:
    """Outcome of one :func:`perf_gate` evaluation.

    ``problems`` holds one message per confirmed regression; ``compared``
    names every comparison actually performed (families plus ``"aggregate"``).
    A gate that performed *no* comparison is **vacuous**, not green:
    ``vacuous_reason`` says why (budget mismatch, no shared family, nothing
    clearing the noise floor), so a mis-budgeted reference can never
    green-wash regressions silently.
    """

    problems: List[str] = field(default_factory=list)
    compared: List[str] = field(default_factory=list)
    vacuous_reason: Optional[str] = None

    @property
    def vacuous(self) -> bool:
        """True when the gate compared nothing at all."""
        return not self.compared

    @property
    def ok(self) -> bool:
        """True when comparisons happened and none regressed."""
        return bool(self.compared) and not self.problems

    def describe(self) -> str:
        """A human-readable verdict (what the CI perf-smoke log prints)."""
        if self.vacuous:
            reason = self.vacuous_reason or "no comparison was possible"
            return (f"perf gate VACUOUS (no comparison performed): {reason}")
        if self.problems:
            lines = [f"PERF REGRESSION: {problem}" for problem in self.problems]
            return "\n".join(lines)
        return f"perf gate OK ({len(self.compared)} comparisons: " \
               f"{', '.join(self.compared)})"


def perf_gate(current: Dict[str, object], reference: Dict[str, object],
              threshold: float = 1.5,
              min_wall_seconds: float = 0.5,
              mad_multiplier: float = 3.0,
              min_noise_fraction: float = 0.05) -> PerfGateResult:
    """Compare a fresh bench payload against a committed reference report.

    Returns a :class:`PerfGateResult` with one problem per comparison whose
    event-engine **median** wall regressed past the gate — the soft gate CI's
    perf-smoke job evaluates.  A regression must clear *two* bars at once:

    * ``threshold`` × the reference median (the relative bar), **and**
    * the reference median + the noise margin, where the margin is the larger
      of ``mad_multiplier`` × the reference's recorded median absolute
      deviation and ``min_noise_fraction`` × the reference median.

    The ``min_noise_fraction`` floor exists because the MAD-based margin
    silently degenerates to **+0** against schema-1/2 references (which never
    recorded a spread) and against schema-3 reports taken with ``--reps 1``
    or two reps (a one-sample distribution has MAD exactly 0).  With a zero
    margin the second bar collapses into the first (``now > then`` is implied
    by ``now > then * threshold``), so those references got *less* noise
    protection than noisy ones — the opposite of the intent.  The floor keeps
    a minimum relative margin in play no matter how the reference was taken.

    Two further guards keep the gate honest across machines of different
    speeds: a family is only compared when its *reference* wall reaches
    ``min_wall_seconds`` (sub-threshold walls are timer/scheduler noise), and
    the **aggregate** wall over all shared families is compared too, so a
    broad slowdown spread thinly over individually-tiny families is still
    caught.  When nothing at all could be compared — different budgets (full
    vs ``--quick``), disjoint family sets, or nothing clearing the floor —
    the result is explicitly **vacuous** with a reason, never a silent pass.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")
    if mad_multiplier < 0.0:
        raise ValueError("mad_multiplier must be non-negative")
    if min_noise_fraction < 0.0:
        raise ValueError("min_noise_fraction must be non-negative")
    current_quick = bool(current.get("quick"))
    reference_quick = bool(reference.get("quick"))
    if current_quick != reference_quick:
        return PerfGateResult(vacuous_reason=(
            f"budget mismatch: current report is "
            f"{'quick' if current_quick else 'full'}-budget but the reference "
            f"is {'quick' if reference_quick else 'full'}-budget — "
            f"cross-budget walls are not comparable; re-run or re-commit a "
            f"matching reference"))
    result = PerfGateResult()
    reference_families = reference.get("families", {})
    shared = 0
    total_now = total_then = total_mad = 0.0
    for family, report in current.get("families", {}).items():
        baseline = reference_families.get(family)
        if baseline is None:
            continue
        now_totals = report.get("totals", {}).get("event", {})
        then_totals = baseline.get("totals", {}).get("event", {})
        now = now_totals.get("wall_seconds")
        then = then_totals.get("wall_seconds")
        if not now or not then:
            continue
        shared += 1
        mad = float(then_totals.get("wall_mad") or 0.0)
        total_now += now
        total_then += then
        total_mad += mad
        if then < min_wall_seconds:
            continue
        result.compared.append(family)
        margin = max(mad_multiplier * mad, min_noise_fraction * then)
        if now > then * threshold and now > then + margin:
            result.problems.append(
                f"{family}/event: median {now:.2f}s vs committed {then:.2f}s "
                f"(> {threshold:.2f}x and beyond the "
                f"+{margin:.3f}s noise margin)")
    if total_then >= min_wall_seconds:
        result.compared.append("aggregate")
        margin = max(mad_multiplier * total_mad,
                     min_noise_fraction * total_then)
        if (total_now > total_then * threshold
                and total_now > total_then + margin):
            result.problems.append(
                f"aggregate/event: median {total_now:.2f}s vs committed "
                f"{total_then:.2f}s (> {threshold:.2f}x and beyond the "
                f"+{margin:.3f}s noise margin)")
    if not result.compared:
        if shared == 0:
            result.vacuous_reason = (
                "the two reports share no comparable family (check the "
                "--families subsets and that both recorded event-engine walls)")
        else:
            result.vacuous_reason = (
                f"no shared family (or their aggregate) reached the "
                f"{min_wall_seconds:.2f}s noise floor (aggregate reference "
                f"wall {total_then:.2f}s) — the reference budgets are too "
                f"small for this gate to mean anything")
    return result


def speedup_floor_gate(payload: Dict[str, object],
                       geomean_floor: float = 1.3,
                       family_floor: float = 0.95) -> PerfGateResult:
    """Assert the event engine actually pays for itself in ``payload``.

    The perf-smoke job runs this against the *fresh* bench payload (no
    committed reference needed): the cross-family geomean of the
    event-vs-cycle speedup must reach ``geomean_floor`` and no single family
    may fall below ``family_floor`` (i.e. the event engine must never be
    meaningfully *slower* than the reference stepper it exists to beat).

    The floors are deliberately below the medians measured on an idle
    machine (geomean ~1.7, weakest family ~1.15): CI boxes are noisy and
    share cores, and this gate is meant to catch the event engine's win
    structurally collapsing — a gating bug re-sweeping every cycle, a new
    per-cycle cost in the skip path — not a 10% scheduler hiccup.

    A payload that never ran both engines (``--engines event``) or recorded
    no family speedups is **vacuous**, not green, exactly like
    :func:`perf_gate`.
    """
    if geomean_floor <= 0.0 or family_floor <= 0.0:
        raise ValueError("floors must be positive")
    result = PerfGateResult()
    engines = payload.get("engines") or []
    if "cycle" not in engines or "event" not in engines:
        result.vacuous_reason = (
            f"payload ran engines {list(engines)!r}; both 'cycle' and "
            f"'event' are needed to measure a speedup")
        return result
    families = payload.get("families")
    if not isinstance(families, dict) or not families:
        result.vacuous_reason = "payload recorded no family reports"
        return result
    for family, report in families.items():
        speedup = report.get("speedup")
        if not isinstance(speedup, (int, float)):
            continue
        result.compared.append(family)
        if speedup < family_floor:
            result.problems.append(
                f"{family}: event engine speedup {speedup:.2f}x is below the "
                f"{family_floor:.2f}x family floor — the event engine is "
                f"slower than the cycle stepper here")
    if not result.compared:
        result.vacuous_reason = (
            "no family recorded an event-vs-cycle speedup (were both "
            "engines actually run?)")
        return result
    geomean = payload.get("speedup_geomean")
    if isinstance(geomean, (int, float)):
        result.compared.append("geomean")
        if geomean < geomean_floor:
            result.problems.append(
                f"geomean: event engine speedup {geomean:.2f}x is below the "
                f"{geomean_floor:.2f}x floor")
    return result


def format_bench_table(payload: Dict[str, object]) -> str:
    """A human-readable summary of one bench payload (any schema)."""
    from repro.experiments.reporting import format_table

    engines = payload["engines"]
    primary = "event" if "event" in engines else engines[0]
    rows = []
    for family, report in payload["families"].items():
        totals = report["totals"][primary]
        wall = f"{totals['wall_seconds']:.2f}s"
        mad = totals.get("wall_mad")
        if mad is not None:
            wall += f" +-{mad:.3f}"
        rows.append((
            family,
            wall,
            f"{totals['instructions_per_second'] / 1000.0:.1f}k",
            f"{report['speedup']:.2f}x" if "speedup" in report else "-",
            f"{report.get('skipped_cycle_fraction', 0.0) * 100:.1f}%",
            "yes" if report["identical"] else "NO",
        ))
    title = ("repro bench (quick)" if payload.get("quick") else "repro bench")
    reps = int(payload.get("reps", 1))
    if reps > 1:
        title += f" — median of {reps} reps" + (
            " (first discarded)" if payload.get("warmup_discarded") else "")
    table = format_table(
        ["family", f"{primary} wall", "sim kinstr/s", "speedup vs cycle",
         "cycles skipped", "bit-identical"],
        rows, title=title)
    orchestrator = payload.get("orchestrator")
    if orchestrator:
        dedup = orchestrator["dedup"]
        table += (
            f"\norchestrator ({len(orchestrator['figures'])} figures, "
            f"{orchestrator['workers']} workers): "
            f"serial {orchestrator['serial_wall_seconds']:.2f}s -> wave "
            f"{orchestrator['orchestrated_wall_seconds']:.2f}s "
            f"({orchestrator['speedup']:.2f}x); "
            f"jobs {dedup['planned']} planned / {dedup['unique']} unique / "
            f"{dedup['cache_warm']} cache-warm; "
            f"{'bit-identical' if orchestrator['identical'] else 'DIVERGED'}")
    return table
