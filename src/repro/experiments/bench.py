"""``repro bench`` — wall-clock performance harness for the simulator core.

The harness establishes (and keeps extending) the repo's performance
trajectory: every run measures, per *figure family*, how fast the simulator
itself executes — wall seconds, simulated instructions per second, simulated
cycles per second — for each execution engine (the ``"cycle"`` per-cycle
reference stepper and the default ``"event"`` cycle-skipping engine), verifies
the engines produce bit-identical :class:`SimulationResult` records, and
writes everything to a ``BENCH_<timestamp>.json`` report.

Families mirror how the paper's figures load the simulator:

* ``memory_bound`` — pointer-chasing and random-access workloads whose DRAM
  stalls dominate (the worst case for the per-cycle stepper and the headline
  win for cycle skipping);
* ``speedup`` — the fig. 11/12/15/16 single-thread speedup sweeps over
  suite workloads;
* ``smt`` — a fig. 14-style SMT2 pair;
* ``sensitivity`` — fig. 13/20-style width/depth/category variants.

Reports land in ``bench_reports/`` by default (``BENCH_<UTC timestamp>.json``);
:func:`latest_bench_report` resolves the newest committed report, still
accepting the pre-``bench_reports/`` repo-root location with a deprecation
warning.  :func:`perf_gate` compares a fresh report against a committed
reference with a generous threshold — the soft regression gate CI's
perf-smoke job runs.

**Report schema** (``BENCH_<UTC timestamp>.json``, ``schema`` = 2)::

    {
      "schema": 2,
      "created_utc": "YYYY-mm-ddTHH:MM:SSZ",
      "quick": bool,                  # --quick run (reduced budgets)
      "engines": ["cycle", "event"],
      "platform": {"python": "...", "machine": "...", "system": "..."},
      "families": {
        "<family>": {
          "instructions": <per-workload budget>,
          "jobs": [                   # one entry per (workload, config)
            {"workload": "...", "config": "...", "smt": bool,
             "instructions": N, "cycles": N,
             "engines": {"<engine>": {"wall_seconds": s,
                                       "instructions_per_second": ips,
                                       "cycles_per_second": cps}},
             "skipped_idle_cycles": N,   # event engine
             "stepped_cycles": N,        # event engine
             "identical": bool}, ...],
          "totals": {"<engine>": {"wall_seconds": s,
                                   "instructions_per_second": ips,
                                   "cycles_per_second": cps}},
          "speedup": cycle_wall / event_wall,
          "skipped_cycle_fraction": skipped / (skipped + stepped),
          "identical": bool},
        ...},
      "speedup_geomean": geomean of family speedups,
      "identical": bool,              # every job bit-identical across engines
      "orchestrator": {               # only with --orchestrator
        "figures": [...], "workers": N,
        "per_suite": N, "instructions": N,
        "serial_wall_seconds": s,     # per-figure harnesses back-to-back
        "orchestrated_wall_seconds": s,  # one deduped cross-figure wave
        "speedup": serial / orchestrated,
        "identical": bool,            # figure payloads bit-identical
        "dedup": {"planned": N, "unique": N, "deduped": N,
                  "cache_warm": N, "executed": N}}
    }

``speedup``/``speedup_geomean`` are only present when both engines ran; the
``orchestrator`` section only when the orchestrated mode was requested.  The
CI perf-smoke job runs ``repro bench --quick`` and uploads the report as an
artifact, then soft-gates wall seconds against the committed reference —
generous threshold, warn-only off the canonical repo — but the run fails
loudly if any engine pair (or the orchestrated figure set) diverges, so the
harness doubles as an end-to-end differential check.

Schema history: 1 = engine families only; 2 = adds the optional
``orchestrator`` section (older readers that ignore unknown keys still parse
v2 reports).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats_utils import filtered_geomean
from repro.experiments.configs import (
    baseline_config,
    constable_config,
    eves_constable_config,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import CORE_ENGINES, OutOfOrderCore
from repro.pipeline.smt import SMT_SECOND_THREAD_BASE_PC
from repro.workloads.generator import DEFAULT_BASE_PC, generate_trace
from repro.workloads.suites import WorkloadSpec, get_workload_spec
from repro.workloads.trace import Trace

#: Version of the BENCH_*.json report layout (2 adds the optional
#: ``orchestrator`` section; see the module docstring's schema history).
BENCH_SCHEMA_VERSION = 2

#: Report filename pattern; the timestamp is UTC.
BENCH_FILE_FORMAT = "BENCH_%Y%m%dT%H%M%SZ.json"

#: Where reports are written (and committed) by default.
BENCH_REPORTS_DIR = "bench_reports"

#: Filename glob matching bench reports.
BENCH_FILE_GLOB = "BENCH_*.json"

#: Figures measured by the orchestrated mode: a heavy-overlap subset (the
#: baseline/constable family is demanded by every one of them, and fig. 13's
#: ``all_loads`` / fig. 20's ``baseline_w3``-style grid points are
#: content-identical to configs the others already demand), plus fig. 14 so
#: the wave carries SMT jobs too.
ORCHESTRATOR_BENCH_FIGURES = (
    "fig11", "fig12", "fig13", "fig14", "fig16", "fig17", "fig20")


@dataclass(frozen=True)
class BenchJob:
    """One measured simulation: workload spec(s) × configuration."""

    workload: str
    config_name: str
    config: CoreConfig
    specs: Tuple[WorkloadSpec, ...]

    @property
    def smt(self) -> bool:
        """True when the job simulates an SMT2 pair (two workload specs)."""
        return len(self.specs) > 1


def _membound_specs() -> List[WorkloadSpec]:
    """Purpose-built memory-bound workloads (footprints well past the LLC)."""
    return [
        WorkloadSpec(
            name="membound_chase", suite="Bench", seed=11,
            kernels=[("pointer_chase", {"inner_iterations": 16,
                                        "ring_nodes": 1 << 16}),
                     ("random_access", {"inner_iterations": 8,
                                        "region_words": 1 << 20})],
            description="dependent pointer chase + random access over 8 MiB"),
        WorkloadSpec(
            name="membound_scatter", suite="Bench", seed=23,
            kernels=[("random_access", {"inner_iterations": 12,
                                        "region_words": 1 << 21}),
                     ("streaming", {"inner_iterations": 6,
                                    "region_words": 1 << 19})],
            description="random access over 16 MiB + LLC-sized streaming"),
    ]


def _family_memory_bound() -> List[BenchJob]:
    jobs = []
    for spec in _membound_specs():
        for config_name, config in (("baseline", baseline_config()),
                                    ("constable", constable_config())):
            jobs.append(BenchJob(spec.name, config_name, config, (spec,)))
    return jobs


def _family_speedup() -> List[BenchJob]:
    jobs = []
    for workload in ("client_00", "ispec_00"):
        spec = get_workload_spec(workload)
        for config_name, config in (("baseline", baseline_config()),
                                    ("constable", constable_config()),
                                    ("eves+constable", eves_constable_config())):
            jobs.append(BenchJob(workload, config_name, config, (spec,)))
    return jobs


def _family_smt() -> List[BenchJob]:
    first = get_workload_spec("client_00")
    second = get_workload_spec("server_00")
    return [BenchJob("client_00+server_00", config_name, config, (first, second))
            for config_name, config in (("baseline", baseline_config()),
                                        ("constable", constable_config()))]


def _family_sensitivity() -> List[BenchJob]:
    spec = get_workload_spec("client_00")
    return [
        BenchJob("client_00", "constable_w3",
                 constable_config().with_load_width(3), (spec,)),
        BenchJob("client_00", "constable_d2.0",
                 constable_config().with_depth_scale(2.0), (spec,)),
    ]


#: Family registry: name -> (job builder, full budget, quick budget).
BENCH_FAMILIES: Dict[str, Tuple[Callable[[], List[BenchJob]], int, int]] = {
    "memory_bound": (_family_memory_bound, 20_000, 4_000),
    "speedup": (_family_speedup, 6_000, 1_500),
    "smt": (_family_smt, 3_000, 1_000),
    "sensitivity": (_family_sensitivity, 6_000, 1_500),
}


def _traces_for(job: BenchJob, instructions: int,
                memo: Dict[Tuple[str, int, int], Trace]) -> List[Trace]:
    """Generate (and memoise) the job's traces; generation is not timed."""
    traces = []
    for position, spec in enumerate(job.specs):
        base_pc = DEFAULT_BASE_PC if position == 0 else SMT_SECOND_THREAD_BASE_PC
        key = (spec.name, instructions, base_pc)
        trace = memo.get(key)
        if trace is None:
            trace = generate_trace(spec, num_instructions=instructions,
                                   base_pc=base_pc)
            memo[key] = trace
        traces.append(trace)
    return traces


def _rates(wall_seconds: float, instructions: int, cycles: int) -> Dict[str, float]:
    safe_wall = max(wall_seconds, 1e-9)
    return {
        "wall_seconds": wall_seconds,
        "instructions_per_second": instructions / safe_wall,
        "cycles_per_second": cycles / safe_wall,
    }


def run_bench(quick: bool = False,
              engines: Sequence[str] = ("cycle", "event"),
              families: Optional[Sequence[str]] = None,
              instructions: Optional[int] = None) -> Dict[str, object]:
    """Measure every requested family with every requested engine.

    ``instructions`` overrides the per-family budgets (used by tests); the
    normal entry points pass None and get the full or ``--quick`` budgets.
    Returns the report payload described in the module docstring.
    """
    for engine in engines:
        if engine not in CORE_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected {CORE_ENGINES}")
    if not engines:
        raise ValueError("at least one engine is required")
    if instructions is not None and instructions <= 0:
        raise ValueError("instructions must be positive")
    selected = list(families) if families is not None else list(BENCH_FAMILIES)
    unknown = sorted(set(selected) - set(BENCH_FAMILIES))
    if unknown:
        raise ValueError(
            f"unknown bench families {unknown}; available: {list(BENCH_FAMILIES)}")

    trace_memo: Dict[Tuple[str, int, int], Trace] = {}
    family_reports: Dict[str, Dict[str, object]] = {}
    all_identical = True
    for family in selected:
        builder, full_budget, quick_budget = BENCH_FAMILIES[family]
        budget = (instructions if instructions is not None
                  else (quick_budget if quick else full_budget))
        jobs = builder()
        job_reports: List[Dict[str, object]] = []
        totals = {engine: {"wall_seconds": 0.0, "instructions": 0, "cycles": 0}
                  for engine in engines}
        family_identical = True
        family_skipped = 0
        family_stepped = 0
        for job in jobs:
            traces = _traces_for(job, budget, trace_memo)
            results = {}
            record: Dict[str, object] = {
                "workload": job.workload, "config": job.config_name,
                "smt": job.smt, "engines": {},
            }
            for engine in engines:
                start = time.perf_counter()
                core = OutOfOrderCore(job.config, traces, name=job.config_name,
                                      engine=engine)
                result = core.run()
                wall = time.perf_counter() - start
                results[engine] = result
                record["engines"][engine] = _rates(wall, result.instructions,
                                                   result.cycles)
                totals[engine]["wall_seconds"] += wall
                totals[engine]["instructions"] += result.instructions
                totals[engine]["cycles"] += result.cycles
                if engine == "event":
                    record["skipped_idle_cycles"] = core.skipped_idle_cycles
                    record["stepped_cycles"] = core.stepped_cycles
                    family_skipped += core.skipped_idle_cycles
                    family_stepped += core.stepped_cycles
            record["instructions"] = results[engines[0]].instructions
            record["cycles"] = results[engines[0]].cycles
            reference = results[engines[0]].to_dict()
            identical = all(results[engine].to_dict() == reference
                            for engine in engines[1:])
            record["identical"] = identical
            family_identical &= identical
            job_reports.append(record)
        report: Dict[str, object] = {
            "instructions": budget,
            "jobs": job_reports,
            "totals": {engine: _rates(values["wall_seconds"],
                                      values["instructions"], values["cycles"])
                       for engine, values in totals.items()},
            "identical": family_identical,
        }
        if "cycle" in engines and "event" in engines:
            event_wall = max(totals["event"]["wall_seconds"], 1e-9)
            report["speedup"] = totals["cycle"]["wall_seconds"] / event_wall
        if family_stepped or family_skipped:
            report["skipped_cycle_fraction"] = (
                family_skipped / max(1, family_skipped + family_stepped))
        family_reports[family] = report
        all_identical &= family_identical

    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "engines": list(engines),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "families": family_reports,
        "identical": all_identical,
    }
    speedups = [report["speedup"] for report in family_reports.values()
                if "speedup" in report]
    if speedups:
        payload["speedup_geomean"] = filtered_geomean(speedups)
    return payload


def run_orchestrator_bench(quick: bool = False,
                           workers: Optional[int] = None,
                           per_suite: Optional[int] = None,
                           instructions: Optional[int] = None,
                           figures: Optional[Sequence[str]] = None
                           ) -> Dict[str, object]:
    """Measure the cross-figure orchestrator against the serial per-figure path.

    Both paths run the same figure set cold (no on-disk cache) on identical
    parallel runners: the *serial* path executes each harness back-to-back —
    every ``run_config`` call is its own pool barrier, exactly what
    ``repro figures all --no-orchestrate`` does — while the *orchestrated*
    path dedups all figures' jobs and feeds them through one wave.  Figure
    payloads are verified bit-identical between the two paths; the returned
    section (see the module docstring's schema) records both wall times, the
    speedup ratio and the dedup stats.
    """
    from repro.experiments.figures import FIGURE_HARNESSES
    from repro.experiments.orchestrator import orchestrate_figures
    from repro.experiments.parallel import ParallelExperimentRunner

    selected = list(figures) if figures is not None else list(ORCHESTRATOR_BENCH_FIGURES)
    unknown = sorted(set(selected) - set(FIGURE_HARNESSES))
    if unknown:
        raise ValueError(f"unknown orchestrator bench figures {unknown}; "
                         f"available: {sorted(FIGURE_HARNESSES)}")
    if per_suite is None:
        per_suite = 1 if quick else 2
    if instructions is None:
        instructions = 1_500 if quick else 6_000
    runner_kwargs = dict(per_suite=per_suite, instructions=instructions)
    if workers is not None:
        runner_kwargs["max_workers"] = workers

    with ParallelExperimentRunner(**runner_kwargs) as serial_runner:
        start = time.perf_counter()
        serial_results = {name: FIGURE_HARNESSES[name](serial_runner)
                          for name in selected}
        serial_wall = time.perf_counter() - start
        effective_workers = serial_runner.max_workers

    with ParallelExperimentRunner(**runner_kwargs) as wave_runner:
        start = time.perf_counter()
        orchestrated_results, dedup = orchestrate_figures(wave_runner, selected)
        orchestrated_wall = time.perf_counter() - start

    identical = all(serial_results[name] == orchestrated_results[name]
                    for name in selected)
    return {
        "figures": selected,
        "workers": effective_workers,
        "per_suite": per_suite,
        "instructions": instructions,
        "serial_wall_seconds": serial_wall,
        "orchestrated_wall_seconds": orchestrated_wall,
        "speedup": serial_wall / max(orchestrated_wall, 1e-9),
        "identical": identical,
        "dedup": dedup.to_dict(),
    }


def write_bench_report(payload: Dict[str, object],
                       output: Optional[Union[str, Path]] = None,
                       directory: Union[str, Path] = BENCH_REPORTS_DIR) -> Path:
    """Write the report; default ``bench_reports/BENCH_<UTC timestamp>.json``."""
    if output is None:
        output = Path(directory) / time.strftime(BENCH_FILE_FORMAT, time.gmtime())
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def latest_bench_report(directory: Union[str, Path] = BENCH_REPORTS_DIR,
                        legacy_directory: Union[str, Path] = "."
                        ) -> Optional[Tuple[Path, Dict[str, object]]]:
    """Locate and load the newest committed bench report.

    Looks in ``bench_reports/`` first; when empty, falls back to the
    pre-``bench_reports/`` location (``BENCH_*.json`` in the repo root) with a
    :class:`DeprecationWarning`.  Filenames embed a UTC timestamp, so the
    lexically greatest name is the newest report.  Returns ``(path, payload)``
    or None when no report exists anywhere.
    """
    import warnings

    reports = sorted(Path(directory).glob(BENCH_FILE_GLOB))
    if not reports:
        legacy = sorted(Path(legacy_directory).glob(BENCH_FILE_GLOB))
        if not legacy:
            return None
        warnings.warn(
            f"bench reports in {Path(legacy_directory).resolve()} are "
            f"deprecated; move them into {BENCH_REPORTS_DIR}/",
            DeprecationWarning, stacklevel=2)
        reports = legacy
    path = reports[-1]
    return path, json.loads(path.read_text(encoding="utf-8"))


def perf_gate(current: Dict[str, object], reference: Dict[str, object],
              threshold: float = 1.5,
              min_wall_seconds: float = 0.5) -> List[str]:
    """Compare a fresh bench payload against a committed reference report.

    Returns one message per comparison whose event-engine wall seconds
    regressed past ``threshold`` × the reference — the soft gate CI's
    perf-smoke job evaluates.  Two noise guards keep the gate honest across
    machines of different speeds:

    * a family is only compared when its *reference* wall reaches
      ``min_wall_seconds`` — sub-threshold walls are dominated by timer and
      scheduler noise, where any ratio is meaningless;
    * the **aggregate** wall over all shared families is compared too (when
      it reaches the floor), so a broad slowdown spread thinly over
      individually-tiny families is still caught.

    Families missing from either report are skipped, and the whole comparison
    is vacuous (empty list) when the two reports used different budgets (full
    vs ``--quick``): cross-budget walls are not comparable.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")
    if bool(current.get("quick")) != bool(reference.get("quick")):
        return []
    problems: List[str] = []
    reference_families = reference.get("families", {})
    total_now = total_then = 0.0
    for family, report in current.get("families", {}).items():
        baseline = reference_families.get(family)
        if baseline is None:
            continue
        now = report.get("totals", {}).get("event", {}).get("wall_seconds")
        then = baseline.get("totals", {}).get("event", {}).get("wall_seconds")
        if not now or not then:
            continue
        total_now += now
        total_then += then
        if then < min_wall_seconds:
            continue
        if now > then * threshold:
            problems.append(
                f"{family}/event: {now:.2f}s vs committed {then:.2f}s "
                f"(> {threshold:.2f}x)")
    if total_then >= min_wall_seconds and total_now > total_then * threshold:
        problems.append(
            f"aggregate/event: {total_now:.2f}s vs committed {total_then:.2f}s "
            f"(> {threshold:.2f}x)")
    return problems


def format_bench_table(payload: Dict[str, object]) -> str:
    """A human-readable summary of one bench payload."""
    from repro.experiments.reporting import format_table

    engines = payload["engines"]
    primary = "event" if "event" in engines else engines[0]
    rows = []
    for family, report in payload["families"].items():
        totals = report["totals"][primary]
        rows.append((
            family,
            f"{totals['wall_seconds']:.2f}s",
            f"{totals['instructions_per_second'] / 1000.0:.1f}k",
            f"{report['speedup']:.2f}x" if "speedup" in report else "-",
            f"{report.get('skipped_cycle_fraction', 0.0) * 100:.1f}%",
            "yes" if report["identical"] else "NO",
        ))
    title = ("repro bench (quick)" if payload.get("quick") else "repro bench")
    table = format_table(
        ["family", f"{primary} wall", "sim kinstr/s", "speedup vs cycle",
         "cycles skipped", "bit-identical"],
        rows, title=title)
    orchestrator = payload.get("orchestrator")
    if orchestrator:
        dedup = orchestrator["dedup"]
        table += (
            f"\norchestrator ({len(orchestrator['figures'])} figures, "
            f"{orchestrator['workers']} workers): "
            f"serial {orchestrator['serial_wall_seconds']:.2f}s -> wave "
            f"{orchestrator['orchestrated_wall_seconds']:.2f}s "
            f"({orchestrator['speedup']:.2f}x); "
            f"jobs {dedup['planned']} planned / {dedup['unique']} unique / "
            f"{dedup['cache_warm']} cache-warm; "
            f"{'bit-identical' if orchestrator['identical'] else 'DIVERGED'}")
    return table
