"""Content-addressed on-disk caches for simulation results and inspector reports.

A cache entry is keyed by a SHA-256 fingerprint of everything that determines
its content: the fully materialised :class:`CoreConfig` (for simulations), the
:class:`WorkloadSpec`, the trace-generation parameters (instruction budget,
architectural register count, base PC) and a schema version.  Workload traces
are regenerated deterministically from the spec's seed, so the trace itself
never needs to be stored — two runs that fingerprint identically simulate
identically.

Three entry kinds share one store format and directory layout:

* single-thread :class:`SimulationResult` records (:meth:`ResultCache.get` /
  :meth:`ResultCache.put`),
* SMT pair :class:`~repro.pipeline.smt.SmtResult` records
  (:meth:`ResultCache.get_smt` / :meth:`ResultCache.put_smt`), keyed over both
  workload specs and the second thread's base PC, and
* Load Inspector :class:`~repro.analysis.load_inspector.GlobalStableReport`
  records (:class:`ReportCache`), keyed over the workload spec and trace
  parameters alone — reports depend only on the trace, never on a core config.

Bumping :data:`SCHEMA_VERSION` invalidates every existing entry; bump it
whenever the timing model or a persisted record's layout changes in a way that
makes old entries incomparable.

The cache directory defaults to ``.repro-cache`` in the working directory and
can be redirected with the ``REPRO_CACHE_DIR`` environment variable.  Entries
are plain JSON files laid out as ``<dir>/<key[:2]>/<key>.json`` with atomic
(write-to-temp, rename) stores, so a cache directory may safely be shared by
several concurrent figure harnesses — and by result and report caches at once,
which also makes the size cap below a property of the directory, not of any
one cache instance.

**Size cap / GC.**  Setting ``REPRO_CACHE_MAX_MB`` (or passing ``max_mb``)
arms an LRU-by-mtime garbage collector: after every store the cache evicts the
least-recently-used entries until the directory fits under the cap.  Cache
hits refresh an entry's mtime, so hot entries survive; a GC pass never touches
anything while the directory is already within the cap.  A malformed or
non-positive ``REPRO_CACHE_MAX_MB`` value warns once and leaves the cache
uncapped instead of raising — the cap is an optimisation, never a correctness
requirement.  :meth:`JsonDiskCache.verify` scans a (possibly shared) directory
for corrupt, stale-schema, misplaced and orphaned entries, which backs the
``repro cache verify`` CLI subcommand.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import tempfile
import time
import warnings
from dataclasses import field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.load_inspector import GlobalStableReport
from repro.pipeline.config import CoreConfig
from repro.pipeline.smt import SMT_SECOND_THREAD_BASE_PC, SmtResult
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import DEFAULT_BASE_PC
from repro.workloads.suites import WorkloadSpec

#: Version of the cached-entry schema; bump to invalidate all prior entries.
SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable arming the LRU size cap (in megabytes).
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Per-class runtime fields excluded from fingerprints: they accumulate while
#: a simulation runs and say nothing about what will be simulated.
_FINGERPRINT_EXCLUDE: Dict[str, frozenset] = {
    "IdealOracle": frozenset({"_seen", "loads_covered", "loads_seen"}),
}

#: Raw ``REPRO_CACHE_MAX_MB`` values already warned about in this process, so a
#: sweep constructing dozens of cache instances emits the warning exactly once.
_WARNED_ENV_CAPS: Set[str] = set()


def _max_mb_from_env() -> Optional[float]:
    """The LRU cap from ``REPRO_CACHE_MAX_MB``, leniently parsed.

    A malformed or non-positive value (``"512MB"``, ``"-3"``, ``"nan"``) must
    not kill every runner and figure harness at cache construction — the cap is
    an optimisation, not a correctness knob — so invalid values warn once per
    process and are ignored, leaving the cache uncapped.
    """
    raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        value = None
    if value is None or not math.isfinite(value) or value <= 0:
        if raw not in _WARNED_ENV_CAPS:
            _WARNED_ENV_CAPS.add(raw)
            warnings.warn(
                f"ignoring invalid {CACHE_MAX_MB_ENV}={raw!r}: expected a "
                f"positive number of megabytes; cache size cap disabled",
                RuntimeWarning, stacklevel=3)
        return None
    return value


def canonical_value(value: object) -> object:
    """Reduce ``value`` to a deterministic JSON-serializable form.

    Dataclasses become sorted field dictionaries, enums their values, sets
    sorted lists; insertion order never leaks into the result, so logically
    equal configurations always fingerprint identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = _FINGERPRINT_EXCLUDE.get(type(value).__name__, frozenset())
        return {f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value) if f.name not in excluded}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(item) for item in value)
    if isinstance(value, dict):
        return {str(key): canonical_value(val)
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def config_fingerprint(config: CoreConfig) -> Dict[str, object]:
    """Canonical dictionary of every outcome-relevant field of a core config."""
    return canonical_value(config)


class CacheStats:
    """Hit/miss/store/eviction counters for one cache instance."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


#: How to decode each entry kind's record body; single-thread result entries
#: predate the ``kind`` field, so they decode under the implicit kind "result".
_ENTRY_DECODERS: Dict[str, Callable[[Dict[str, object]], object]] = {
    "result": lambda payload: SimulationResult.from_dict(payload["result"]),
    "smt": lambda payload: SmtResult.from_dict(payload["result"]),
    "report": lambda payload: GlobalStableReport.from_dict(payload["report"]),
}


@dataclasses.dataclass
class CacheVerifyReport:
    """Outcome of one full-directory integrity scan (:meth:`JsonDiskCache.verify`).

    ``entries``/``total_bytes`` cover every ``*.json`` file found; ``by_kind``
    counts only entries that decoded cleanly under the current schema.  The
    problem buckets are disjoint: an entry lands in the first one that applies.
    """

    directory: str
    schema_version: int
    entries: int = 0
    total_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Unreadable / non-JSON files, unknown kinds, undecodable record bodies.
    corrupt: List[str] = field(default_factory=list)
    #: Valid entries written under a different SCHEMA_VERSION (benign misses).
    stale_schema: List[str] = field(default_factory=list)
    #: Entries whose embedded key or shard directory disagrees with their path.
    key_mismatch: List[str] = field(default_factory=list)
    #: Leftover temp files from writers that died mid-store.
    orphan_temp: List[str] = field(default_factory=list)
    purged: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing needs operator attention (stale entries are fine)."""
        return not (self.corrupt or self.key_mismatch or self.orphan_temp)

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class JsonDiskCache:
    """Shared store machinery: keyed JSON files, atomic writes, LRU size cap.

    Subclasses provide the domain types (what a payload contains and how keys
    are derived); this base owns the directory layout, schema validation,
    hit/miss accounting, mtime-based recency and the GC policy.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 schema_version: int = SCHEMA_VERSION,
                 max_mb: Optional[float] = None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        # Fail fast rather than after the first (expensive) simulation's put().
        if self.directory.exists() and not self.directory.is_dir():
            raise NotADirectoryError(
                f"cache path {self.directory} exists and is not a directory")
        self.schema_version = schema_version
        if max_mb is None:
            max_mb = _max_mb_from_env()
        elif max_mb <= 0:
            raise ValueError("max_mb must be positive")
        self.max_mb = max_mb
        self.stats = CacheStats()
        # Running directory-size estimate for the auto-GC: initialised by one
        # full scan on the first capped store, then maintained incrementally
        # so puts stay O(1) while the directory is under the cap.  A GC pass
        # rescans and resyncs it, which also absorbs other processes' writes.
        self._size_estimate: Optional[int] = None

    # ------------------------------------------------------------------- layout

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _digest(self, payload: Dict[str, object]) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ raw i/o

    def _read_payload(self, key: str, kind: Optional[str] = None) -> Optional[Dict[str, object]]:
        """Load and validate one entry envelope; corrupt entries are misses.

        Recency is *not* refreshed here: callers decode the record body first
        and call :meth:`_mark_hit` only when the whole entry proved usable, so
        a permanently undecodable entry ages out through the LRU GC instead of
        being promoted to most-recently-used on every failed read.
        """
        path = self._path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            if kind is not None and payload.get("kind") != kind:
                raise ValueError("entry kind mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        return payload

    def _mark_hit(self, key: str) -> None:
        """Count a hit and refresh the entry's mtime so the LRU GC keeps it."""
        try:
            os.utime(self._path_for(key), None)
        except OSError:
            pass
        self.stats.hits += 1

    def _write_payload(self, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``key`` atomically (temp file + rename)."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            replaced_size = path.stat().st_size
        except OSError:
            replaced_size = 0
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.max_mb is not None:
            if self._size_estimate is None:
                self._size_estimate = self.total_bytes()
            else:
                try:
                    self._size_estimate += path.stat().st_size - replaced_size
                except OSError:
                    pass
                if self._size_estimate < 0:
                    # Incremental bookkeeping drifted — another process evicted
                    # or overwrote entries in the shared directory.  Resync
                    # from a full scan rather than skipping needed GC passes.
                    self._size_estimate = self.total_bytes()
            if self._size_estimate > int(self.max_mb * 1024 * 1024):
                self.gc()

    # --------------------------------------------------------------- management

    def entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(path, mtime, size_bytes)``, least recent first.

        Ties on mtime break on the path so GC eviction order is deterministic.
        """
        found: List[Tuple[Path, float, int]] = []
        if not self.directory.is_dir():
            return found
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append((path, stat.st_mtime, stat.st_size))
        found.sort(key=lambda entry: (entry[1], str(entry[0])))
        return found

    def total_bytes(self) -> int:
        """Total on-disk size of every entry in the directory."""
        return sum(size for _, _, size in self.entries())

    def gc(self, max_mb: Optional[float] = None) -> List[Path]:
        """Evict least-recently-used entries until the directory fits the cap.

        Returns the evicted paths (empty when the directory is already within
        the cap, or when no cap is configured).  The cap applies to the whole
        directory, so result and report caches sharing one directory share one
        budget.
        """
        cap_mb = max_mb if max_mb is not None else self.max_mb
        if cap_mb is None:
            return []
        if cap_mb <= 0:
            raise ValueError("max_mb must be positive")
        cap_bytes = int(cap_mb * 1024 * 1024)
        entries = self.entries()
        total = sum(size for _, _, size in entries)
        removed: List[Path] = []
        for path, _, size in entries:
            if total <= cap_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed.append(path)
            self.stats.evictions += 1
        # ``total`` came from a fresh directory scan, so assigning it here
        # resyncs the incremental estimate after every pass; the clamp guards
        # against entries another process shrank between scan and unlink.
        self._size_estimate = max(0, total)
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        self._size_estimate = None
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    #: ``*.tmp`` files younger than this are assumed to belong to a live
    #: writer mid-store and are never reported (or purged) as orphans.
    ORPHAN_TEMP_AGE_SECONDS = 3600.0

    def verify(self, purge: bool = False,
               decode_bodies: bool = True) -> CacheVerifyReport:
        """Scan every entry in the directory and classify its integrity.

        Each entry must parse as JSON, carry the current schema version, decode
        through its kind's record type (single-thread result, SMT result or
        inspector report — all kinds are checked regardless of which cache
        class runs the scan, since the kinds may share one directory) and live
        at the path its embedded key dictates.  Leftover ``*.tmp`` files from
        writers that died between create and rename are reported as orphans —
        but only once older than :data:`ORPHAN_TEMP_AGE_SECONDS`, so scanning
        a directory that live writers are storing into neither misreports
        their in-flight temp files nor (with ``purge``) deletes them mid-write.

        ``decode_bodies=False`` skips the record-body decode (the expensive
        part on large directories) and checks only envelope, schema and
        placement — the right trade-off for ``repro cache stats``.

        With ``purge=True`` every corrupt, stale, mismatched or orphaned file
        is deleted; healthy entries are never touched.
        """
        report = CacheVerifyReport(directory=str(self.directory),
                                   schema_version=self.schema_version)
        for path, _, size in self.entries():
            report.entries += 1
            report.total_bytes += size
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if not isinstance(payload, dict):
                    raise ValueError("entry is not a JSON object")
            except (OSError, ValueError):
                report.corrupt.append(str(path))
                continue
            if payload.get("schema") != self.schema_version:
                report.stale_schema.append(str(path))
                continue
            kind = str(payload.get("kind", "result"))
            decoder = _ENTRY_DECODERS.get(kind)
            if decoder is None:
                report.corrupt.append(str(path))
                continue
            if decode_bodies:
                try:
                    decoder(payload)
                except (ValueError, KeyError, TypeError):
                    report.corrupt.append(str(path))
                    continue
            if payload.get("key") != path.stem or path.parent.name != path.stem[:2]:
                report.key_mismatch.append(str(path))
                continue
            report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
        if self.directory.is_dir():
            oldest_live = time.time() - self.ORPHAN_TEMP_AGE_SECONDS
            for path in sorted(self.directory.glob("*/.*.tmp")):
                try:
                    if path.stat().st_mtime > oldest_live:
                        continue
                except OSError:
                    continue
                report.orphan_temp.append(str(path))
        if purge:
            for name in (report.corrupt + report.stale_schema
                         + report.key_mismatch + report.orphan_temp):
                try:
                    os.unlink(name)
                    report.purged += 1
                except OSError:
                    pass
            if report.purged:
                self._size_estimate = None
        return report


class ResultCache(JsonDiskCache):
    """Content-addressed store of :class:`SimulationResult` / :class:`SmtResult`."""

    # ------------------------------------------------------- single-thread keys

    def key_for(self, config: CoreConfig, spec: WorkloadSpec,
                instructions: int, num_registers: int,
                base_pc: int = DEFAULT_BASE_PC) -> str:
        """The content hash identifying one (config, workload, trace) job."""
        payload = {
            "schema": self.schema_version,
            "config": config_fingerprint(config),
            "workload": spec.to_dict(),
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pc": base_pc,
            },
        }
        return self._digest(payload)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (corrupt entries are misses)."""
        payload = self._read_payload(key)
        if payload is None:
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (temp file + rename)."""
        self._write_payload(key, {"schema": self.schema_version, "key": key,
                                  "result": result.to_dict()})

    # ----------------------------------------------------------------- SMT keys

    def key_for_smt(self, config: CoreConfig, first: WorkloadSpec,
                    second: WorkloadSpec, instructions: int, num_registers: int,
                    first_base_pc: int = DEFAULT_BASE_PC,
                    second_base_pc: int = SMT_SECOND_THREAD_BASE_PC) -> str:
        """The content hash identifying one SMT2 (config, pair, trace) job."""
        payload = {
            "schema": self.schema_version,
            "kind": "smt",
            "config": config_fingerprint(config),
            "workloads": [first.to_dict(), second.to_dict()],
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pcs": [first_base_pc, second_base_pc],
            },
        }
        return self._digest(payload)

    def get_smt(self, key: str) -> Optional[SmtResult]:
        """The cached SMT result for ``key``, or None."""
        payload = self._read_payload(key, kind="smt")
        if payload is None:
            return None
        try:
            result = SmtResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return result

    def put_smt(self, key: str, result: SmtResult) -> None:
        """Store an :class:`SmtResult` under ``key`` atomically."""
        self._write_payload(key, {"schema": self.schema_version, "kind": "smt",
                                  "key": key, "result": result.to_dict()})


class ReportCache(JsonDiskCache):
    """Content-addressed store of Load Inspector :class:`GlobalStableReport`.

    Keys cover only what determines a report — the workload spec and the trace
    parameters — so every configuration sweep over a workload shares one report
    entry.  A report cache may share its directory with a :class:`ResultCache`:
    keys embed an entry kind, so the two namespaces cannot collide, and the LRU
    size cap then covers both.
    """

    def key_for(self, spec: WorkloadSpec, instructions: int, num_registers: int,
                base_pc: int = DEFAULT_BASE_PC) -> str:
        """The content hash identifying one workload's inspector report."""
        payload = {
            "schema": self.schema_version,
            "kind": "report",
            "workload": spec.to_dict(),
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pc": base_pc,
            },
        }
        return self._digest(payload)

    def get(self, key: str) -> Optional[GlobalStableReport]:
        """The cached report for ``key``, or None (corrupt entries are misses)."""
        payload = self._read_payload(key, kind="report")
        if payload is None:
            return None
        try:
            report = GlobalStableReport.from_dict(payload["report"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return report

    def put(self, key: str, report: GlobalStableReport) -> None:
        """Store ``report`` under ``key`` atomically."""
        self._write_payload(key, {"schema": self.schema_version, "kind": "report",
                                  "key": key, "report": report.to_dict()})
