"""Content-addressed on-disk caches for simulation results and inspector reports.

A cache entry is keyed by a SHA-256 fingerprint of everything that determines
its content: the fully materialised :class:`CoreConfig` (for simulations), the
:class:`WorkloadSpec`, the trace-generation parameters (instruction budget,
architectural register count, base PC) and a schema version.  Workload traces
are regenerated deterministically from the spec's seed, so the trace itself
never needs to be stored — two runs that fingerprint identically simulate
identically.

Three entry kinds share one store format and directory layout:

* single-thread :class:`SimulationResult` records (:meth:`ResultCache.get` /
  :meth:`ResultCache.put`),
* SMT pair :class:`~repro.pipeline.smt.SmtResult` records
  (:meth:`ResultCache.get_smt` / :meth:`ResultCache.put_smt`), keyed over both
  workload specs and the second thread's base PC, and
* Load Inspector :class:`~repro.analysis.load_inspector.GlobalStableReport`
  records (:class:`ReportCache`), keyed over the workload spec and trace
  parameters alone — reports depend only on the trace, never on a core config.

Bumping :data:`SCHEMA_VERSION` invalidates every existing entry; bump it
whenever the timing model or a persisted record's layout changes in a way that
makes old entries incomparable.

The cache directory defaults to ``.repro-cache`` in the working directory and
can be redirected with the ``REPRO_CACHE_DIR`` environment variable.  Entries
are plain JSON files laid out as ``<dir>/<key[:2]>/<key>.json`` with atomic
(write-to-temp, rename) stores, so a cache directory may safely be shared by
several concurrent figure harnesses — and by result and report caches at once,
which also makes the size cap below a property of the directory, not of any
one cache instance.

**Size cap / GC.**  Setting ``REPRO_CACHE_MAX_MB`` (or passing ``max_mb``)
arms an LRU-by-mtime garbage collector: after every store the cache evicts the
least-recently-used entries until the directory fits under the cap.  Cache
hits refresh an entry's mtime, so hot entries survive; a GC pass never touches
anything while the directory is already within the cap.  A malformed or
non-positive ``REPRO_CACHE_MAX_MB`` value warns once and leaves the cache
uncapped instead of raising — the cap is an optimisation, never a correctness
requirement.  :meth:`JsonDiskCache.verify` scans a (possibly shared) directory
for corrupt, stale-schema, misplaced and orphaned entries, which backs the
``repro cache verify`` CLI subcommand.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import tempfile
import time
import uuid
import warnings
from dataclasses import field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.load_inspector import GlobalStableReport
from repro.experiments.warehouse import (WarehouseWriter, clear_warehouse,
                                         row_for_result, row_for_smt)
from repro.pipeline.config import CoreConfig
from repro.pipeline.smt import SMT_SECOND_THREAD_BASE_PC, SmtResult
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import DEFAULT_BASE_PC
from repro.workloads.suites import WorkloadSpec

#: Version of the cached-entry schema; bump to invalidate all prior entries.
SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable arming the LRU size cap (in megabytes).
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of a cache directory holding persisted counter ledgers.  The
#: files inside use the ``.stats`` suffix (never ``.json``) so the entry scans
#: — GC, ``__len__``, ``verify`` — which glob ``*/*.json`` cannot mistake a
#: ledger for a cache entry.  Ledger *temp* files (``.ledger.*.tmp``) are
#: deliberately visible to ``verify``'s orphan scan: one left behind means a
#: writer died mid-flush, which is exactly the anomaly that scan exists to
#: surface (and ``--purge`` to clean up).
STATS_SUBDIR = ".stats"

#: The four counters a ledger records (mirrors :meth:`CacheStats.as_dict`).
_LEDGER_COUNTERS = ("hits", "misses", "stores", "evictions")

#: Counter names of the supervision-health ledger block (see
#: :func:`persist_health_stats`); ``runs`` counts runner flushes.
_HEALTH_COUNTERS = ("runs", "jobs", "attempts", "retries", "timeouts",
                    "pool_rebuilds", "degraded", "dead_lettered")

#: The counters of an orchestrated wave's dedup block.  ``waves`` counts the
#: ledger's folded wave records (1 per fresh ledger, summed by compaction), so
#: rates stay computable after any number of compaction passes.
_DEDUP_COUNTERS = ("waves", "planned", "unique", "cache_warm", "executed")

#: A compaction lock older than this is from a dead compactor and may be broken.
_COMPACT_LOCK_STALE_SECONDS = 3600.0

#: Per-class runtime fields excluded from fingerprints: they accumulate while
#: a simulation runs and say nothing about what will be simulated.
_FINGERPRINT_EXCLUDE: Dict[str, frozenset] = {
    "IdealOracle": frozenset({"_seen", "loads_covered", "loads_seen"}),
}

#: Raw ``REPRO_CACHE_MAX_MB`` values already warned about in this process, so a
#: sweep constructing dozens of cache instances emits the warning exactly once.
_WARNED_ENV_CAPS: Set[str] = set()


def _max_mb_from_env() -> Optional[float]:
    """The LRU cap from ``REPRO_CACHE_MAX_MB``, leniently parsed.

    A malformed or non-positive value (``"512MB"``, ``"-3"``, ``"nan"``) must
    not kill every runner and figure harness at cache construction — the cap is
    an optimisation, not a correctness knob — so invalid values warn once per
    process and are ignored, leaving the cache uncapped.
    """
    raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        value = None
    if value is None or not math.isfinite(value) or value <= 0:
        if raw not in _WARNED_ENV_CAPS:
            _WARNED_ENV_CAPS.add(raw)
            warnings.warn(
                f"ignoring invalid {CACHE_MAX_MB_ENV}={raw!r}: expected a "
                f"positive number of megabytes; cache size cap disabled",
                RuntimeWarning, stacklevel=3)
        return None
    return value


def canonical_value(value: object) -> object:
    """Reduce ``value`` to a deterministic JSON-serializable form.

    Dataclasses become sorted field dictionaries, enums their values, sets
    sorted lists; insertion order never leaks into the result, so logically
    equal configurations always fingerprint identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = _FINGERPRINT_EXCLUDE.get(type(value).__name__, frozenset())
        return {f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value) if f.name not in excluded}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(item) for item in value)
    if isinstance(value, dict):
        return {str(key): canonical_value(val)
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def config_fingerprint(config: CoreConfig) -> Dict[str, object]:
    """Canonical dictionary of every outcome-relevant field of a core config."""
    return canonical_value(config)


class CacheStats:
    """Hit/miss/store/eviction counters for one cache instance."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        """The four counters as a plain dictionary (ledger/JSON form)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


def _ledger_dir(directory: Optional[Union[str, Path]]) -> Path:
    if directory is None:
        directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
    return Path(directory) / STATS_SUBDIR


def _read_ledgers(stats_dir: Path
                  ) -> Tuple[List[Tuple[Path, str, Dict[str, int],
                                        Optional[Dict[str, int]],
                                        Optional[Dict[str, int]]]], List[Path]]:
    """Parseable ledgers as ``(live entries, superseded leftovers)``.

    Entries are ``(path, cache class, counters, dedup, health)`` with counters
    normalised to :data:`_LEDGER_COUNTERS` (missing keys read as zero),
    ``dedup`` the optional orchestrator-wave block normalised to
    :data:`_DEDUP_COUNTERS` and ``health`` the optional supervision block
    normalised to :data:`_HEALTH_COUNTERS` (None when absent).
    Unreadable or malformed ledgers are skipped — one bad writer must never
    poison observability for every host sharing the directory.

    A compacted ledger lists the source files it folded; any of those still
    on disk (a compactor died between writing its output and unlinking the
    sources) is returned in the second list and excluded from the first, so
    the crash window can never double-count — aggregation reads either the
    compacted sums or the originals, never both.
    """
    entries: List[Tuple[Path, str, Dict[str, int], Optional[Dict[str, int]],
                        Optional[Dict[str, int]]]] = []
    superseded: Set[str] = set()
    if not stats_dir.is_dir():
        return entries, []
    for path in sorted(stats_dir.glob("*.stats")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            raw = payload["counters"]
            counters = {name: int(raw.get(name, 0)) for name in _LEDGER_COUNTERS}
            cache_name = str(payload.get("cache", "unknown"))
            folded = [str(name) for name in payload.get("folded", [])]
            raw_dedup = payload.get("dedup")
            dedup = (None if raw_dedup is None else
                     {name: int(raw_dedup.get(name, 0))
                      for name in _DEDUP_COUNTERS})
            raw_health = payload.get("health")
            health = (None if raw_health is None else
                      {name: int(raw_health.get(name, 0))
                       for name in _HEALTH_COUNTERS})
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            continue
        superseded.update(folded)
        entries.append((path, cache_name, counters, dedup, health))
    stale = [path for path, _, _, _, _ in entries if path.name in superseded]
    live = [entry for entry in entries if entry[0].name not in superseded]
    return live, stale


def _write_ledger(stats_dir: Path, payload: Dict[str, object],
                  name: str) -> Optional[Path]:
    """Atomically write one ledger file; returns None on any I/O failure.

    Ledger I/O is observability, never a correctness requirement, so every
    failure mode (including temp-file creation on a full disk) is absorbed
    and the half-written temp file cleaned up.
    """
    handle = None
    try:
        stats_dir.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=stats_dir,
            prefix=".ledger.", suffix=".tmp", delete=False)
        with handle:
            json.dump(payload, handle)
        target = stats_dir / name
        os.replace(handle.name, target)
        return target
    except OSError:
        if handle is not None:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
        return None


def compact_persisted_stats(directory: Optional[Union[str, Path]] = None) -> int:
    """Fold every counter ledger under ``directory`` into one file per cache.

    Each runner close appends a new ledger file, so a long-lived shared
    directory accumulates them; ``repro cache gc`` calls this to keep the
    ledger count bounded (O(cache classes), not O(runs)).  Aggregation over
    (ledgers union compacted files) is unchanged because counters are plain
    sums.  Concurrent compactors — two hosts of a sharded sweep running
    ``cache gc`` at once — are serialised by an ``O_EXCL`` lock file (the
    loser is a no-op; a lock older than :data:`_COMPACT_LOCK_STALE_SECONDS`
    is from a dead compactor and is broken — after a re-stat — so the *next*
    call can proceed).  A compactor dying between writing its output and
    unlinking the folded sources is harmless: the compacted file lists the
    sources it folded, so :func:`_read_ledgers` excludes the leftovers from
    every aggregation and the next compaction deletes them.  Readers racing
    a compaction may still transiently double- or under-count — acceptable
    for an advisory observability ledger.  Returns the number of ledger
    files removed.
    """
    stats_dir = _ledger_dir(directory)
    if not stats_dir.is_dir():
        return 0
    lock = stats_dir / ".compact.lock"
    try:
        lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            # Stat immediately before breaking so a lock refreshed since the
            # caller's glob is left alone.
            if time.time() - lock.stat().st_mtime > _COMPACT_LOCK_STALE_SECONDS:
                lock.unlink()
        except OSError:
            pass
        return 0
    except OSError:
        return 0
    try:
        live, stale = _read_ledgers(stats_dir)
        removed = 0
        for path in stale:
            # Leftovers from a compactor that died mid-fold; their sums
            # already live in a compacted file.
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        by_cache: Dict[str, Dict[str, int]] = {}
        by_cache_dedup: Dict[str, Dict[str, int]] = {}
        by_cache_health: Dict[str, Dict[str, int]] = {}
        sources: Dict[str, List[Path]] = {}
        folded: List[Path] = []
        for path, cache_name, counters, dedup, health in live:
            bucket = by_cache.setdefault(cache_name, {})
            for name, value in counters.items():
                bucket[name] = bucket.get(name, 0) + value
            if dedup is not None:
                dedup_bucket = by_cache_dedup.setdefault(cache_name, {})
                for name, value in dedup.items():
                    dedup_bucket[name] = dedup_bucket.get(name, 0) + value
            if health is not None:
                health_bucket = by_cache_health.setdefault(cache_name, {})
                for name, value in health.items():
                    health_bucket[name] = health_bucket.get(name, 0) + value
            sources.setdefault(cache_name, []).append(path)
            folded.append(path)
        if len(folded) <= len(by_cache):
            return removed
        written: List[Path] = []
        for cache_name, counters in by_cache.items():
            # Each compacted file lists only its own class's sources: if a
            # crash strands one class's output unwritten, the other class's
            # originals stay live instead of being excluded sum-less.
            payload = {"schema": SCHEMA_VERSION, "cache": cache_name,
                       "pid": os.getpid(), "written_at": time.time(),
                       "counters": counters, "compacted": True,
                       "folded": [path.name for path in sources[cache_name]]}
            if cache_name in by_cache_dedup:
                payload["dedup"] = by_cache_dedup[cache_name]
            if cache_name in by_cache_health:
                payload["health"] = by_cache_health[cache_name]
            target = _write_ledger(stats_dir, payload,
                                   f"compacted-{uuid.uuid4().hex}.stats")
            if target is None:
                # Roll back: leave the original ledgers as the single source
                # of truth rather than double-counting alongside partials.
                for partial in written:
                    try:
                        os.unlink(partial)
                    except OSError:
                        pass
                return removed
            written.append(target)
        for path in folded:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
    finally:
        os.close(lock_fd)
        try:
            lock.unlink()
        except OSError:
            pass


def persisted_cache_stats(directory: Optional[Union[str, Path]] = None
                          ) -> Dict[str, object]:
    """Aggregate every persisted counter ledger under ``directory``.

    Returns ``{"ledgers": n, "total": {hits, misses, stores, evictions},
    "by_cache": {<cache class>: {...}}, "dedup": {waves, planned, unique,
    deduped, cache_warm, executed}, "health": {runs, jobs, attempts, retries,
    timeouts, pool_rebuilds, degraded, dead_lettered}}`` summed over all
    ledger files — i.e. over every process (and every shard host writing to a
    shared directory) that flushed its counters via
    :meth:`JsonDiskCache.persist_stats`, plus every orchestrated wave streamed
    in via :func:`persist_dedup_stats` and every runner close streamed in via
    :func:`persist_health_stats`.  Unreadable ledgers are skipped; an empty
    or missing directory aggregates to all-zero counters.
    """
    zero = {name: 0 for name in _LEDGER_COUNTERS}
    dedup_total = {name: 0 for name in _DEDUP_COUNTERS}
    health_total = {name: 0 for name in _HEALTH_COUNTERS}
    summary: Dict[str, object] = {"ledgers": 0, "total": dict(zero),
                                  "by_cache": {}}
    live, _ = _read_ledgers(_ledger_dir(directory))
    for _, cache_name, counters, dedup, health in live:
        summary["ledgers"] += 1
        bucket = summary["by_cache"].setdefault(cache_name, dict(zero))
        for counter, value in counters.items():
            bucket[counter] += value
            summary["total"][counter] += value
        if dedup is not None:
            for counter, value in dedup.items():
                dedup_total[counter] += value
        if health is not None:
            for counter, value in health.items():
                health_total[counter] += value
    dedup_total["deduped"] = dedup_total["planned"] - dedup_total["unique"]
    summary["dedup"] = dedup_total
    summary["health"] = health_total
    return summary


#: Ledger cache-class name under which orchestrator waves record dedup stats.
DEDUP_LEDGER_CLASS = "SweepOrchestrator"


def persist_dedup_stats(directory: Union[str, Path],
                        dedup: Dict[str, object]) -> Optional[Path]:
    """Stream one orchestrated wave's dedup stats into the counter ledger.

    ``dedup`` is a :meth:`~repro.experiments.orchestrator.DedupStats.to_dict`
    payload; its planned/unique/cache_warm/executed counts are written as one
    ledger file (class :data:`DEDUP_LEDGER_CLASS`, zero cache counters so old
    readers still parse it) under ``<directory>/.stats/``.
    :func:`persisted_cache_stats` sums the blocks, which is how ``repro cache
    stats`` reports cross-host dedup rates for a shared sweep directory.
    Like every ledger write, failures are swallowed — observability, never a
    correctness requirement.
    """
    block = {name: int(dedup.get(name, 0)) for name in _DEDUP_COUNTERS}
    block["waves"] = 1
    payload = {"schema": SCHEMA_VERSION, "cache": DEDUP_LEDGER_CLASS,
               "pid": os.getpid(), "written_at": time.time(),
               "counters": {name: 0 for name in _LEDGER_COUNTERS},
               "dedup": block}
    return _write_ledger(Path(directory) / STATS_SUBDIR, payload,
                         f"{os.getpid()}-{uuid.uuid4().hex}.stats")


#: Ledger cache-class name under which runners record supervision health.
HEALTH_LEDGER_CLASS = "SweepSupervisor"


def persist_health_stats(directory: Union[str, Path],
                         health: Dict[str, object]) -> Optional[Path]:
    """Stream one runner's supervision-health deltas into the counter ledger.

    ``health`` carries :data:`_HEALTH_COUNTERS` deltas (a
    :meth:`~repro.experiments.runner.SweepHealthReport.counters` payload, or
    the delta since the runner's previous flush); each flush counts as one
    ``runs``.  The block is written as its own ledger file (class
    :data:`HEALTH_LEDGER_CLASS`, zero cache counters so old readers still
    parse it) and :func:`persisted_cache_stats` sums it, which is how ``repro
    cache stats`` reports cross-host retry/timeout/dead-letter rates for a
    shared sweep directory.  Like every ledger write, failures are swallowed
    — observability, never a correctness requirement.
    """
    block = {name: int(health.get(name, 0)) for name in _HEALTH_COUNTERS}
    block["runs"] = 1
    payload = {"schema": SCHEMA_VERSION, "cache": HEALTH_LEDGER_CLASS,
               "pid": os.getpid(), "written_at": time.time(),
               "counters": {name: 0 for name in _LEDGER_COUNTERS},
               "health": block}
    return _write_ledger(Path(directory) / STATS_SUBDIR, payload,
                         f"{os.getpid()}-{uuid.uuid4().hex}.stats")


#: How to decode each entry kind's record body; single-thread result entries
#: predate the ``kind`` field, so they decode under the implicit kind "result".
_ENTRY_DECODERS: Dict[str, Callable[[Dict[str, object]], object]] = {
    "result": lambda payload: SimulationResult.from_dict(payload["result"]),
    "smt": lambda payload: SmtResult.from_dict(payload["result"]),
    "report": lambda payload: GlobalStableReport.from_dict(payload["report"]),
}


@dataclasses.dataclass
class CacheVerifyReport:
    """Outcome of one full-directory integrity scan (:meth:`JsonDiskCache.verify`).

    ``entries``/``total_bytes`` cover every ``*.json`` file found; ``by_kind``
    counts only entries that decoded cleanly under the current schema.  The
    problem buckets are disjoint: an entry lands in the first one that applies.
    """

    directory: str
    schema_version: int
    entries: int = 0
    total_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Unreadable / non-JSON files, unknown kinds, undecodable record bodies.
    corrupt: List[str] = field(default_factory=list)
    #: Valid entries written under a different SCHEMA_VERSION (benign misses).
    stale_schema: List[str] = field(default_factory=list)
    #: Entries whose embedded key or shard directory disagrees with their path.
    key_mismatch: List[str] = field(default_factory=list)
    #: Leftover temp files from writers that died mid-store.
    orphan_temp: List[str] = field(default_factory=list)
    purged: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing needs operator attention (stale entries are fine)."""
        return not (self.corrupt or self.key_mismatch or self.orphan_temp)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable form of the report (``--json`` CLI output)."""
        return dataclasses.asdict(self)


class JsonDiskCache:
    """Shared store machinery: keyed JSON files, atomic writes, LRU size cap.

    Subclasses provide the domain types (what a payload contains and how keys
    are derived); this base owns the directory layout, schema validation,
    hit/miss accounting, mtime-based recency and the GC policy.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 schema_version: int = SCHEMA_VERSION,
                 max_mb: Optional[float] = None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        # Fail fast rather than after the first (expensive) simulation's put().
        if self.directory.exists() and not self.directory.is_dir():
            raise NotADirectoryError(
                f"cache path {self.directory} exists and is not a directory")
        self.schema_version = schema_version
        if max_mb is None:
            max_mb = _max_mb_from_env()
        elif max_mb <= 0:
            raise ValueError("max_mb must be positive")
        self.max_mb = max_mb
        self.stats = CacheStats()
        # Counter values already flushed to the on-disk ledger; persist_stats
        # writes only the delta since the last flush, so calling it from both
        # a runner's close() and a CLI epilogue never double-counts.
        self._persisted_counters: Dict[str, int] = {}
        # Running directory-size estimate for the auto-GC: initialised by one
        # full scan on the first capped store, then maintained incrementally
        # so puts stay O(1) while the directory is under the cap.  A GC pass
        # rescans and resyncs it, which also absorbs other processes' writes.
        self._size_estimate: Optional[int] = None

    # ------------------------------------------------------------------- layout

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _digest(self, payload: Dict[str, object]) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ raw i/o

    def _read_payload(self, key: str, kind: Optional[str] = None) -> Optional[Dict[str, object]]:
        """Load and validate one entry envelope; corrupt entries are misses.

        Recency is *not* refreshed here: callers decode the record body first
        and call :meth:`_mark_hit` only when the whole entry proved usable, so
        a permanently undecodable entry ages out through the LRU GC instead of
        being promoted to most-recently-used on every failed read.
        """
        path = self._path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            if kind is not None and payload.get("kind") != kind:
                raise ValueError("entry kind mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        return payload

    def _mark_hit(self, key: str) -> None:
        """Count a hit and refresh the entry's mtime so the LRU GC keeps it."""
        try:
            os.utime(self._path_for(key), None)
        except OSError:
            pass
        self.stats.hits += 1

    def _write_payload(self, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``key`` atomically (temp file + rename)."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            replaced_size = path.stat().st_size
        except OSError:
            replaced_size = 0
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.max_mb is not None:
            if self._size_estimate is None:
                self._size_estimate = self.total_bytes()
            else:
                try:
                    self._size_estimate += path.stat().st_size - replaced_size
                except OSError:
                    pass
                if self._size_estimate < 0:
                    # Incremental bookkeeping drifted — another process evicted
                    # or overwrote entries in the shared directory.  Resync
                    # from a full scan rather than skipping needed GC passes.
                    self._size_estimate = self.total_bytes()
            if self._size_estimate > int(self.max_mb * 1024 * 1024):
                self.gc()

    # --------------------------------------------------------------- management

    def entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(path, mtime, size_bytes)``, least recent first.

        Ties on mtime break on the path so GC eviction order is deterministic.
        """
        found: List[Tuple[Path, float, int]] = []
        if not self.directory.is_dir():
            return found
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append((path, stat.st_mtime, stat.st_size))
        found.sort(key=lambda entry: (entry[1], str(entry[0])))
        return found

    def total_bytes(self) -> int:
        """Total on-disk size of every entry in the directory."""
        return sum(size for _, _, size in self.entries())

    def gc(self, max_mb: Optional[float] = None) -> List[Path]:
        """Evict least-recently-used entries until the directory fits the cap.

        Returns the evicted paths (empty when the directory is already within
        the cap, or when no cap is configured).  The cap applies to the whole
        directory, so result and report caches sharing one directory share one
        budget.
        """
        cap_mb = max_mb if max_mb is not None else self.max_mb
        if cap_mb is None:
            return []
        if cap_mb <= 0:
            raise ValueError("max_mb must be positive")
        cap_bytes = int(cap_mb * 1024 * 1024)
        entries = self.entries()
        total = sum(size for _, _, size in entries)
        removed: List[Path] = []
        for path, _, size in entries:
            if total <= cap_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed.append(path)
            self.stats.evictions += 1
        # ``total`` came from a fresh directory scan, so assigning it here
        # resyncs the incremental estimate after every pass; the clamp guards
        # against entries another process shrank between scan and unlink.
        self._size_estimate = max(0, total)
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def persist_stats(self) -> Optional[Path]:
        """Flush this instance's counter deltas to the directory's ledger.

        Each flush writes one append-only ledger file under
        ``<dir>/.stats/`` (atomic temp-file + rename; a unique name per
        flush, so concurrent processes — the N hosts of a sharded sweep —
        never contend).  :func:`persisted_cache_stats` sums the ledgers,
        which is how ``repro cache stats`` reports real cross-process hit
        rates instead of just the calling process's counters.  Only the
        delta since the previous flush is written, so the method is safe to
        call any number of times; a no-delta flush writes nothing.  Ledger
        I/O failures are swallowed — the ledger is observability, never a
        correctness requirement.
        """
        counters = self.stats.as_dict()
        delta = {name: value - self._persisted_counters.get(name, 0)
                 for name, value in counters.items()}
        if not any(delta.values()):
            return None
        payload = {"schema": self.schema_version, "cache": type(self).__name__,
                   "pid": os.getpid(), "written_at": time.time(),
                   "counters": delta}
        path = _write_ledger(self.directory / STATS_SUBDIR, payload,
                             f"{os.getpid()}-{uuid.uuid4().hex}.stats")
        if path is None:
            return None
        self._persisted_counters = counters
        return path

    def clear(self) -> int:
        """Delete every entry (and counter ledger); returns files removed."""
        removed = 0
        self._size_estimate = None
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in (self.directory / STATS_SUBDIR).glob("*.stats"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # A cleared store must not leave warehouse rows describing entries
        # that no longer exist (the rows-without-entries case ``repro
        # warehouse verify --strict`` flags).
        removed += clear_warehouse(self.directory)
        return removed

    #: ``*.tmp`` files younger than this are assumed to belong to a live
    #: writer mid-store and are never reported (or purged) as orphans.
    ORPHAN_TEMP_AGE_SECONDS = 3600.0

    def verify(self, purge: bool = False,
               decode_bodies: bool = True) -> CacheVerifyReport:
        """Scan every entry in the directory and classify its integrity.

        Each entry must parse as JSON, carry the current schema version, decode
        through its kind's record type (single-thread result, SMT result or
        inspector report — all kinds are checked regardless of which cache
        class runs the scan, since the kinds may share one directory) and live
        at the path its embedded key dictates.  Leftover ``*.tmp`` files from
        writers that died between create and rename are reported as orphans —
        but only once older than :data:`ORPHAN_TEMP_AGE_SECONDS`, so scanning
        a directory that live writers are storing into neither misreports
        their in-flight temp files nor (with ``purge``) deletes them mid-write.

        ``decode_bodies=False`` skips the record-body decode (the expensive
        part on large directories) and checks only envelope, schema and
        placement — the right trade-off for ``repro cache stats``.

        With ``purge=True`` every corrupt, stale, mismatched or orphaned file
        is deleted; healthy entries are never touched.
        """
        report = CacheVerifyReport(directory=str(self.directory),
                                   schema_version=self.schema_version)
        for path, _, size in self.entries():
            report.entries += 1
            report.total_bytes += size
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if not isinstance(payload, dict):
                    raise ValueError("entry is not a JSON object")
            except (OSError, ValueError):
                report.corrupt.append(str(path))
                continue
            if payload.get("schema") != self.schema_version:
                report.stale_schema.append(str(path))
                continue
            kind = str(payload.get("kind", "result"))
            decoder = _ENTRY_DECODERS.get(kind)
            if decoder is None:
                report.corrupt.append(str(path))
                continue
            if decode_bodies:
                try:
                    decoder(payload)
                except (ValueError, KeyError, TypeError):
                    report.corrupt.append(str(path))
                    continue
            if payload.get("key") != path.stem or path.parent.name != path.stem[:2]:
                report.key_mismatch.append(str(path))
                continue
            report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
        if self.directory.is_dir():
            oldest_live = time.time() - self.ORPHAN_TEMP_AGE_SECONDS
            for path in sorted(self.directory.glob("*/.*.tmp")):
                try:
                    if path.stat().st_mtime > oldest_live:
                        continue
                except OSError:
                    continue
                report.orphan_temp.append(str(path))
        if purge:
            for name in (report.corrupt + report.stale_schema
                         + report.key_mismatch + report.orphan_temp):
                try:
                    os.unlink(name)
                    report.purged += 1
                except OSError:
                    pass
            if report.purged:
                self._size_estimate = None
        return report


class ResultCache(JsonDiskCache):
    """Content-addressed store of :class:`SimulationResult` / :class:`SmtResult`.

    Every successful :meth:`put`/:meth:`put_smt` also appends one flat
    analytics row to the columnar warehouse under ``.warehouse/`` (see
    :mod:`repro.experiments.warehouse`).  Because all cache writes are
    parent-side — the serial runner's commit loop, the parallel runner's
    result drain, orchestrated wave commits, partial-wave journals and
    ``--resume`` re-execution all funnel through these two methods — the
    warehouse stays in lockstep with the resume journal by construction.
    The row is appended *after* the entry write succeeds, so the warehouse
    can trail the journal by at most the in-flight put (repaired by ``repro
    warehouse rebuild``) but never lists a row for an entry that was never
    committed.  Row appends absorb I/O errors and can be disabled with
    ``REPRO_WAREHOUSE=0``; they are analytics, never correctness.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 schema_version: int = SCHEMA_VERSION,
                 max_mb: Optional[float] = None):
        super().__init__(directory, schema_version, max_mb)
        self.warehouse = WarehouseWriter(self.directory)

    # ------------------------------------------------------- single-thread keys

    def key_for(self, config: CoreConfig, spec: WorkloadSpec,
                instructions: int, num_registers: int,
                base_pc: int = DEFAULT_BASE_PC) -> str:
        """The content hash identifying one (config, workload, trace) job."""
        payload = {
            "schema": self.schema_version,
            "config": config_fingerprint(config),
            "workload": spec.to_dict(),
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pc": base_pc,
            },
        }
        return self._digest(payload)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (corrupt entries are misses)."""
        payload = self._read_payload(key)
        if payload is None:
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (temp file + rename)."""
        self._write_payload(key, {"schema": self.schema_version, "key": key,
                                  "result": result.to_dict()})
        self.warehouse.append(row_for_result(key, result, self.schema_version))

    # ----------------------------------------------------------------- SMT keys

    def key_for_smt(self, config: CoreConfig, first: WorkloadSpec,
                    second: WorkloadSpec, instructions: int, num_registers: int,
                    first_base_pc: int = DEFAULT_BASE_PC,
                    second_base_pc: int = SMT_SECOND_THREAD_BASE_PC) -> str:
        """The content hash identifying one SMT2 (config, pair, trace) job."""
        payload = {
            "schema": self.schema_version,
            "kind": "smt",
            "config": config_fingerprint(config),
            "workloads": [first.to_dict(), second.to_dict()],
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pcs": [first_base_pc, second_base_pc],
            },
        }
        return self._digest(payload)

    def get_smt(self, key: str) -> Optional[SmtResult]:
        """The cached SMT result for ``key``, or None."""
        payload = self._read_payload(key, kind="smt")
        if payload is None:
            return None
        try:
            result = SmtResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return result

    def put_smt(self, key: str, result: SmtResult) -> None:
        """Store an :class:`SmtResult` under ``key`` atomically."""
        self._write_payload(key, {"schema": self.schema_version, "kind": "smt",
                                  "key": key, "result": result.to_dict()})
        self.warehouse.append(row_for_smt(key, result, self.schema_version))


class ReportCache(JsonDiskCache):
    """Content-addressed store of Load Inspector :class:`GlobalStableReport`.

    Keys cover only what determines a report — the workload spec and the trace
    parameters — so every configuration sweep over a workload shares one report
    entry.  A report cache may share its directory with a :class:`ResultCache`:
    keys embed an entry kind, so the two namespaces cannot collide, and the LRU
    size cap then covers both.
    """

    def key_for(self, spec: WorkloadSpec, instructions: int, num_registers: int,
                base_pc: int = DEFAULT_BASE_PC) -> str:
        """The content hash identifying one workload's inspector report."""
        payload = {
            "schema": self.schema_version,
            "kind": "report",
            "workload": spec.to_dict(),
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pc": base_pc,
            },
        }
        return self._digest(payload)

    def get(self, key: str) -> Optional[GlobalStableReport]:
        """The cached report for ``key``, or None (corrupt entries are misses)."""
        payload = self._read_payload(key, kind="report")
        if payload is None:
            return None
        try:
            report = GlobalStableReport.from_dict(payload["report"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self._mark_hit(key)
        return report

    def put(self, key: str, report: GlobalStableReport) -> None:
        """Store ``report`` under ``key`` atomically."""
        self._write_payload(key, {"schema": self.schema_version, "kind": "report",
                                  "key": key, "report": report.to_dict()})
