"""Content-addressed on-disk cache for simulation results.

A cache entry is keyed by a SHA-256 fingerprint of everything that determines
a simulation's outcome: the fully materialised :class:`CoreConfig`, the
:class:`WorkloadSpec`, the trace-generation parameters (instruction budget,
architectural register count, base PC) and a schema version.  Workload traces
are regenerated deterministically from the spec's seed, so the trace itself
never needs to be stored — two runs that fingerprint identically simulate
identically.

Bumping :data:`SCHEMA_VERSION` invalidates every existing entry; bump it
whenever the timing model or the :class:`SimulationResult` layout changes in a
way that makes old results incomparable.

The cache directory defaults to ``.repro-cache`` in the working directory and
can be redirected with the ``REPRO_CACHE_DIR`` environment variable.  Entries
are plain JSON files laid out as ``<dir>/<key[:2]>/<key>.json`` with atomic
(write-to-temp, rename) stores, so a cache directory may safely be shared by
several concurrent figure harnesses.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.pipeline.config import CoreConfig
from repro.pipeline.stats import SimulationResult
from repro.workloads.suites import WorkloadSpec

#: Version of the cached-result schema; bump to invalidate all prior entries.
SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Per-class runtime fields excluded from fingerprints: they accumulate while
#: a simulation runs and say nothing about what will be simulated.
_FINGERPRINT_EXCLUDE: Dict[str, frozenset] = {
    "IdealOracle": frozenset({"_seen", "loads_covered", "loads_seen"}),
}


def canonical_value(value: object) -> object:
    """Reduce ``value`` to a deterministic JSON-serializable form.

    Dataclasses become sorted field dictionaries, enums their values, sets
    sorted lists; insertion order never leaks into the result, so logically
    equal configurations always fingerprint identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = _FINGERPRINT_EXCLUDE.get(type(value).__name__, frozenset())
        return {f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value) if f.name not in excluded}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(item) for item in value)
    if isinstance(value, dict):
        return {str(key): canonical_value(val)
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def config_fingerprint(config: CoreConfig) -> Dict[str, object]:
    """Canonical dictionary of every outcome-relevant field of a core config."""
    return canonical_value(config)


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Content-addressed, JSON-backed store of :class:`SimulationResult`."""

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 schema_version: int = SCHEMA_VERSION):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        # Fail fast rather than after the first (expensive) simulation's put().
        if self.directory.exists() and not self.directory.is_dir():
            raise NotADirectoryError(
                f"result cache path {self.directory} exists and is not a directory")
        self.schema_version = schema_version
        self.stats = CacheStats()

    # --------------------------------------------------------------------- keys

    def key_for(self, config: CoreConfig, spec: WorkloadSpec,
                instructions: int, num_registers: int,
                base_pc: int = 0x400000) -> str:
        """The content hash identifying one (config, workload, trace) job."""
        payload = {
            "schema": self.schema_version,
            "config": config_fingerprint(config),
            "workload": spec.to_dict(),
            "trace": {
                "instructions": instructions,
                "num_registers": num_registers,
                "base_pc": base_pc,
            },
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ get/put

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (corrupt entries are misses)."""
        path = self._path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (temp file + rename)."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": self.schema_version, "key": key,
                   "result": result.to_dict()}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # --------------------------------------------------------------- management

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
