"""Named core configurations used by the figure harnesses.

All configurations share the paper's baseline core (Table 2).  The Constable
confidence threshold is scaled down from the paper's 30 to 8 because the
synthetic traces are orders of magnitude shorter than the paper's (a load that
recurs once per outer loop iteration would otherwise spend most of a short
trace just training); the hardware-faithful default of 30 remains the
:class:`~repro.core.config.ConstableConfig` default and is exercised by the
unit tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.config import ConstableConfig
from repro.pipeline.config import CoreConfig

#: Stability-confidence threshold used by experiments on short synthetic traces.
EXPERIMENT_CONFIDENCE_THRESHOLD = 8


def constable_engine_config(**overrides) -> ConstableConfig:
    """A ConstableConfig with the experiment-scaled confidence threshold."""
    params = {"confidence_threshold": EXPERIMENT_CONFIDENCE_THRESHOLD}
    params.update(overrides)
    return ConstableConfig(**params)


def baseline_config(**overrides) -> CoreConfig:
    """The paper's baseline: MRN + rename optimizations, no Constable, no LVP."""
    return CoreConfig(**overrides)


def constable_config(**overrides) -> CoreConfig:
    """Baseline plus Constable."""
    constable = overrides.pop("constable", None) or constable_engine_config()
    return CoreConfig(constable=constable, **overrides)


def eves_config(**overrides) -> CoreConfig:
    """Baseline plus the EVES load value predictor."""
    return CoreConfig(lvp="eves", **overrides)


def eves_constable_config(**overrides) -> CoreConfig:
    """Baseline plus EVES plus Constable (the paper's combined configuration)."""
    constable = overrides.pop("constable", None) or constable_engine_config()
    return CoreConfig(lvp="eves", constable=constable, **overrides)


def elar_config(**overrides) -> CoreConfig:
    """Baseline plus early load address resolution."""
    return CoreConfig(enable_elar=True, **overrides)


def rfp_config(**overrides) -> CoreConfig:
    """Baseline plus register file prefetching."""
    return CoreConfig(enable_rfp=True, **overrides)


def elar_constable_config(**overrides) -> CoreConfig:
    """ELAR combined with Constable."""
    constable = overrides.pop("constable", None) or constable_engine_config()
    return CoreConfig(enable_elar=True, constable=constable, **overrides)


def rfp_constable_config(**overrides) -> CoreConfig:
    """RFP combined with Constable."""
    constable = overrides.pop("constable", None) or constable_engine_config()
    return CoreConfig(enable_rfp=True, constable=constable, **overrides)


def named_configs() -> Dict[str, Callable[[], CoreConfig]]:
    """The named configurations evaluated throughout the paper."""
    return {
        "baseline": baseline_config,
        "constable": constable_config,
        "eves": eves_config,
        "eves+constable": eves_constable_config,
        "elar": elar_config,
        "rfp": rfp_config,
        "elar+constable": elar_constable_config,
        "rfp+constable": rfp_constable_config,
    }
