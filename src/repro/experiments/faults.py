"""Deterministic fault injection for chaos-testing the sweep execution stack.

A :class:`FaultPlan` maps *job labels* (``sim:<config>/<workload>``,
``smt:<config>/<first>+<second>``, ``gen:<workload>``) to faults that the
worker-side payload wrapper (:func:`repro.experiments.parallel.run_supervised`)
injects deterministically:

* ``raise`` — raise :class:`InjectedFault` before simulating,
* ``crash`` — ``os._exit`` the worker process (the parent sees a
  ``BrokenProcessPool`` exactly as it would for an OOM-killed child),
* ``hang`` — sleep ``seconds`` before simulating (exercises per-job wall
  timeouts; with no timeout configured the job merely finishes late),
* ``corrupt`` — replace the payload's return value with
  :data:`CORRUPTED_RESULT` (exercises supervisor-side result validation).

Plans are supplied through :data:`FAULT_PLAN_ENV` as inline JSON or a path to
a JSON file, e.g. ``{"sim:baseline/*": {"kind": "crash", "times": 1}}``.
Label patterns are :func:`fnmatch.fnmatchcase` globs; a fault fires only while
the job's attempt number is ``<= times``, so a retried job deterministically
*stops* faulting once its budget is spent — which is what makes the chaos
differential test meaningful (the faulted sweep must converge to results
bit-identical to the fault-free serial run).

Two invariants keep this harness test-only and safe:

* **Never in cache keys.**  The fault plan (and the retry/timeout knobs it is
  exercised with) changes *how* a sweep executes, never *what* a result
  contains — corrupted results are detected and retried, never committed.
  RL002 walks this module, and the runtime twin in ``tests/test_lint.py``
  asserts keys are bit-identical with and without a plan in the environment.
* **Workers only, by default.**  ``maybe_inject`` is a no-op in the parent
  process unless a rule opts into ``"scope": "anywhere"`` (used by tests that
  need the in-process degradation rung to fail too) — a stray ``crash`` rule
  must never ``os._exit`` the supervising process.

Malformed plans raise :class:`ValueError` eagerly (at parallel-runner
construction): a typo'd chaos plan that silently injects nothing would turn
every chaos test vacuous, which is strictly worse than failing loudly.
"""

from __future__ import annotations

import fnmatch
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Environment variable carrying the fault plan (inline JSON or a file path).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The fault kinds a plan may request.
FAULT_KINDS = ("raise", "crash", "hang", "corrupt")

#: The scopes a rule may fire in: pool workers only (default), or anywhere
#: including the supervising parent's in-process degradation rung.
FAULT_SCOPES = ("worker", "anywhere")

#: Exit status used by ``crash`` faults (distinctive in worker post-mortems).
CRASH_EXIT_STATUS = 17

#: Sentinel a ``corrupt`` fault substitutes for the payload's return value;
#: supervisor-side validators reject it and the job is retried.
CORRUPTED_RESULT = "__repro-corrupted-result__"


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-kind fault in a worker (deterministic, test-only)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: what kind, for how many attempts, where."""

    kind: str
    times: int = 1
    seconds: float = 5.0
    scope: str = "worker"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")
        if self.scope not in FAULT_SCOPES:
            raise ValueError(
                f"fault scope must be one of {FAULT_SCOPES}, got {self.scope!r}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of ``(label glob, FaultSpec)`` rules.

    Rules are matched in declaration order and the first match wins, so a
    specific rule may precede (and shadow) a broader glob.
    """

    rules: Tuple[Tuple[str, FaultSpec], ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the JSON plan form ``{pattern: {kind, times?, seconds?, scope?}}``."""
        try:
            raw = json.loads(text)
        except ValueError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from None
        if not isinstance(raw, dict):
            raise ValueError(
                f"fault plan must be a JSON object mapping label patterns to "
                f"fault specs, got {type(raw).__name__}")
        rules = []
        for pattern, spec in raw.items():
            if not isinstance(spec, dict) or "kind" not in spec:
                raise ValueError(
                    f"fault spec for pattern {pattern!r} must be an object "
                    f"with at least a 'kind' field, got {spec!r}")
            unknown = sorted(set(spec) - {"kind", "times", "seconds", "scope"})
            if unknown:
                raise ValueError(
                    f"fault spec for pattern {pattern!r} has unknown fields "
                    f"{unknown} (allowed: kind, times, seconds, scope)")
            try:
                rules.append((str(pattern), FaultSpec(
                    kind=str(spec["kind"]), times=int(spec.get("times", 1)),
                    seconds=float(spec.get("seconds", 5.0)),
                    scope=str(spec.get("scope", "worker")))))
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"invalid fault spec for pattern {pattern!r}: {error}"
                ) from None
        return cls(rules=tuple(rules))

    def lookup(self, label: str, attempt: int) -> Optional[FaultSpec]:
        """The first rule matching ``label`` whose budget covers ``attempt``."""
        for pattern, spec in self.rules:
            if fnmatch.fnmatchcase(label, pattern):
                return spec if attempt <= spec.times else None
        return None


#: Per-process parse memo keyed by the raw environment string, so workers
#: consulting the plan per job pay JSON parsing once, not once per payload.
_PARSED_PLANS: Dict[str, FaultPlan] = {}


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan from :data:`FAULT_PLAN_ENV`, or None when the variable is unset.

    Inline JSON (the value starts with ``{``) and file paths are both
    accepted; malformed values raise :class:`ValueError` — a chaos harness
    that silently injects nothing is worse than one that fails loudly.
    """
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        return None
    plan = _PARSED_PLANS.get(raw)
    if plan is None:
        text = raw
        if not raw.startswith("{"):
            path = Path(raw)
            if not path.is_file():
                raise ValueError(
                    f"{FAULT_PLAN_ENV}={raw!r} is neither inline JSON nor an "
                    f"existing plan file")
            text = path.read_text(encoding="utf-8")
        plan = FaultPlan.parse(text)
        _PARSED_PLANS[raw] = plan
    return plan


def _in_worker_process() -> bool:
    """True in a multiprocessing child (pool worker), False in the parent."""
    return multiprocessing.parent_process() is not None


def _applicable(label: str, attempt: int) -> Optional[FaultSpec]:
    plan = active_fault_plan()
    if plan is None:
        return None
    spec = plan.lookup(label, attempt)
    if spec is None:
        return None
    if spec.scope == "worker" and not _in_worker_process():
        return None
    return spec


def maybe_inject(label: str, attempt: int) -> None:
    """Fire any pre-execution fault planned for ``(label, attempt)``.

    ``corrupt`` faults are post-execution (see :func:`corrupt_result`) and do
    nothing here.  ``hang`` sleeps, then lets the job proceed normally — the
    supervisor's wall timeout, not the fault, decides whether that attempt is
    abandoned.
    """
    spec = _applicable(label, attempt)
    if spec is None:
        return
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected fault for {label} (attempt {attempt})")
    if spec.kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    if spec.kind == "hang":
        time.sleep(spec.seconds)


def corrupt_result(label: str, attempt: int, result: object) -> object:
    """Apply any planned ``corrupt`` fault to a payload's return value."""
    spec = _applicable(label, attempt)
    if spec is not None and spec.kind == "corrupt":
        return CORRUPTED_RESULT
    return result
