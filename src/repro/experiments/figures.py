"""Per-figure experiment harnesses.

Every public function regenerates one table or figure of the paper and returns
a plain dictionary with the numbers (plus, in most cases, a ``text`` entry with
a formatted table).  The functions accept an :class:`ExperimentRunner`; when
none is given they build a small default runner so that each harness stays
runnable on a laptop in seconds-to-minutes.

The absolute values will not match the paper (synthetic workloads, simplified
core); EXPERIMENTS.md records, per figure, which qualitative property is
expected to hold.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.load_inspector import inspect_trace
from repro.analysis.stats_utils import box_whisker_summary, filtered_geomean
from repro.core.config import ConstableConfig
from repro.core.ideal import IdealMode, IdealOracle
from repro.core.storage import storage_overhead_report
from repro.experiments.configs import (
    EXPERIMENT_CONFIDENCE_THRESHOLD,
    baseline_config,
    constable_config,
    constable_engine_config,
    elar_config,
    elar_constable_config,
    eves_config,
    eves_constable_config,
    rfp_config,
    rfp_constable_config,
)
from repro.experiments.cache import (CACHE_DIR_ENV, DEFAULT_CACHE_DIR,
                                     SCHEMA_VERSION, ReportCache, ResultCache)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.warehouse import (load_rows, speedup_summary,
                                         warehouse_present)
from repro.experiments.reporting import format_table, per_suite_table
from repro.experiments.runner import ConfigLike, ExperimentRunner
from repro.isa.instruction import AddressingMode
from repro.pipeline.config import CoreConfig
from repro.power.cacti import constable_structure_estimates
from repro.power.power_model import CorePowerModel
from repro.workloads.generator import generate_trace
from repro.workloads.suites import SUITE_NAMES


def default_runner(per_suite: int = 2, instructions: int = 6000,
                   workers: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   suites: Sequence[str] = SUITE_NAMES,
                   max_retries: Optional[int] = None,
                   job_timeout: Optional[float] = None) -> ExperimentRunner:
    """The reduced workload set used by the benchmark and CLI harnesses.

    Every figure harness accepts either runner flavour: pass ``workers > 1``
    for a :class:`ParallelExperimentRunner` that shards trace generation and
    simulations (single-thread and SMT) over a process pool, and/or
    ``cache_dir`` to share an on-disk cache directory with other harnesses and
    reruns.  The directory holds both the result cache (single-thread + SMT
    entries) and the Load Inspector report cache, so a warm rerun of any
    figure harness performs zero simulations and zero inspection passes.

    ``max_retries`` and ``job_timeout`` tune the parallel runner's per-job
    supervision (retry budget and wall-clock timeout); both fall back to their
    ``REPRO_MAX_RETRIES`` / ``REPRO_JOB_TIMEOUT`` environment defaults when
    left as ``None`` and are ignored by the serial runner, which has no
    supervision layer.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    report_cache = ReportCache(cache_dir) if cache_dir is not None else None
    if workers is not None and workers > 1:
        return ParallelExperimentRunner(per_suite=per_suite, instructions=instructions,
                                        suites=suites, cache=cache,
                                        report_cache=report_cache,
                                        max_workers=workers,
                                        max_retries=max_retries,
                                        job_timeout=job_timeout)
    return ExperimentRunner(per_suite=per_suite, instructions=instructions,
                            suites=suites, cache=cache, report_cache=report_cache)


def _ideal_builder(mode: IdealMode, lvp: Optional[str] = None):
    """Config builder for the oracle-driven ideal mechanisms (needs the trace report)."""
    def build(trace, report):
        oracle = IdealOracle(stable_pcs=set(report.global_stable_pcs()), mode=mode)
        return CoreConfig(ideal_oracle=oracle, lvp=lvp)
    return build


# ======================================================================== Fig 3

def fig3_global_stable_characterisation(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 3: fraction, addressing modes and reuse distances of global-stable loads."""
    runner = runner or default_runner()
    per_suite_fraction: Dict[str, List[float]] = {suite: [] for suite in runner.suites}
    mode_breakdown: Dict[str, Dict[str, List[float]]] = {}
    distance: Dict[str, List[float]] = {}
    distance_by_mode: Dict[str, Dict[str, List[float]]] = {}
    for run in runner.workloads().values():
        report = run.report
        per_suite_fraction[run.spec.suite].append(report.global_stable_dynamic_fraction())
        for mode, value in report.addressing_mode_breakdown().items():
            mode_breakdown.setdefault(run.spec.suite, {}).setdefault(mode, []).append(value)
        for bucket, value in report.distance_distribution().items():
            distance.setdefault(bucket, []).append(value)
        for mode, buckets in report.distance_distribution_by_mode().items():
            for bucket, value in buckets.items():
                distance_by_mode.setdefault(mode, {}).setdefault(bucket, []).append(value)

    def _avg(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    fraction_by_suite = {suite: _avg(values) for suite, values in per_suite_fraction.items()}
    all_fractions = [v for values in per_suite_fraction.values() for v in values]
    result = {
        "global_stable_fraction_by_suite": fraction_by_suite,
        "global_stable_fraction_avg": _avg(all_fractions),
        "addressing_mode_breakdown": {
            suite: {mode: _avg(values) for mode, values in modes.items()}
            for suite, modes in mode_breakdown.items()},
        "distance_distribution": {bucket: _avg(values) for bucket, values in distance.items()},
        "distance_distribution_by_mode": {
            mode: {bucket: _avg(values) for bucket, values in buckets.items()}
            for mode, buckets in distance_by_mode.items()},
    }
    rows = [(suite, f"{fraction * 100:.1f}%") for suite, fraction in fraction_by_suite.items()]
    rows.append(("AVG", f"{result['global_stable_fraction_avg'] * 100:.1f}%"))
    result["text"] = format_table(["suite", "global-stable loads"], rows,
                                  title="Fig. 3(a): fraction of dynamic loads that are global-stable")
    return result


# ======================================================================== Fig 6

def fig6_load_port_utilisation(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 6: load-port-utilised cycles and how often stable loads hold the port."""
    runner = runner or default_runner()
    results = runner.run_config("baseline+eves", eves_config())
    utilised_fractions = []
    blocking_fractions = []
    for result in results.values():
        cycles = max(1, result.cycles)
        utilised = result.stats.load_utilized_cycles
        utilised_fractions.append(utilised / cycles)
        if utilised:
            blocking_fractions.append(result.stats.load_utilized_cycles_stable_blocking / utilised)
    summary = {
        "load_utilised_cycle_fraction": sum(utilised_fractions) / len(utilised_fractions),
        "stable_blocking_fraction_of_utilised": (
            sum(blocking_fractions) / len(blocking_fractions) if blocking_fractions else 0.0),
    }
    summary["text"] = format_table(
        ["metric", "value"],
        [("cycles with >=1 load port busy", f"{summary['load_utilised_cycle_fraction'] * 100:.1f}%"),
         ("of those, stable load holds port while non-stable waits",
          f"{summary['stable_blocking_fraction_of_utilised'] * 100:.1f}%")],
        title="Fig. 6: load port utilisation (baseline + EVES)")
    return summary


# ======================================================================== Fig 7

def fig7_headroom(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 7: Ideal Constable vs Ideal Stable LVP vs 2x load width."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    runner.run_config("ideal_stable_lvp", _ideal_builder(IdealMode.STABLE_LVP))
    runner.run_config("ideal_stable_lvp_fetch_elim",
                      _ideal_builder(IdealMode.STABLE_LVP_FETCH_ELIM))
    runner.run_config("2x_load_width", baseline_config().with_load_width(6))
    runner.run_config("ideal_constable", _ideal_builder(IdealMode.CONSTABLE))
    configs = ["ideal_stable_lvp", "ideal_stable_lvp_fetch_elim", "2x_load_width",
               "ideal_constable"]
    per_suite = {}
    for config in configs:
        for suite, value in runner.speedups_by_suite(config).items():
            per_suite.setdefault(suite, {})[config] = value
    result = {"speedups_by_suite": per_suite,
              "geomean": {config: runner.geomean_speedup(config) for config in configs}}
    result["text"] = per_suite_table(per_suite, title="Fig. 7: headroom of ideal mechanisms")
    return result


# ======================================================================== Fig 9

def fig9_sld_updates(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 9: SLD updates per cycle and the effect of wrong-path updates."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    clean = runner.run_config("constable", constable_config())
    noisy = runner.run_config(
        "constable_wrong_path",
        constable_config(constable=constable_engine_config(wrong_path_updates=True)))
    updates = [result.stats.average_sld_updates_per_cycle() for result in clean.values()]
    deltas = []
    for name in clean:
        clean_cycles = clean[name].cycles
        noisy_cycles = noisy[name].cycles
        deltas.append(clean_cycles / noisy_cycles - 1.0)
    result = {
        "sld_updates_per_cycle": box_whisker_summary(updates),
        "wrong_path_performance_delta": box_whisker_summary(deltas),
    }
    result["text"] = format_table(
        ["metric", "mean", "median", "max"],
        [("SLD updates per cycle",
          f"{result['sld_updates_per_cycle']['mean']:.3f}",
          f"{result['sld_updates_per_cycle']['median']:.3f}",
          f"{result['sld_updates_per_cycle']['max']:.3f}"),
         ("perf delta from wrong-path updates",
          f"{result['wrong_path_performance_delta']['mean'] * 100:.2f}%",
          f"{result['wrong_path_performance_delta']['median'] * 100:.2f}%",
          f"{result['wrong_path_performance_delta']['max'] * 100:.2f}%")],
        title="Fig. 9: SLD update rate and wrong-path sensitivity")
    return result


# ======================================================================= Fig 11

def fig11_speedup_nosmt(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 11: noSMT speedups of EVES, Constable, EVES+Constable, EVES+Ideal Constable."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    runner.run_config("eves", eves_config())
    runner.run_config("constable", constable_config())
    runner.run_config("eves+constable", eves_constable_config())
    runner.run_config("eves+ideal_constable",
                      _ideal_builder(IdealMode.CONSTABLE, lvp="eves"))
    configs = ["eves", "constable", "eves+constable", "eves+ideal_constable"]
    per_suite = {}
    for config in configs:
        for suite, value in runner.speedups_by_suite(config).items():
            per_suite.setdefault(suite, {})[config] = value
    result = {"speedups_by_suite": per_suite,
              "geomean": {config: runner.geomean_speedup(config) for config in configs}}
    result["text"] = per_suite_table(per_suite, title="Fig. 11: speedup over baseline (noSMT)")
    return result


# ======================================================================= Fig 12

def fig12_per_workload(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 12: per-workload speedup line graph data (sorted by EVES speedup)."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    runner.run_config("eves", eves_config())
    runner.run_config("constable", constable_config())
    runner.run_config("eves+constable", eves_constable_config())
    eves = runner.speedups("eves")
    constable = runner.speedups("constable")
    combined = runner.speedups("eves+constable")
    order = sorted(eves, key=lambda name: eves[name])
    rows = [(name, f"{eves[name]:.3f}", f"{constable[name]:.3f}", f"{combined[name]:.3f}")
            for name in order]
    constable_wins = sum(1 for name in order if constable[name] > eves[name])
    result = {
        "workloads": order,
        "eves": [eves[n] for n in order],
        "constable": [constable[n] for n in order],
        "eves+constable": [combined[n] for n in order],
        "constable_wins": constable_wins,
        "total_workloads": len(order),
        "text": format_table(["workload", "eves", "constable", "eves+constable"], rows,
                             title="Fig. 12: per-workload speedups (sorted by EVES)"),
    }
    return result


# ======================================================================= Fig 13

def fig13_load_categories(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 13: Constable restricted to PC-/stack-/register-relative loads."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    categories = {
        "pc_relative_only": frozenset({AddressingMode.PC_RELATIVE}),
        "stack_relative_only": frozenset({AddressingMode.STACK_RELATIVE}),
        "register_relative_only": frozenset({AddressingMode.REG_RELATIVE}),
    }
    geomeans: Dict[str, float] = {}
    for name, modes in categories.items():
        runner.run_config(
            name, constable_config(
                constable=constable_engine_config(eliminate_addressing_modes=modes)))
        geomeans[name] = runner.geomean_speedup(name)
    runner.run_config("all_loads", constable_config())
    geomeans["all_loads"] = runner.geomean_speedup("all_loads")
    rows = [(name, f"{value:.3f}") for name, value in geomeans.items()]
    return {"geomean_speedups": geomeans,
            "text": format_table(["category", "speedup"], rows,
                                 title="Fig. 13: speedup by eliminated load category")}


# ======================================================================= Fig 14

def fig14_speedup_smt2(runner: Optional[ExperimentRunner] = None,
                       max_pairs: Optional[int] = 4) -> Dict[str, object]:
    """Fig. 14: SMT2 speedups of EVES, Constable and EVES+Constable."""
    runner = runner or default_runner()
    baseline = runner.run_smt_config("baseline", baseline_config(), max_pairs=max_pairs)
    configs = {
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    }
    geomeans: Dict[str, float] = {}
    per_pair: Dict[str, Dict[str, float]] = {}
    for name, config in configs.items():
        results = runner.run_smt_config(name, config, max_pairs=max_pairs)
        speedups = []
        for pair, result in results.items():
            # Degenerate tiny-trace pairs can retire in zero cycles; skip them
            # rather than dividing by zero or feeding the geomean a zero.
            if baseline[pair].cycles <= 0 or result.cycles <= 0:
                continue
            speedup = baseline[pair].cycles / result.cycles
            speedups.append(speedup)
            per_pair.setdefault("+".join(pair), {})[name] = speedup
        geomeans[name] = filtered_geomean(speedups)
    rows = [(name, f"{value:.3f}") for name, value in geomeans.items()]
    return {"geomean_speedups": geomeans, "per_pair": per_pair,
            "text": format_table(["config", "SMT2 speedup"], rows,
                                 title="Fig. 14: speedup over baseline (SMT2)")}


# ======================================================================= Fig 15

def fig15_prior_works(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 15: ELAR and RFP compared with (and combined with) Constable."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    configs = {
        "elar": elar_config(),
        "rfp": rfp_config(),
        "constable": constable_config(),
        "elar+constable": elar_constable_config(),
        "rfp+constable": rfp_constable_config(),
    }
    geomeans = {}
    for name, config in configs.items():
        runner.run_config(name, config)
        geomeans[name] = runner.geomean_speedup(name)
    rows = [(name, f"{value:.3f}") for name, value in geomeans.items()]
    return {"geomean_speedups": geomeans,
            "text": format_table(["config", "speedup"], rows,
                                 title="Fig. 15: Constable vs ELAR and RFP")}


# ======================================================================= Fig 16

def fig16_coverage(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 16: load coverage of EVES, Constable and their combination."""
    runner = runner or default_runner()
    eves = runner.run_config("eves", eves_config())
    constable = runner.run_config("constable", constable_config())
    combined = runner.run_config("eves+constable", eves_constable_config())
    ideal = runner.run_config("eves+ideal_constable",
                              _ideal_builder(IdealMode.CONSTABLE, lvp="eves"))

    def _coverage(result, include_lvp: bool, include_constable: bool) -> float:
        loads = max(1, result.stats.loads_renamed)
        covered = 0
        if include_constable and result.constable_stats is not None:
            covered += result.constable_stats.get("loads_eliminated", 0)
        if include_constable and result.stats.eliminated_loads_retired and result.constable_stats is None:
            covered += result.stats.eliminated_loads_retired
        if include_lvp:
            covered += result.stats.value_predicted_loads
        return covered / loads

    coverages = {
        "eves": sum(_coverage(r, True, False) for r in eves.values()) / len(eves),
        "constable": sum(_coverage(r, False, True) for r in constable.values()) / len(constable),
        "eves+constable": sum(_coverage(r, True, True) for r in combined.values()) / len(combined),
        "eves+ideal_constable": sum(
            (r.stats.eliminated_loads_retired + r.stats.value_predicted_loads)
            / max(1, r.stats.loads_renamed) for r in ideal.values()) / len(ideal),
    }
    rows = [(name, f"{value * 100:.1f}%") for name, value in coverages.items()]
    return {"coverage": coverages,
            "text": format_table(["config", "load coverage"], rows,
                                 title="Fig. 16: fraction of loads covered")}


# ======================================================================= Fig 17

def fig17_stable_breakdown(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 17: how many global-stable loads Constable actually eliminates."""
    runner = runner or default_runner()
    results = runner.run_config("constable", constable_config())
    eliminated_stable = 0
    eliminated_other = 0
    stable_total = 0
    for name, result in results.items():
        eliminated_stable += result.stats.eliminated_oracle_stable_loads
        eliminated_other += result.stats.eliminated_non_stable_loads
        stable_total += result.stats.oracle_stable_loads_renamed
    stable_total = max(1, stable_total)
    breakdown = {
        "global_stable_and_eliminated": eliminated_stable / stable_total,
        "global_stable_not_eliminated": 1.0 - eliminated_stable / stable_total,
        "not_global_stable_but_eliminated": eliminated_other / stable_total,
    }
    rows = [(name, f"{value * 100:.1f}%") for name, value in breakdown.items()]
    return {"breakdown": breakdown,
            "text": format_table(["category", "fraction of global-stable loads"], rows,
                                 title="Fig. 17: runtime coverage of global-stable loads")}


# ======================================================================= Fig 18

def fig18_resource_utilisation(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 18: reduction in RS allocations and L1-D accesses with Constable."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    runner.run_config("constable", constable_config())
    rs_ratio = runner.metric_ratio(
        "constable", lambda r: r.resource_stats.get("rs_allocations", 0))
    l1_ratio = runner.metric_ratio(
        "constable", lambda r: r.power_events.get("l1d_accesses", 0))
    rs_reduction = [1.0 - value for value in rs_ratio.values()]
    l1_reduction = [1.0 - value for value in l1_ratio.values()]
    result = {
        "rs_allocation_reduction": box_whisker_summary(rs_reduction),
        "l1d_access_reduction": box_whisker_summary(l1_reduction),
    }
    result["text"] = format_table(
        ["metric", "mean", "median", "max"],
        [("RS allocation reduction",
          f"{result['rs_allocation_reduction']['mean'] * 100:.1f}%",
          f"{result['rs_allocation_reduction']['median'] * 100:.1f}%",
          f"{result['rs_allocation_reduction']['max'] * 100:.1f}%"),
         ("L1-D access reduction",
          f"{result['l1d_access_reduction']['mean'] * 100:.1f}%",
          f"{result['l1d_access_reduction']['median'] * 100:.1f}%",
          f"{result['l1d_access_reduction']['max'] * 100:.1f}%")],
        title="Fig. 18: pipeline resource utilisation reduction")
    return result


# ======================================================================= Fig 19

def fig19_power(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 19: core dynamic power of EVES, Constable and EVES+Constable vs baseline."""
    runner = runner or default_runner()
    model = CorePowerModel()
    config_names = ["baseline", "eves", "constable", "eves+constable"]
    runner.run_config("baseline", baseline_config())
    runner.run_config("eves", eves_config())
    runner.run_config("constable", constable_config())
    runner.run_config("eves+constable", eves_constable_config())

    totals: Dict[str, float] = {name: 0.0 for name in config_names}
    sub_units: Dict[str, Dict[str, float]] = {name: {} for name in config_names}
    units: Dict[str, Dict[str, float]] = {name: {} for name in config_names}
    for run in runner.workloads().values():
        for name in config_names:
            breakdown = model.evaluate(run.results[name].power_events)
            totals[name] += breakdown.total
            for unit, value in breakdown.units.items():
                units[name][unit] = units[name].get(unit, 0.0) + value
            for unit, value in breakdown.sub_units.items():
                sub_units[name][unit] = sub_units[name].get(unit, 0.0) + value

    baseline_total = totals["baseline"] or 1.0
    relative = {name: totals[name] / baseline_total for name in config_names}
    rs_delta = {name: sub_units[name].get("RS", 0.0) / (sub_units["baseline"].get("RS", 1.0) or 1.0)
                for name in config_names}
    l1_delta = {name: sub_units[name].get("L1D", 0.0) / (sub_units["baseline"].get("L1D", 1.0) or 1.0)
                for name in config_names}
    rows = [(name, f"{relative[name]:.3f}", f"{rs_delta[name]:.3f}", f"{l1_delta[name]:.3f}")
            for name in config_names]
    return {
        "relative_core_power": relative,
        "relative_rs_power": rs_delta,
        "relative_l1d_power": l1_delta,
        "unit_breakdown": units,
        "text": format_table(["config", "core power", "RS power", "L1-D power"], rows,
                             title="Fig. 19: dynamic power relative to baseline"),
    }


# ======================================================================= Fig 20

def fig20_sensitivity(runner: Optional[ExperimentRunner] = None,
                      load_widths: Sequence[int] = (3, 4, 5, 6),
                      depth_scales: Sequence[float] = (1.0, 2.0, 4.0)) -> Dict[str, object]:
    """Fig. 20: sensitivity to load execution width and pipeline depth."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    width_results: Dict[int, Dict[str, float]] = {}
    for width in load_widths:
        base_name = f"baseline_w{width}"
        cons_name = f"constable_w{width}"
        runner.run_config(base_name, baseline_config().with_load_width(width))
        runner.run_config(cons_name, constable_config().with_load_width(width))
        width_results[width] = {
            "baseline": runner.geomean_speedup(base_name),
            "constable": runner.geomean_speedup(cons_name),
        }
    depth_results: Dict[float, Dict[str, float]] = {}
    for scale in depth_scales:
        base_name = f"baseline_d{scale}"
        cons_name = f"constable_d{scale}"
        runner.run_config(base_name, baseline_config().with_depth_scale(scale))
        runner.run_config(cons_name, constable_config().with_depth_scale(scale))
        depth_results[scale] = {
            "baseline": runner.geomean_speedup(base_name),
            "constable": runner.geomean_speedup(cons_name),
        }
    rows = [(f"load width {w}", f"{v['baseline']:.3f}", f"{v['constable']:.3f}")
            for w, v in width_results.items()]
    rows += [(f"depth x{s}", f"{v['baseline']:.3f}", f"{v['constable']:.3f}")
             for s, v in depth_results.items()]
    return {"load_width": width_results, "pipeline_depth": depth_results,
            "text": format_table(["sweep point", "baseline", "constable"], rows,
                                 title="Fig. 20: sensitivity to load width and pipeline depth")}


# ======================================================================= Fig 21

def fig21_ordering_violations(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 21: memory-ordering violations by eliminated loads and ROB allocation increase."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    results = runner.run_config("constable", constable_config())
    violation_fractions = []
    for result in results.values():
        eliminated = max(1, int((result.constable_stats or {}).get("loads_eliminated", 0)))
        violations = int((result.constable_stats or {}).get("ordering_violations", 0))
        violation_fractions.append(violations / eliminated)
    rob_ratio = runner.metric_ratio(
        "constable", lambda r: r.resource_stats.get("rob_allocations", 0))
    rob_increase = [value - 1.0 for value in rob_ratio.values()]
    result = {
        "violation_fraction": box_whisker_summary(violation_fractions),
        "rob_allocation_increase": box_whisker_summary(rob_increase),
    }
    result["text"] = format_table(
        ["metric", "mean", "max"],
        [("eliminated loads violating ordering",
          f"{result['violation_fraction']['mean'] * 100:.3f}%",
          f"{result['violation_fraction']['max'] * 100:.3f}%"),
         ("increase in allocated instructions",
          f"{result['rob_allocation_increase']['mean'] * 100:.2f}%",
          f"{result['rob_allocation_increase']['max'] * 100:.2f}%")],
        title="Fig. 21: cost of eliminated-load memory-ordering violations")
    return result


# ======================================================================= Fig 22

def fig22_amt_invalidation(runner: Optional[ExperimentRunner] = None) -> Dict[str, object]:
    """Fig. 22: CV-bit pinning vs invalidating AMT entries on every L1 eviction."""
    runner = runner or default_runner()
    runner.run_config("baseline", baseline_config())
    vanilla = runner.run_config("constable", constable_config())
    amt_i = runner.run_config(
        "constable_amt_i",
        constable_config(constable=constable_engine_config(
            amt_invalidate_on_l1_eviction=True, pin_cv_bits=False)))
    speedup_vanilla = runner.geomean_speedup("constable")
    speedup_amt_i = runner.geomean_speedup("constable_amt_i")

    def _avg_coverage(results) -> float:
        values = [(r.constable_stats or {}).get("elimination_coverage", 0.0)
                  for r in results.values()]
        return sum(values) / len(values) if values else 0.0

    result = {
        "speedup": {"constable": speedup_vanilla, "constable_amt_i": speedup_amt_i},
        "coverage": {"constable": _avg_coverage(vanilla),
                     "constable_amt_i": _avg_coverage(amt_i)},
    }
    rows = [("constable (CV-bit pinning)", f"{speedup_vanilla:.3f}",
             f"{result['coverage']['constable'] * 100:.1f}%"),
            ("constable-AMT-I (invalidate on eviction)", f"{speedup_amt_i:.3f}",
             f"{result['coverage']['constable_amt_i'] * 100:.1f}%")]
    result["text"] = format_table(["variant", "speedup", "coverage"], rows,
                                  title="Fig. 22: CV-bit pinning vs AMT invalidation")
    return result


# =================================================================== Fig 23 / 24

def fig23_fig24_apx_study(per_suite: int = 2, instructions: int = 6000) -> Dict[str, object]:
    """Figs. 23-24: effect of doubling the architectural registers (APX) on
    dynamic load count, global-stable fraction and addressing-mode mix."""
    base_runner = ExperimentRunner(per_suite=per_suite, instructions=instructions,
                                   num_registers=16)
    apx_runner = ExperimentRunner(per_suite=per_suite, instructions=instructions,
                                  num_registers=32)
    load_reduction = []
    fraction_16 = []
    fraction_32 = []
    modes_16: Dict[str, List[float]] = {}
    modes_32: Dict[str, List[float]] = {}
    apx_workloads = apx_runner.workloads()
    for name, run in base_runner.workloads().items():
        apx_run = apx_workloads[name]
        base_loads = run.report.total_dynamic_loads()
        apx_loads = apx_run.report.total_dynamic_loads()
        if base_loads:
            load_reduction.append(1.0 - apx_loads / base_loads)
        fraction_16.append(run.report.global_stable_dynamic_fraction())
        fraction_32.append(apx_run.report.global_stable_dynamic_fraction())
        for mode, value in run.report.addressing_mode_breakdown().items():
            modes_16.setdefault(mode, []).append(value)
        for mode, value in apx_run.report.addressing_mode_breakdown().items():
            modes_32.setdefault(mode, []).append(value)

    def _avg(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    result = {
        "dynamic_load_reduction_with_apx": _avg(load_reduction),
        "global_stable_fraction": {"16_registers": _avg(fraction_16),
                                   "32_registers": _avg(fraction_32)},
        "addressing_mode_breakdown": {
            "16_registers": {mode: _avg(values) for mode, values in modes_16.items()},
            "32_registers": {mode: _avg(values) for mode, values in modes_32.items()},
        },
    }
    rows = [
        ("dynamic loads removed by APX", f"{result['dynamic_load_reduction_with_apx'] * 100:.1f}%"),
        ("global-stable fraction (16 regs)",
         f"{result['global_stable_fraction']['16_registers'] * 100:.1f}%"),
        ("global-stable fraction (32 regs)",
         f"{result['global_stable_fraction']['32_registers'] * 100:.1f}%"),
        ("stack-relative share (16 regs)",
         f"{result['addressing_mode_breakdown']['16_registers'].get('stack', 0) * 100:.1f}%"),
        ("stack-relative share (32 regs)",
         f"{result['addressing_mode_breakdown']['32_registers'].get('stack', 0) * 100:.1f}%"),
    ]
    result["text"] = format_table(["metric", "value"], rows,
                                  title="Figs. 23-24: APX (32 architectural registers) study")
    return result


# ======================================================================= Tables

def table1_storage_overhead() -> Dict[str, object]:
    """Table 1: per-structure storage overhead of Constable."""
    report = storage_overhead_report(ConstableConfig())
    rows = [(name.upper(), f"{kb:.2f} KB") for name, kb in report.items()]
    return {"storage_kb": report,
            "text": format_table(["structure", "storage"], rows,
                                 title="Table 1: Constable storage overhead")}


def table3_energy_estimates(use_calibrated: bool = True) -> Dict[str, object]:
    """Table 3: access energy, leakage and area of Constable's structures."""
    estimates = constable_structure_estimates(use_calibrated=use_calibrated)
    rows = [(est.name, f"{est.size_kb:.1f} KB", f"{est.read_energy_pj:.2f}",
             f"{est.write_energy_pj:.2f}", f"{est.leakage_mw:.2f}", f"{est.area_mm2:.3f}")
            for est in estimates.values()]
    return {"estimates": {key: vars(est) if not hasattr(est, "__dict__") else {
                field: getattr(est, field) for field in
                ("name", "size_kb", "read_ports", "write_ports", "read_energy_pj",
                 "write_energy_pj", "leakage_mw", "area_mm2")}
            for key, est in estimates.items()},
            "text": format_table(
                ["structure", "size", "read pJ", "write pJ", "leakage mW", "area mm2"], rows,
                title="Table 3: Constable structure energy/area estimates")}


def warehouse_speedup_summary(cache_dir: Optional[str] = None
                              ) -> Dict[str, object]:
    """Cross-sweep geomean speedups straight from the columnar warehouse.

    Unlike the per-figure harnesses this aggregates *every* cached sweep in
    the directory at once — exactly the cross-sweep analytics the warehouse
    exists for.  With warehouse files present the read is tabular-only (zero
    object-store decodes); a pre-warehouse cache falls back to the full
    object-store scan, so the harness works either way.  Addressable as
    ``repro figures warehouse``; the cache directory resolves like every
    other command (``REPRO_CACHE_DIR``, then ``.repro-cache``).
    """
    directory = (cache_dir or os.environ.get(CACHE_DIR_ENV)
                 or DEFAULT_CACHE_DIR)
    rows = load_rows(directory, SCHEMA_VERSION)
    tabular = warehouse_present(directory)
    summary = speedup_summary(rows, group_by="suite")
    suites = sorted({group for block in summary.values()
                     for group in block} - {"GEOMEAN"})
    table_rows = [[config] + [f"{block[s]:.4f}" if s in block else "-"
                              for s in suites + ["GEOMEAN"]]
                  for config, block in sorted(summary.items())]
    source = "warehouse" if tabular else "object store (no warehouse)"
    return {"rows": len(rows), "tabular": tabular, "speedups": summary,
            "text": format_table(["config"] + suites + ["GEOMEAN"], table_rows,
                                 title=f"cross-sweep speedups [{source}]")}


# ============================================================ registries (CLI)

#: Every figure harness that consumes a shared :class:`ExperimentRunner`,
#: addressable by name from ``repro figures``; ``all`` expands to this set.
FIGURE_HARNESSES: Dict[str, Callable[..., Dict[str, object]]] = {
    "fig3": fig3_global_stable_characterisation,
    "fig6": fig6_load_port_utilisation,
    "fig7": fig7_headroom,
    "fig9": fig9_sld_updates,
    "fig11": fig11_speedup_nosmt,
    "fig12": fig12_per_workload,
    "fig13": fig13_load_categories,
    "fig14": fig14_speedup_smt2,
    "fig15": fig15_prior_works,
    "fig16": fig16_coverage,
    "fig17": fig17_stable_breakdown,
    "fig18": fig18_resource_utilisation,
    "fig19": fig19_power,
    "fig20": fig20_sensitivity,
    "fig21": fig21_ordering_violations,
    "fig22": fig22_amt_invalidation,
}

#: Harnesses that build their own reduced runners (or none at all); they are
#: addressable by name but excluded from ``all`` and from warm-cache checks.
STANDALONE_HARNESSES: Dict[str, Callable[[], Dict[str, object]]] = {
    "fig23": fig23_fig24_apx_study,
    "table1": table1_storage_overhead,
    "table3": table3_energy_estimates,
    "warehouse": warehouse_speedup_summary,
}


def sweep_configs() -> Dict[str, ConfigLike]:
    """The single-thread configurations ``repro sweep`` runs by default.

    Covers every configuration the main-result harnesses (figs. 11, 12, 15
    and 16) consume, so a sweep warmed into a cache directory lets those
    figures regenerate without a single simulation.
    """
    return {
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
        "eves+ideal_constable": _ideal_builder(IdealMode.CONSTABLE, lvp="eves"),
        "elar": elar_config(),
        "rfp": rfp_config(),
        "elar+constable": elar_constable_config(),
        "rfp+constable": rfp_constable_config(),
    }


def sweep_smt_configs() -> Dict[str, ConfigLike]:
    """The SMT2 configurations ``repro sweep`` runs by default (fig. 14's set)."""
    return {
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    }


def sensitivity_sweep_configs(load_widths: Sequence[int] = (3, 4, 5, 6),
                              depth_scales: Sequence[float] = (1.0, 2.0, 4.0)
                              ) -> Dict[str, ConfigLike]:
    """The sensitivity-sweep configuration families (figs. 13 and 20).

    Covers every configuration :func:`fig13_load_categories` and
    :func:`fig20_sensitivity` consume — the addressing-mode-restricted
    Constable variants, and the load-width / pipeline-depth grids — under the
    exact names and contents those harnesses use, so ``repro sweep --families
    sensitivity`` warmed into a shared cache directory lets both figures
    regenerate without a single simulation.  ``baseline`` is included because
    every speedup in those figures is computed against it.
    """
    configs: Dict[str, ConfigLike] = {"baseline": baseline_config()}
    categories = {
        "pc_relative_only": frozenset({AddressingMode.PC_RELATIVE}),
        "stack_relative_only": frozenset({AddressingMode.STACK_RELATIVE}),
        "register_relative_only": frozenset({AddressingMode.REG_RELATIVE}),
    }
    for name, modes in categories.items():
        configs[name] = constable_config(
            constable=constable_engine_config(eliminate_addressing_modes=modes))
    configs["all_loads"] = constable_config()
    for width in load_widths:
        configs[f"baseline_w{width}"] = baseline_config().with_load_width(width)
        configs[f"constable_w{width}"] = constable_config().with_load_width(width)
    for scale in depth_scales:
        configs[f"baseline_d{scale}"] = baseline_config().with_depth_scale(scale)
        configs[f"constable_d{scale}"] = constable_config().with_depth_scale(scale)
    return configs


#: Named single-thread sweep families ``repro sweep --families`` selects from:
#: ``main`` feeds the headline-result harnesses (figs. 11/12/15/16), and
#: ``sensitivity`` feeds the fig. 13/20 sweeps.  Families may overlap (both
#: contain ``baseline``) with identical contents, so merging them is safe.
SWEEP_FAMILIES: Dict[str, Callable[[], Dict[str, ConfigLike]]] = {
    "main": sweep_configs,
    "sensitivity": sensitivity_sweep_configs,
}
