"""Cross-figure sweep orchestration with global job dedup.

The paper's evaluation is ~20 figures whose configuration sweeps overlap
heavily: figs. 11, 12, 14, 16 and 17 all re-simulate the same
baseline/constable configurations, fig. 20's ``baseline_w3``/``baseline_d1.0``
grid points are content-identical to the plain baseline, and fig. 13's
``all_loads`` is the plain Constable configuration under another name.  Run
back-to-back (``repro figures all``), each harness re-plans those shared
``(config, workload)`` jobs and every ``run_config`` call is its own barrier,
so the worker pool drains between harnesses and between configurations.

:class:`SweepOrchestrator` removes both costs while staying bit-identical to
the serial per-figure path:

1. **Collect** — every requested figure declares its configuration demand as a
   :class:`FigurePlan` (the :data:`FIGURE_PLANS` registry mirrors each harness
   in :mod:`repro.experiments.figures`; a consistency test pins the two
   against each other).  The orchestrator merges the plans and materialises
   jobs through the runner's existing planning hooks
   (:meth:`~repro.experiments.runner.ExperimentRunner.plan_jobs` /
   :meth:`~repro.experiments.runner.ExperimentRunner.plan_smt_jobs`).
2. **Dedup** — planned jobs are grouped by *content* fingerprint (the same
   material the on-disk cache keys hash: the fully materialised
   :class:`~repro.pipeline.config.CoreConfig`, the workload spec and the trace
   parameters), so two figures demanding the same simulation under different
   names share one job.  Each group consults the on-disk cache once.
3. **Execute** — every outstanding representative job, single-thread and SMT
   alike, goes through the runner's
   :meth:`~repro.experiments.runner.ExperimentRunner._execute_wave` hook as
   **one** batch: the parallel runner submits them all to one process pool up
   front and awaits once, so the pool never drains between harnesses.
4. **Commit** — each group's single result is committed under *every*
   ``(config name, workload)`` alias that demanded it, through the exact
   in-memory stores the serial ``run_config``/``run_smt_config`` pipeline
   commits to.  Running the figure harnesses afterwards finds everything
   already committed and performs **zero** simulations, so their outputs are
   bit-identical to the serial per-figure path by construction (pinned
   differentially at 1/2/4 workers in ``tests/test_orchestrator.py``).

Results are pure functions of ``(config, trace)``, which is what makes the
aliasing sound: committing one result object under several names is
observationally identical to simulating the same inputs once per name.

The :class:`DedupStats` record (``planned`` figure demand, ``unique`` after
dedup, ``cache_warm`` served from disk, ``executed`` actually simulated) is
surfaced by ``repro figures``/``repro sweep`` and recorded by ``repro bench
--orchestrator`` reports.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.ideal import IdealMode
from repro.experiments.cache import config_fingerprint, persist_dedup_stats
from repro.experiments.configs import (
    baseline_config,
    constable_config,
    constable_engine_config,
    elar_config,
    elar_constable_config,
    eves_config,
    eves_constable_config,
    rfp_config,
    rfp_constable_config,
)
from repro.experiments.runner import (
    ConfigLike,
    ExperimentRunner,
    Shard,
    SimulationJob,
    SmtJob,
    SweepExecutionError,
)
from repro.isa.instruction import AddressingMode
from repro.pipeline.smt import SmtResult
from repro.pipeline.stats import SimulationResult


@dataclass(frozen=True)
class FigurePlan:
    """One figure harness's declared configuration demand.

    ``configs`` maps the exact configuration names the harness passes to
    ``run_config`` to equivalent :data:`ConfigLike` values; ``smt_configs``
    does the same for ``run_smt_config`` with ``smt_max_pairs`` as the
    harness's pair budget (None = the full pair list).  A harness that only
    consumes workload traces and Load Inspector reports (fig. 3) declares an
    empty plan — the orchestrator still generates its workloads.
    """

    figure: str
    configs: Mapping[str, ConfigLike] = field(default_factory=dict)
    smt_configs: Mapping[str, ConfigLike] = field(default_factory=dict)
    smt_max_pairs: Optional[int] = None


@dataclass
class DedupStats:
    """Cross-figure job-dedup accounting for one orchestrated wave.

    ``planned`` counts figure demand before any sharing — what serial
    per-figure execution with per-figure runners and a cold cache would
    simulate.  ``unique`` is the job count after merging identical names and
    grouping by content fingerprint; ``cache_warm`` of those came from the
    on-disk cache and ``executed`` were actually simulated in the wave.
    ``cold_jobs`` names each executed job (``config/workload`` or
    ``smt:config/first+second``) so an ``--expect-warm`` violation can say
    exactly *which* jobs ran cold instead of just how many.
    """

    figures: List[str] = field(default_factory=list)
    planned: int = 0
    unique: int = 0
    cache_warm: int = 0
    executed: int = 0
    cold_jobs: List[str] = field(default_factory=list)

    @property
    def deduped(self) -> int:
        """How many planned jobs were satisfied by sharing another job's result."""
        return self.planned - self.unique

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable form (embedded in bench reports)."""
        return {
            "figures": list(self.figures),
            "planned": self.planned,
            "unique": self.unique,
            "deduped": self.deduped,
            "cache_warm": self.cache_warm,
            "executed": self.executed,
            "cold_jobs": list(self.cold_jobs),
        }


def _relabelled(result: SimulationResult, config_name: str) -> SimulationResult:
    """The result as ``config_name`` sees it.

    A deduped group commits one simulation under several alias names; shallow
    relabelling keeps each alias's ``result.config_name`` (and ``summary()``)
    telling the truth, exactly as if the serial path had simulated under that
    name.  Everything else is shared — results are immutable downstream.
    """
    if result.config_name == config_name:
        return result
    return dataclasses.replace(result, config_name=config_name)


def _relabelled_smt(result: SmtResult, config_name: str) -> SmtResult:
    """SMT counterpart of :func:`_relabelled` (the label lives one level down)."""
    if result.result.config_name == config_name:
        return result
    return dataclasses.replace(
        result, result=_relabelled(result.result, config_name))


def _fingerprint_text(job_config) -> str:
    """A deterministic text form of a materialised config's fingerprint."""
    return json.dumps(config_fingerprint(job_config), sort_keys=True,
                      separators=(",", ":"))


def _sim_identity(job: SimulationJob) -> str:
    """The content identity of a single-thread job (cache key when available).

    Falls back to the same material the cache key hashes — the materialised
    config fingerprint plus the workload — so dedup behaves identically with
    and without an attached on-disk cache.
    """
    if job.cache_key is not None:
        return job.cache_key
    return f"sim:{job.workload}:{_fingerprint_text(job.config)}"


def _smt_identity(job: SmtJob) -> str:
    """The content identity of an SMT2 job (cache key when available)."""
    if job.cache_key is not None:
        return f"smt:{job.cache_key}"
    return (f"smt:{job.pair[0]}+{job.pair[1]}@{job.second_base_pc}:"
            f"{_fingerprint_text(job.config)}")


class SweepOrchestrator:
    """Plans, dedups and executes many figures' sweeps as one wave.

    The orchestrator owns no execution machinery of its own: planning goes
    through the runner's ``plan_jobs``/``plan_smt_jobs`` hooks, execution
    through its ``_execute_wave`` hook and commits through the same in-memory
    stores the serial pipeline uses, so serial and parallel runners (and any
    future runner subclass) orchestrate without modification.
    """

    def __init__(self, runner: ExperimentRunner):
        self.runner = runner
        #: Stats of the most recent :meth:`execute` call.
        self.stats: Optional[DedupStats] = None

    # ---------------------------------------------------------------- planning

    def _merge_plans(self, plans: Sequence[FigurePlan], shard: Optional[Shard]
                     ) -> Tuple[Dict[str, ConfigLike],
                                Dict[str, Tuple[ConfigLike, Optional[int], bool]],
                                DedupStats]:
        """Merge per-figure demand into unique config names + demand stats.

        SMT budgets merge to the *loosest* request per config name: ``None``
        (the full pair list) beats any bound, otherwise the maximum bound
        wins, so every figure finds at least the pairs it asked for.

        Two plans reusing one config *name* must mean the same config
        *content* — otherwise committing a shared result under the merged
        name would silently hand one figure another figure's data — so every
        collision is checked by content fingerprint and a mismatch raises.
        """
        runner = self.runner
        stats = DedupStats(figures=[plan.figure for plan in plans])
        workload_names = list(runner.workloads())
        if shard is not None:
            workload_names = shard.select(workload_names)
        fingerprints: Dict[str, str] = {}

        def _content(config: ConfigLike) -> str:
            # Materialise against *every* workload: builder configs may
            # coincide on one trace yet diverge on another, and a collision
            # must mean identity everywhere for the merge to be sound.
            return "\n".join(
                _fingerprint_text(runner._materialise_config(config, run))
                for run in runner.workloads().values())

        def _check_collision(kind: str, name: str, existing: ConfigLike,
                             config: ConfigLike, figure: str) -> None:
            key = f"{kind}:{name}"
            if key not in fingerprints:
                fingerprints[key] = _content(existing)
            if _content(config) != fingerprints[key]:
                raise ValueError(
                    f"figure plans disagree on the contents of {kind} config "
                    f"{name!r} (while merging {figure!r}); rename one of "
                    f"them — a shared name must mean one configuration")

        merged: Dict[str, ConfigLike] = {}
        merged_smt: Dict[str, Tuple[ConfigLike, Optional[int], bool]] = {}
        for plan in plans:
            stats.planned += len(plan.configs) * len(workload_names)
            for name, config in plan.configs.items():
                if name in merged:
                    _check_collision("single-thread", name, merged[name],
                                     config, plan.figure)
                else:
                    merged[name] = config
            if plan.smt_configs:
                pairs = runner.smt_pairs(plan.smt_max_pairs)
                if shard is not None:
                    owned = set(shard.select(pairs))
                    pairs = [pair for pair in pairs if pair in owned]
                stats.planned += len(plan.smt_configs) * len(pairs)
                for name, config in plan.smt_configs.items():
                    previous = merged_smt.get(name)
                    if previous is None:
                        merged_smt[name] = (config, plan.smt_max_pairs,
                                            plan.smt_max_pairs is None)
                    else:
                        _check_collision("SMT", name, previous[0], config,
                                         plan.figure)
                        _, bound, unbounded = previous
                        unbounded = unbounded or plan.smt_max_pairs is None
                        if not unbounded:
                            bound = max(bound, plan.smt_max_pairs)
                        merged_smt[name] = (previous[0], bound, unbounded)
        return merged, merged_smt, stats

    # --------------------------------------------------------------- execution

    def _journal_partial_wave(self, error: SweepExecutionError,
                              outstanding_sim: Sequence[Tuple[str, SimulationJob]],
                              outstanding_smt: Sequence[Tuple[str, SmtJob]]
                              ) -> None:
        """Best-effort cache journal of a failed wave's completed jobs.

        The puts below also append each journaled entry's columnar warehouse
        row (inside ``cache.put``/``put_smt``), so after a chaos-faulted wave
        the warehouse lists exactly the journaled jobs — which is what lets
        ``repro warehouse verify`` assert journal agreement before and after
        a ``--resume``.
        """
        runner = self.runner
        if runner.cache is None or not isinstance(error.partial, tuple):
            return
        partial_sim, partial_smt = error.partial
        for _, job in outstanding_sim:
            result = partial_sim.get((job.config_name, job.workload))
            if result is not None and job.cache_key is not None:
                try:
                    runner.cache.put(job.cache_key, result)
                except OSError:
                    pass
        for _, job in outstanding_smt:
            result = partial_smt.get((job.config_name, job.pair))
            if result is not None and job.cache_key is not None:
                try:
                    runner.cache.put_smt(job.cache_key, result)
                except OSError:
                    pass

    def execute(self, plans: Sequence[FigurePlan],
                shard: Optional[Shard] = None) -> DedupStats:
        """Run every plan's outstanding jobs as one deduped wave and commit.

        After this returns, every ``(config name, workload)`` and
        ``(config name, pair)`` the plans demanded is committed in the
        runner's stores, so running the corresponding figure harnesses
        performs zero simulations.  The commit is atomic in the same sense as
        ``run_config``: a failure anywhere in the wave leaves every store
        untouched.
        """
        runner = self.runner
        merged, merged_smt, stats = self._merge_plans(plans, shard)
        selected: Optional[List[str]] = None
        if shard is not None:
            selected = shard.select(list(runner.workloads()))

        # Plan per unique config name, then group planned jobs by content.
        sim_groups: Dict[str, List[SimulationJob]] = {}
        for name, config in merged.items():
            for job in runner.plan_jobs(name, config, workload_names=selected):
                sim_groups.setdefault(_sim_identity(job), []).append(job)
        smt_groups: Dict[str, List[SmtJob]] = {}
        for name, (config, bound, unbounded) in merged_smt.items():
            max_pairs = None if unbounded else bound
            pairs = runner.smt_pairs(max_pairs)
            if shard is not None:
                owned = set(shard.select(pairs))
                pairs = [pair for pair in pairs if pair in owned]
            owned_pairs = set(pairs)
            for job in runner.plan_smt_jobs(name, config, max_pairs):
                if job.pair not in owned_pairs:
                    continue
                smt_groups.setdefault(_smt_identity(job), []).append(job)
        stats.unique = len(sim_groups) + len(smt_groups)

        # Stage each group's representative from the on-disk cache once.
        staged_sim: Dict[str, SimulationResult] = {}
        outstanding_sim: List[Tuple[str, SimulationJob]] = []
        for identity, group in sim_groups.items():
            representative = group[0]
            cached = (runner.cache.get(representative.cache_key)
                      if representative.cache_key is not None else None)
            if cached is not None:
                staged_sim[identity] = cached
            else:
                outstanding_sim.append((identity, representative))
        staged_smt: Dict[str, SmtResult] = {}
        outstanding_smt: List[Tuple[str, SmtJob]] = []
        for identity, group in smt_groups.items():
            representative = group[0]
            cached = (runner.cache.get_smt(representative.cache_key)
                      if representative.cache_key is not None else None)
            if cached is not None:
                staged_smt[identity] = cached
            else:
                outstanding_smt.append((identity, representative))
        stats.cache_warm = len(staged_sim) + len(staged_smt)
        stats.executed = len(outstanding_sim) + len(outstanding_smt)
        stats.cold_jobs = (
            [f"{job.config_name}/{job.workload}" for _, job in outstanding_sim]
            + [f"smt:{job.config_name}/{'+'.join(job.pair)}"
               for _, job in outstanding_smt])

        # One continuously fed wave over every outstanding representative.
        try:
            sim_results, smt_results = runner._execute_wave(
                [job for _, job in outstanding_sim],
                [job for _, job in outstanding_smt])
        except SweepExecutionError as error:
            # Partial-wave commit: journal the failed wave's successes to the
            # on-disk cache (never the in-memory stores — the atomic-commit
            # contract of `execute` holds), so the content-addressed cache
            # doubles as the resume journal and a rerun (`repro sweep
            # --resume`) stages them warm and executes only the missing jobs.
            self._journal_partial_wave(error, outstanding_sim, outstanding_smt)
            raise
        missing: List[str] = []
        for identity, job in outstanding_sim:
            result = sim_results.get((job.config_name, job.workload))
            if result is None:
                missing.append(f"{job.config_name}/{job.workload}")
            else:
                staged_sim[identity] = result
        for identity, job in outstanding_smt:
            result = smt_results.get((job.config_name, job.pair))
            if result is None:
                missing.append(f"smt:{job.config_name}/{'+'.join(job.pair)}")
            else:
                staged_smt[identity] = result
        if missing:
            raise RuntimeError(
                f"wave executor returned no result for jobs {missing!r}")

        # Commit every alias only after the whole wave succeeded — and before
        # the disk-store writes, so a cache I/O failure cannot discard the
        # finished wave (same ordering contract as run_config).
        workloads = runner.workloads()
        for identity, group in sim_groups.items():
            result = staged_sim[identity]
            for job in group:
                workloads[job.workload].results[job.config_name] = \
                    _relabelled(result, job.config_name)
        for identity, group in smt_groups.items():
            result = staged_smt[identity]
            for job in group:
                runner._smt_results.setdefault(job.config_name, {})[job.pair] = \
                    _relabelled_smt(result, job.config_name)
        if runner.cache is not None:
            for identity, job in outstanding_sim:
                if job.cache_key is not None:
                    runner.cache.put(job.cache_key, staged_sim[identity])
            for identity, job in outstanding_smt:
                if job.cache_key is not None:
                    runner.cache.put_smt(job.cache_key, staged_smt[identity])
            # Stream this wave's dedup accounting into the cache directory's
            # counter ledger so `repro cache stats` reports cross-host
            # planned/unique/cache-warm dedup rates alongside hit rates.
            persist_dedup_stats(runner.cache.directory, stats.to_dict())
        self.stats = stats
        return stats


# ----------------------------------------------------------- figure plan registry

def _ideal_builder(mode: IdealMode, lvp: Optional[str] = None):
    """Mirror of the figure harnesses' oracle-driven config builder."""
    from repro.experiments.figures import _ideal_builder as harness_builder
    return harness_builder(mode, lvp)


def _plan_fig3() -> FigurePlan:
    """Fig. 3 consumes only traces and Load Inspector reports."""
    return FigurePlan("fig3")


def _plan_fig6() -> FigurePlan:
    """Fig. 6: load-port utilisation under baseline + EVES."""
    return FigurePlan("fig6", configs={"baseline+eves": eves_config()})


def _plan_fig7() -> FigurePlan:
    """Fig. 7: ideal-mechanism headroom sweeps."""
    return FigurePlan("fig7", configs={
        "baseline": baseline_config(),
        "ideal_stable_lvp": _ideal_builder(IdealMode.STABLE_LVP),
        "ideal_stable_lvp_fetch_elim":
            _ideal_builder(IdealMode.STABLE_LVP_FETCH_ELIM),
        "2x_load_width": baseline_config().with_load_width(6),
        "ideal_constable": _ideal_builder(IdealMode.CONSTABLE),
    })


def _plan_fig9() -> FigurePlan:
    """Fig. 9: SLD update rate and wrong-path sensitivity."""
    return FigurePlan("fig9", configs={
        "baseline": baseline_config(),
        "constable": constable_config(),
        "constable_wrong_path": constable_config(
            constable=constable_engine_config(wrong_path_updates=True)),
    })


def _plan_fig11() -> FigurePlan:
    """Fig. 11: the headline noSMT speedup sweep."""
    return FigurePlan("fig11", configs={
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
        "eves+ideal_constable": _ideal_builder(IdealMode.CONSTABLE, lvp="eves"),
    })


def _plan_fig12() -> FigurePlan:
    """Fig. 12: per-workload speedups (subset of fig. 11's configs)."""
    return FigurePlan("fig12", configs={
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    })


def _plan_fig13() -> FigurePlan:
    """Fig. 13: Constable restricted to single addressing-mode categories."""
    configs: Dict[str, ConfigLike] = {"baseline": baseline_config()}
    categories = {
        "pc_relative_only": frozenset({AddressingMode.PC_RELATIVE}),
        "stack_relative_only": frozenset({AddressingMode.STACK_RELATIVE}),
        "register_relative_only": frozenset({AddressingMode.REG_RELATIVE}),
    }
    for name, modes in categories.items():
        configs[name] = constable_config(
            constable=constable_engine_config(eliminate_addressing_modes=modes))
    configs["all_loads"] = constable_config()
    return FigurePlan("fig13", configs=configs)


def _plan_fig14() -> FigurePlan:
    """Fig. 14: the SMT2 speedup sweep (harness default pair budget)."""
    return FigurePlan("fig14", smt_configs={
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    }, smt_max_pairs=4)


def _plan_fig15() -> FigurePlan:
    """Fig. 15: prior works (ELAR, RFP) vs and with Constable."""
    return FigurePlan("fig15", configs={
        "baseline": baseline_config(),
        "elar": elar_config(),
        "rfp": rfp_config(),
        "constable": constable_config(),
        "elar+constable": elar_constable_config(),
        "rfp+constable": rfp_constable_config(),
    })


def _plan_fig16() -> FigurePlan:
    """Fig. 16: load coverage."""
    return FigurePlan("fig16", configs={
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
        "eves+ideal_constable": _ideal_builder(IdealMode.CONSTABLE, lvp="eves"),
    })


def _plan_fig17() -> FigurePlan:
    """Fig. 17: runtime coverage of global-stable loads."""
    return FigurePlan("fig17", configs={"constable": constable_config()})


def _plan_fig18() -> FigurePlan:
    """Fig. 18: RS-allocation and L1-D access reduction."""
    return FigurePlan("fig18", configs={
        "baseline": baseline_config(),
        "constable": constable_config(),
    })


def _plan_fig19() -> FigurePlan:
    """Fig. 19: core dynamic power."""
    return FigurePlan("fig19", configs={
        "baseline": baseline_config(),
        "eves": eves_config(),
        "constable": constable_config(),
        "eves+constable": eves_constable_config(),
    })


def _plan_fig20(load_widths: Sequence[int] = (3, 4, 5, 6),
                depth_scales: Sequence[float] = (1.0, 2.0, 4.0)) -> FigurePlan:
    """Fig. 20: the load-width / pipeline-depth sensitivity grids."""
    configs: Dict[str, ConfigLike] = {"baseline": baseline_config()}
    for width in load_widths:
        configs[f"baseline_w{width}"] = baseline_config().with_load_width(width)
        configs[f"constable_w{width}"] = constable_config().with_load_width(width)
    for scale in depth_scales:
        configs[f"baseline_d{scale}"] = baseline_config().with_depth_scale(scale)
        configs[f"constable_d{scale}"] = constable_config().with_depth_scale(scale)
    return FigurePlan("fig20", configs=configs)


def _plan_fig21() -> FigurePlan:
    """Fig. 21: memory-ordering violation cost."""
    return FigurePlan("fig21", configs={
        "baseline": baseline_config(),
        "constable": constable_config(),
    })


def _plan_fig22() -> FigurePlan:
    """Fig. 22: CV-bit pinning vs AMT invalidation."""
    return FigurePlan("fig22", configs={
        "baseline": baseline_config(),
        "constable": constable_config(),
        "constable_amt_i": constable_config(
            constable=constable_engine_config(
                amt_invalidate_on_l1_eviction=True, pin_cv_bits=False)),
    })


#: Plan factory per orchestratable figure harness.  Keys mirror
#: :data:`repro.experiments.figures.FIGURE_HARNESSES` exactly; the
#: plan/harness consistency test in ``tests/test_orchestrator.py`` asserts
#: both that the key sets match and that a harness run after its own plan's
#: wave performs zero simulations (i.e. the plan covers the harness fully).
FIGURE_PLANS: Dict[str, Callable[[], FigurePlan]] = {
    "fig3": _plan_fig3,
    "fig6": _plan_fig6,
    "fig7": _plan_fig7,
    "fig9": _plan_fig9,
    "fig11": _plan_fig11,
    "fig12": _plan_fig12,
    "fig13": _plan_fig13,
    "fig14": _plan_fig14,
    "fig15": _plan_fig15,
    "fig16": _plan_fig16,
    "fig17": _plan_fig17,
    "fig18": _plan_fig18,
    "fig19": _plan_fig19,
    "fig20": _plan_fig20,
    "fig21": _plan_fig21,
    "fig22": _plan_fig22,
}


def orchestrate_figures(runner: ExperimentRunner, names: Sequence[str]
                        ) -> Tuple[Dict[str, Dict[str, object]], DedupStats]:
    """Run the named figure harnesses through one orchestrated wave.

    Plans are collected for every name present in :data:`FIGURE_PLANS`,
    deduped and executed as a single wave; the harnesses then run against the
    warmed runner (zero simulations) in the order given.  Names without a plan
    (standalone harnesses) are skipped here — callers dispatch those
    separately.  Returns ``(results by figure name, dedup stats)``.
    """
    from repro.experiments.figures import FIGURE_HARNESSES

    planned_names = [name for name in names if name in FIGURE_PLANS]
    orchestrator = SweepOrchestrator(runner)
    stats = orchestrator.execute([FIGURE_PLANS[name]() for name in planned_names])
    results = {name: FIGURE_HARNESSES[name](runner) for name in planned_names}
    return results, stats
