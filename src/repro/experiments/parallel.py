"""Parallel, sharded experiment execution over a process pool.

:class:`ParallelExperimentRunner` reuses the whole planning/aggregation core of
:class:`~repro.experiments.runner.ExperimentRunner` and overrides only the
``_execute_jobs`` hook: outstanding (workload, configuration) jobs are sharded
across ``max_workers`` OS processes via :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism guarantees (enforced by ``tests/test_parallel_determinism.py``):

* **Per-shard seeding.**  Workers never receive pickled traces; each worker
  regenerates the trace it needs from the :class:`WorkloadSpec`'s embedded
  seed, which drives every RNG in the generation pipeline.  A workload's trace
  is therefore bit-identical in every worker and to the parent's copy,
  regardless of how jobs land on shards.
* **Order-independent merge.**  Results are merged into a dictionary keyed by
  workload name as futures complete; since each workload appears in at most
  one job per configuration, completion order cannot change the merged value,
  and downstream aggregation (speedups, geomeans) iterates over the runner's
  workload order, never shard order.
* **Deterministic sharding.**  Jobs are submitted in sorted workload order so
  a fixed worker count also yields a reproducible shard assignment.

Worker processes memoise regenerated traces keyed by (workload, instruction
budget, register count), so a sweep running many configurations over the same
workloads pays trace regeneration once per worker, not once per job.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentRunner, SimulationJob
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import OutOfOrderCore
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import generate_trace
from repro.workloads.suites import SUITE_NAMES, WorkloadSpec
from repro.workloads.trace import Trace

#: Per-worker memo of regenerated traces: (workload, instructions, registers) -> Trace.
_WORKER_TRACES: Dict[Tuple[str, int, int], Trace] = {}


def _regenerate_trace(spec_dict: Dict[str, object], instructions: int,
                      num_registers: int) -> Trace:
    """Deterministically rebuild (and memoise) a workload trace in this worker."""
    key = (str(spec_dict["name"]), instructions, num_registers)
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        spec = WorkloadSpec.from_dict(spec_dict)
        trace = generate_trace(spec, num_instructions=instructions,
                               num_registers=num_registers)
        _WORKER_TRACES[key] = trace
    return trace


def simulate_job_payload(payload: Tuple[str, Dict[str, object], int, int, CoreConfig]
                         ) -> Tuple[str, SimulationResult]:
    """Worker entry point: regenerate the trace, simulate, return (workload, result).

    Module-level (not a closure) so it pickles under every start method.
    """
    config_name, spec_dict, instructions, num_registers, config = payload
    trace = _regenerate_trace(spec_dict, instructions, num_registers)
    core = OutOfOrderCore(config, [trace], name=config_name)
    return str(spec_dict["name"]), core.run()


def _default_start_method() -> str:
    """Prefer fork (cheap, shares the imported simulator) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ParallelExperimentRunner(ExperimentRunner):
    """Shards outstanding simulation jobs across a pool of worker processes.

    Everything else — workload generation, result caching, speedup/geomean
    aggregation, the on-disk :class:`ResultCache` protocol — is inherited from
    the serial runner, so the two are drop-in interchangeable anywhere an
    :class:`ExperimentRunner` is accepted (figure harnesses, benchmarks,
    examples).
    """

    def __init__(self, per_suite: Optional[int] = 2, instructions: int = 6000,
                 num_registers: int = 16,
                 suites: Sequence[str] = SUITE_NAMES,
                 attach_stats_oracle: bool = True,
                 cache: Optional[ResultCache] = None,
                 max_workers: Optional[int] = None,
                 start_method: Optional[str] = None):
        super().__init__(per_suite=per_suite, instructions=instructions,
                         num_registers=num_registers, suites=suites,
                         attach_stats_oracle=attach_stats_oracle, cache=cache)
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.start_method = start_method or _default_start_method()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ----------------------------------------------------------------- executor

    def _executor(self) -> ProcessPoolExecutor:
        """The lazily created, reused worker pool (keeps worker trace memos warm)."""
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                             mp_context=context)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; the runner may be reused (pool respawns)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ---------------------------------------------------------------- execution

    def _execute_jobs(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationResult]:
        """Shard ``jobs`` across the pool and merge keyed by workload name."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return super()._execute_jobs(jobs)
        ordered = sorted(jobs, key=lambda job: job.workload)
        pool = self._executor()
        futures = []
        for job in ordered:
            payload = (job.config_name, job.run.spec.to_dict(),
                       self.instructions, self.num_registers, job.config)
            futures.append(pool.submit(simulate_job_payload, payload))
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        try:
            results: Dict[str, SimulationResult] = {}
            for future in done:
                workload, result = future.result()
                results[workload] = result
            return results
        finally:
            for future in not_done:
                future.cancel()
