"""Parallel, sharded experiment execution over a supervised process pool.

:class:`ParallelExperimentRunner` reuses the whole planning/aggregation core of
:class:`~repro.experiments.runner.ExperimentRunner` and overrides only its
execution hooks:

* ``_execute_jobs`` — outstanding (workload, configuration) simulations are
  sharded across ``max_workers`` OS processes,
* ``_execute_smt_jobs`` — SMT2 pair simulations shard the same way; workers
  regenerate both threads' traces (the second at its distinct base PC),
* ``_generate_workloads`` — cold-start trace synthesis plus Load Inspector
  analysis shards across the pool too, so even the first run of a sweep
  scales with the core count.

Determinism guarantees (enforced by ``tests/test_parallel_determinism.py``):

* **Per-spec seeding.**  Trace generation is a pure function of the
  :class:`WorkloadSpec` (whose embedded seed drives every RNG in the pipeline),
  the instruction budget, the register count and the base PC.  A workload's
  trace is therefore bit-identical in every worker and to the parent's copy,
  regardless of worker count or how jobs land on shards.
* **Order-independent merge.**  Results are merged into dictionaries keyed by
  workload name (or SMT pair) as futures complete; since each key appears in
  at most one job per sweep, completion order cannot change the merged value,
  and downstream aggregation (speedups, geomeans) iterates over the runner's
  workload order, never shard order.
* **Deterministic sharding.**  Jobs are submitted in sorted key order so a
  fixed worker count also yields a reproducible shard assignment.

Worker processes memoise regenerated traces keyed by (workload, instruction
budget, register count, base PC), so a sweep running many configurations over
the same workloads pays trace regeneration once per worker, not once per job —
and a worker that generated a trace during the cold start reuses it for every
simulation job it later receives.

**Failure semantics** (the supervision layer; see docs/ARCHITECTURE.md):
every payload runs through :func:`run_supervised`, which names failures with
the job's ``(config, workload/pair)`` label and ships the remote traceback
text home inside a pickle-safe :class:`JobExecutionError`.  The parent-side
supervisor (:meth:`ParallelExperimentRunner._supervise`) gives each job a
retry budget (``1 + max_retries`` pool attempts with exponential backoff), an
optional per-attempt wall timeout, rebuilds the pool when a dying worker
breaks it (``BrokenProcessPool``), validates every returned value (corrupted
results are retried, never merged) and, once the pool budget is exhausted,
degrades the job to one in-process serial attempt before dead-lettering it.
Dead letters raise :class:`~repro.experiments.runner.SweepExecutionError`
carrying the wave's successes, which the commit layer journals to the on-disk
cache so a rerun executes only the missing jobs.  Simulation payloads are pure
functions of their job, so retries cannot change results — a sweep that limps
home through retries is bit-identical to one that never faulted.  The
:data:`~repro.experiments.faults.FAULT_PLAN_ENV` chaos harness injects
worker-side crashes/hangs/corruption to prove all of this deterministically.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.load_inspector import GlobalStableReport, inspect_trace
from repro.experiments.cache import ReportCache, ResultCache
from repro.experiments.faults import active_fault_plan, corrupt_result, maybe_inject
from repro.experiments.runner import (
    DeadLetter,
    ExperimentRunner,
    SimulationJob,
    SmtJob,
    SweepExecutionError,
    WorkloadRun,
    sim_job_label,
    smt_job_label,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import OutOfOrderCore
from repro.pipeline.smt import SmtResult, simulate_smt_pair
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import DEFAULT_BASE_PC, generate_trace
from repro.workloads.suites import SUITE_NAMES, WorkloadSpec
from repro.workloads.trace import Trace

#: Environment variables providing the supervision defaults (lenient parse:
#: they tune resilience, not correctness, so malformed values warn once and
#: fall back rather than killing every runner at construction).
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Pool retry budget when neither the parameter nor the env var is given.
DEFAULT_MAX_RETRIES = 2

#: How long the supervisor's wait() poll lasts between bookkeeping passes.
_SUPERVISOR_POLL_SECONDS = 0.05

#: Raw env values already warned about in this process (one warning per value).
_WARNED_ENV_VALUES: Set[str] = set()

#: Per-worker memo of regenerated traces:
#: (workload, instructions, registers, base_pc) -> Trace.
_WORKER_TRACES: Dict[Tuple[str, int, int, int], Trace] = {}


def _warn_once(env_name: str, raw: str, expected: str) -> None:
    token = f"{env_name}={raw}"
    if token not in _WARNED_ENV_VALUES:
        _WARNED_ENV_VALUES.add(token)
        warnings.warn(
            f"ignoring invalid {env_name}={raw!r}: expected {expected}",
            RuntimeWarning, stacklevel=4)


def _max_retries_from_env() -> int:
    """The pool retry budget from ``REPRO_MAX_RETRIES``, leniently parsed."""
    raw = os.environ.get(MAX_RETRIES_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_RETRIES
    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 0:
        _warn_once(MAX_RETRIES_ENV, raw, "a non-negative integer")
        return DEFAULT_MAX_RETRIES
    return value


def _job_timeout_from_env() -> Optional[float]:
    """The per-attempt wall timeout from ``REPRO_JOB_TIMEOUT`` (None = none)."""
    raw = os.environ.get(JOB_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        value = math.nan
    if not math.isfinite(value) or value <= 0:
        _warn_once(JOB_TIMEOUT_ENV, raw, "a positive number of seconds")
        return None
    return value


def _regenerate_trace(spec_dict: Dict[str, object], instructions: int,
                      num_registers: int,
                      base_pc: int = DEFAULT_BASE_PC) -> Trace:
    """Deterministically rebuild (and memoise) a workload trace in this worker."""
    key = (str(spec_dict["name"]), instructions, num_registers, base_pc)
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        spec = WorkloadSpec.from_dict(spec_dict)
        trace = generate_trace(spec, num_instructions=instructions,
                               num_registers=num_registers, base_pc=base_pc)
        _WORKER_TRACES[key] = trace
    return trace


def simulate_job_payload(payload: Tuple[str, Dict[str, object], int, int, CoreConfig]
                         ) -> Tuple[str, SimulationResult]:
    """Worker entry point: regenerate the trace, simulate, return (workload, result).

    Module-level (not a closure) so it pickles under every start method.
    """
    config_name, spec_dict, instructions, num_registers, config = payload
    trace = _regenerate_trace(spec_dict, instructions, num_registers)
    core = OutOfOrderCore(config, [trace], name=config_name)
    return str(spec_dict["name"]), core.run()


def simulate_smt_job_payload(
        payload: Tuple[str, Dict[str, object], Dict[str, object], int, int, int, CoreConfig]
) -> Tuple[Tuple[str, str], SmtResult]:
    """Worker entry point for one SMT2 pair: regenerate both traces, simulate.

    The second thread's trace is regenerated at its own base PC (and memoised
    under that PC), exactly matching the serial executor's behaviour.
    """
    (config_name, first_dict, second_dict, instructions, num_registers,
     second_base_pc, config) = payload
    first_trace = _regenerate_trace(first_dict, instructions, num_registers)
    second_trace = _regenerate_trace(second_dict, instructions, num_registers,
                                     base_pc=second_base_pc)
    result = simulate_smt_pair(first_trace, second_trace, config, name=config_name)
    return (str(first_dict["name"]), str(second_dict["name"])), result


def simulate_keyed_job_payload(payload: Tuple[str, Dict[str, object], int, int, CoreConfig]
                               ) -> Tuple[str, Tuple[str, str], SimulationResult]:
    """Worker entry point for wave execution: like :func:`simulate_job_payload`
    but tagged and keyed by ``(config_name, workload)``, so one wave may carry
    jobs for many configurations without the merged keys colliding."""
    workload, result = simulate_job_payload(payload)
    return "sim", (payload[0], workload), result


def simulate_keyed_smt_job_payload(
        payload: Tuple[str, Dict[str, object], Dict[str, object], int, int, int, CoreConfig]
) -> Tuple[str, Tuple[str, Tuple[str, str]], SmtResult]:
    """Worker entry point for wave execution of one SMT2 pair, keyed by
    ``(config_name, pair)`` (see :func:`simulate_keyed_job_payload`)."""
    pair, result = simulate_smt_job_payload(payload)
    return "smt", (payload[0], pair), result


def generate_workload_payload(payload: Tuple[Dict[str, object], int, int, bool]
                              ) -> Tuple[str, Trace, Optional[GlobalStableReport]]:
    """Worker entry point for cold-start generation: build a trace (+ report).

    ``need_report`` is False when the parent already holds a cached Load
    Inspector report for the workload; the worker then skips the inspection
    pass and ships only the trace.  The generated trace lands in the worker's
    memo, so simulation jobs later dispatched to this worker reuse it.
    """
    spec_dict, instructions, num_registers, need_report = payload
    trace = _regenerate_trace(spec_dict, instructions, num_registers)
    report = inspect_trace(trace) if need_report else None
    return str(spec_dict["name"]), trace, report


# ------------------------------------------------------------------ supervision

class JobExecutionError(RuntimeError):
    """A payload failed in a worker; names the job and carries its traceback.

    Raised worker-side by :func:`run_supervised` so that by the time the
    failure crosses the process boundary it already says *which* job died
    (``label`` is ``sim:<config>/<workload>`` etc.) and *why*
    (``remote_traceback`` is the fully formatted worker-side traceback —
    exception objects lose their traceback in pickling, text does not).
    """

    def __init__(self, label: str, attempt: int, remote_traceback: str):
        last_line = remote_traceback.strip().splitlines()[-1] \
            if remote_traceback.strip() else "unknown error"
        super().__init__(f"job {label} failed on attempt {attempt}: {last_line}")
        self.label = label
        self.attempt = attempt
        self.remote_traceback = remote_traceback

    def __reduce__(self):
        # Multi-argument exception __init__ breaks default unpickling; spell
        # the reconstruction out so the error survives the trip home.
        return (JobExecutionError,
                (self.label, self.attempt, self.remote_traceback))


def run_supervised(fn: Callable[[object], object], payload: object,
                   label: str, attempt: int) -> object:
    """Worker-side wrapper around every payload execution.

    Consults the chaos :class:`~repro.experiments.faults.FaultPlan` (if any)
    before and after the payload, and converts every payload exception into a
    :class:`JobExecutionError` naming the job — satellite of the supervision
    contract: no failure may reach the parent anonymously.
    """
    maybe_inject(label, attempt)
    try:
        result = fn(payload)
    except Exception:
        raise JobExecutionError(label, attempt, traceback.format_exc()) from None
    return corrupt_result(label, attempt, result)


@dataclass
class _SupervisedTask:
    """Parent-side bookkeeping for one job travelling through the supervisor."""

    fn: Callable[[object], object]
    payload: object
    label: str
    validate: Callable[[object], bool]
    attempts: int = 0
    not_before: float = 0.0
    deadline: float = math.inf
    last_error: str = ""


def _default_start_method() -> str:
    """Prefer fork (cheap, shares the imported simulator) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ParallelExperimentRunner(ExperimentRunner):
    """Shards trace generation and simulation jobs across worker processes.

    Everything else — planning, result caching, speedup/geomean aggregation,
    the on-disk :class:`ResultCache`/:class:`ReportCache` protocols — is
    inherited from the serial runner, so the two are drop-in interchangeable
    anywhere an :class:`ExperimentRunner` is accepted (figure harnesses,
    benchmarks, examples).  In particular every cache write stays
    parent-side: workers return results over the pool and the inherited
    commit loop calls ``cache.put``/``put_smt`` here, which is also what
    appends each entry's columnar warehouse row — N workers never contend on
    the warehouse, and its rows stay in lockstep with the resume journal.

    ``max_retries`` bounds how many times a failed job is resubmitted to the
    pool (``REPRO_MAX_RETRIES``, default 2); ``job_timeout`` abandons any
    single attempt running longer than that many wall seconds
    (``REPRO_JOB_TIMEOUT``, default none).  Both are supervision knobs: they
    change how a sweep executes, never what is simulated, and therefore never
    enter cache keys (enforced by lint rule RL002).
    """

    def __init__(self, per_suite: Optional[int] = 2, instructions: int = 6000,
                 num_registers: int = 16,
                 suites: Sequence[str] = SUITE_NAMES,
                 attach_stats_oracle: bool = True,
                 cache: Optional[ResultCache] = None,
                 report_cache: Optional[ReportCache] = None,
                 max_workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 max_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 retry_backoff_seconds: float = 0.05):
        super().__init__(per_suite=per_suite, instructions=instructions,
                         num_registers=num_registers, suites=suites,
                         attach_stats_oracle=attach_stats_oracle, cache=cache,
                         report_cache=report_cache)
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if max_retries is None:
            max_retries = _max_retries_from_env()
        elif max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if job_timeout is None:
            job_timeout = _job_timeout_from_env()
        elif not math.isfinite(job_timeout) or job_timeout <= 0:
            raise ValueError("job_timeout must be a positive number of seconds")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        self.max_workers = max_workers
        self.start_method = start_method or _default_start_method()
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.retry_backoff_seconds = retry_backoff_seconds
        self._pool: Optional[ProcessPoolExecutor] = None
        # Validate any chaos plan eagerly: a typo'd REPRO_FAULT_PLAN must die
        # here, loudly, not silently inject nothing inside the workers.
        active_fault_plan()

    # ----------------------------------------------------------------- executor

    def _executor(self) -> ProcessPoolExecutor:
        """The lazily created, reused worker pool (keeps worker trace memos warm).

        A pool whose worker died (OOM kill, injected crash) is permanently
        broken — every later submit raises ``BrokenProcessPool`` — so a broken
        cached pool is discarded and respawned here instead of poisoning every
        subsequent call until ``close()``.
        """
        if self._pool is not None and getattr(self._pool, "_broken", False):
            self._discard_pool()
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                             mp_context=context)
        return self._pool

    def _discard_pool(self, terminate: bool = False) -> None:
        """Drop the cached pool (counted as a rebuild); optionally kill workers.

        ``terminate=True`` is the hung-job escape hatch: a worker stuck in a
        payload would keep ``shutdown(wait=False)`` from ever reaping it, so
        the supervisor terminates the worker processes outright before
        shutting the executor machinery down.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.health.pool_rebuilds += 1
        if terminate:
            processes = getattr(pool, "_processes", None)
            if isinstance(processes, dict):
                for process in list(processes.values()):
                    try:
                        process.terminate()
                    except (OSError, ValueError):
                        pass  # already dead or already closed: goal achieved
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):
            pass  # broken executors may refuse shutdown; pool is dropped anyway

    def close(self) -> None:
        """Shut the worker pool down; the runner may be reused (pool respawns).

        Also flushes cache counters to the directory ledger (the parent owns
        all cache I/O — workers only simulate — so the parent-side flush
        captures the whole run).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        super().close()

    # --------------------------------------------------------------- supervisor

    def _fallback_in_process(self, task: _SupervisedTask,
                             results: List[object],
                             dead: List[DeadLetter]) -> None:
        """The last rung: run an exhausted job serially in the parent.

        A job that failed every pool attempt may be the victim of pool-level
        trouble (a neighbour crashing the worker, a resource-starved host)
        rather than broken in itself, so it gets exactly one in-process try
        before being dead-lettered.  The attempt still runs through
        :func:`run_supervised`: worker-scoped faults no-op in the parent, but
        ``"scope": "anywhere"`` rules reach this rung too — that is how tests
        force the dead-letter path deterministically.
        """
        try:
            value = run_supervised(task.fn, task.payload, task.label,
                                   task.attempts + 1)
        except Exception:
            dead.append(DeadLetter(task.label, task.attempts, task.last_error,
                                   fallback_error=traceback.format_exc()))
            return
        if task.validate(value):
            self.health.degraded += 1
            results.append(value)
        else:
            dead.append(DeadLetter(
                task.label, task.attempts, task.last_error,
                fallback_error="in-process result failed validation"))

    def _supervise(self, tasks: Sequence[_SupervisedTask]) -> List[object]:
        """Run every task to completion with retries, timeouts and rebuilds.

        The loop submits ready tasks (backoff-gated), polls the pending
        futures, and classifies every completion:

        * a validated result is accepted;
        * an invalid result (corruption) or any failure consumes one attempt —
          the task retries with exponential backoff while its budget
          (``1 + max_retries`` pool attempts) lasts, then degrades to one
          in-process attempt, then dead-letters;
        * a cancelled future never ran (pool rebuild collateral), so its
          attempt is refunded and the task requeues immediately;
        * an attempt exceeding ``job_timeout`` is abandoned — and if it cannot
          be cancelled (already running, possibly hung), the pool is torn down
          with its workers terminated so one stuck payload cannot wedge the
          sweep.

        Raises :class:`SweepExecutionError` (successes attached) if any task
        dead-lettered; otherwise returns every task's validated result.
        """
        health = self.health
        health.jobs += len(tasks)
        budget = 1 + self.max_retries
        results: List[object] = []
        dead: List[DeadLetter] = []
        ready: List[_SupervisedTask] = list(tasks)
        pending: Dict[Future, _SupervisedTask] = {}

        def fail(task: _SupervisedTask, error_text: str,
                 timed_out: bool = False) -> None:
            task.last_error = error_text
            if timed_out:
                health.timeouts += 1
            if task.attempts < budget:
                health.retries += 1
                task.not_before = (time.monotonic() + self.retry_backoff_seconds
                                   * (2 ** (task.attempts - 1)))
                ready.append(task)
            else:
                self._fallback_in_process(task, results, dead)

        while ready or pending:
            now = time.monotonic()
            held: List[_SupervisedTask] = []
            for task in ready:
                if task.not_before > now:
                    held.append(task)
                    continue
                task.attempts += 1
                health.attempts += 1
                future = self._executor().submit(
                    run_supervised, task.fn, task.payload, task.label,
                    task.attempts)
                task.deadline = (now + self.job_timeout
                                 if self.job_timeout is not None else math.inf)
                pending[future] = task
            ready = held
            if not pending:
                # Everything left is backing off; sleep until the earliest
                # retry becomes ready instead of spinning.
                wake = min(task.not_before for task in ready)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue
            done, _ = wait(list(pending), timeout=_SUPERVISOR_POLL_SECONDS,
                           return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                try:
                    value = future.result()
                except CancelledError:
                    # Never ran (rebuild collateral): refund the attempt.
                    task.attempts -= 1
                    health.attempts -= 1
                    ready.append(task)
                    continue
                except JobExecutionError as error:
                    fail(task, error.remote_traceback)
                    continue
                except BrokenExecutor:
                    fail(task, f"worker process died while {task.label} was "
                               f"in flight (BrokenProcessPool; the pool is "
                               f"respawned on the next submission)")
                    continue
                except Exception:
                    fail(task, traceback.format_exc())
                    continue
                if task.validate(value):
                    results.append(value)
                else:
                    fail(task, f"corrupted result for {task.label}: the "
                               f"worker returned {type(value).__name__!r} "
                               f"that failed validation")
            if self.job_timeout is not None and pending:
                now = time.monotonic()
                expired = [future for future, task in pending.items()
                           if task.deadline <= now and not future.done()]
                for future in expired:
                    task = pending.pop(future)
                    if future.cancel():
                        # Never started (queued behind slower jobs).  The
                        # wall budget is per-*attempt*, so an attempt that
                        # never ran is refunded and requeued, not counted
                        # against the retry budget as a timeout.
                        task.attempts -= 1
                        health.attempts -= 1
                        ready.append(task)
                        continue
                    if future.done():
                        # Completed in the race window; let the normal
                        # completion handling classify it next poll.
                        pending[future] = task
                        continue
                    # Running in a worker that may be hung; kill the pool so
                    # the stuck payload cannot wedge the sweep.  Sibling
                    # futures die as rebuild collateral and are
                    # refunded/retried through the paths above.
                    self._discard_pool(terminate=True)
                    fail(task, f"attempt {task.attempts} of {task.label} "
                               f"exceeded the {self.job_timeout:g}s wall "
                               f"timeout", timed_out=True)
        if dead:
            health.dead_letters.extend(dead)
            error = SweepExecutionError(dead, health)
            error.results = results
            raise error
        return results

    # ---------------------------------------------------------------- execution

    @staticmethod
    def _sim_validator(workload: str) -> Callable[[object], bool]:
        def validate(value: object) -> bool:
            return (isinstance(value, tuple) and len(value) == 2
                    and value[0] == workload
                    and isinstance(value[1], SimulationResult))
        return validate

    @staticmethod
    def _smt_validator(pair: Tuple[str, str]) -> Callable[[object], bool]:
        def validate(value: object) -> bool:
            return (isinstance(value, tuple) and len(value) == 2
                    and value[0] == tuple(pair)
                    and isinstance(value[1], SmtResult))
        return validate

    def _execute_jobs(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationResult]:
        """Shard ``jobs`` across the pool and merge keyed by workload name."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return super()._execute_jobs(jobs)
        tasks = []
        for job in sorted(jobs, key=lambda job: job.workload):
            payload = (job.config_name, job.run.spec.to_dict(),
                       self.instructions, self.num_registers, job.config)
            tasks.append(_SupervisedTask(
                fn=simulate_job_payload, payload=payload,
                label=sim_job_label(job),
                validate=self._sim_validator(job.workload)))
        try:
            raw = self._supervise(tasks)
        except SweepExecutionError as error:
            error.partial = dict(self._partial_successes(error))
            raise
        return dict(raw)

    def _execute_smt_jobs(self, jobs: Sequence[SmtJob]
                          ) -> Dict[Tuple[str, str], SmtResult]:
        """Shard SMT pair simulations across the pool, merged keyed by pair."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return super()._execute_smt_jobs(jobs)
        tasks = []
        for job in sorted(jobs, key=lambda job: job.pair):
            payload = (job.config_name, job.run.spec.to_dict(),
                       job.second_spec.to_dict(), self.instructions,
                       self.num_registers, job.second_base_pc, job.config)
            tasks.append(_SupervisedTask(
                fn=simulate_smt_job_payload, payload=payload,
                label=smt_job_label(job),
                validate=self._smt_validator(job.pair)))
        try:
            raw = self._supervise(tasks)
        except SweepExecutionError as error:
            error.partial = dict(self._partial_successes(error))
            raise
        return dict(raw)

    @staticmethod
    def _partial_successes(error: SweepExecutionError) -> List[Tuple[object, object]]:
        """The keyed payload tuples a failed supervision pass still completed."""
        return list(error.results)

    def _execute_wave(self, jobs: Sequence[SimulationJob],
                      smt_jobs: Sequence[SmtJob] = ()
                      ) -> Tuple[Dict[Tuple[str, str], SimulationResult],
                                 Dict[Tuple[str, Tuple[str, str]], SmtResult]]:
        """Feed a mixed multi-configuration batch into one pool submission.

        Every job — single-thread and SMT alike, across every configuration in
        the batch — is submitted up front and supervised together, so the pool
        stays continuously fed for the whole wave instead of draining at each
        per-configuration barrier.  Submission order is sorted by
        ``(config_name, workload/pair)`` for a reproducible shard assignment;
        results merge keyed by those same tuples, so completion order never
        affects the merged value.
        """
        if len(jobs) + len(smt_jobs) <= 1 or self.max_workers == 1:
            return super()._execute_wave(jobs, smt_jobs)
        tasks = []
        for job in sorted(jobs, key=lambda job: (job.config_name, job.workload)):
            payload = (job.config_name, job.run.spec.to_dict(),
                       self.instructions, self.num_registers, job.config)
            tasks.append(_SupervisedTask(
                fn=simulate_keyed_job_payload, payload=payload,
                label=sim_job_label(job),
                validate=self._wave_validator("sim", (job.config_name,
                                                      job.workload))))
        for job in sorted(smt_jobs, key=lambda job: (job.config_name, job.pair)):
            payload = (job.config_name, job.run.spec.to_dict(),
                       job.second_spec.to_dict(), self.instructions,
                       self.num_registers, job.second_base_pc, job.config)
            tasks.append(_SupervisedTask(
                fn=simulate_keyed_smt_job_payload, payload=payload,
                label=smt_job_label(job),
                validate=self._wave_validator("smt", (job.config_name,
                                                      job.pair))))
        try:
            raw = self._supervise(tasks)
        except SweepExecutionError as error:
            error.partial = self._merge_wave(self._partial_successes(error))
            raise
        return self._merge_wave(raw)

    @staticmethod
    def _wave_validator(kind: str, key: object) -> Callable[[object], bool]:
        expected_type = SimulationResult if kind == "sim" else SmtResult
        def validate(value: object) -> bool:
            return (isinstance(value, tuple) and len(value) == 3
                    and value[0] == kind and value[1] == key
                    and isinstance(value[2], expected_type))
        return validate

    @staticmethod
    def _merge_wave(raw: Sequence[Tuple[str, object, object]]
                    ) -> Tuple[Dict[Tuple[str, str], SimulationResult],
                               Dict[Tuple[str, Tuple[str, str]], SmtResult]]:
        sim_results: Dict[Tuple[str, str], SimulationResult] = {}
        smt_results: Dict[Tuple[str, Tuple[str, str]], SmtResult] = {}
        for kind, key, result in raw:
            if kind == "sim":
                sim_results[key] = result
            else:
                smt_results[key] = result
        return sim_results, smt_results

    # --------------------------------------------------------------- generation

    def _generate_workloads(self, specs: Sequence[WorkloadSpec]) -> Dict[str, WorkloadRun]:
        """Shard cold-start trace generation (+ inspection) across the pool.

        Load Inspector reports are looked up in the on-disk report cache from
        the parent before dispatch, so workers only run the inspection pass
        for workloads whose report is genuinely missing; fresh reports are
        published back to the cache as shards complete — including the
        completed shards of a *failed* generation pass, so even a cold start
        that dead-letters leaves its finished inspection work journalled.
        """
        if len(specs) <= 1 or self.max_workers == 1:
            return super()._generate_workloads(specs)
        specs_by_name = {spec.name: spec for spec in specs}
        cached_reports: Dict[str, GlobalStableReport] = {}
        for spec in specs:
            key = self._report_cache_key(spec)
            if key is not None:
                report = self.report_cache.get(key)
                if report is not None:
                    cached_reports[spec.name] = report
        tasks = []
        for spec in sorted(specs, key=lambda spec: spec.name):
            payload = (spec.to_dict(), self.instructions, self.num_registers,
                       spec.name not in cached_reports)
            tasks.append(_SupervisedTask(
                fn=generate_workload_payload, payload=payload,
                label=f"gen:{spec.name}",
                validate=self._gen_validator(spec.name)))
        try:
            raw = self._supervise(tasks)
        except SweepExecutionError as error:
            self._publish_reports(self._partial_successes(error),
                                  specs_by_name, cached_reports)
            raise
        runs: Dict[str, WorkloadRun] = {}
        for name, trace, report in raw:
            if report is None:
                report = cached_reports[name]
            runs[name] = WorkloadRun(spec=specs_by_name[name], trace=trace,
                                     report=report)
        self._publish_reports(raw, specs_by_name, cached_reports)
        return runs

    @staticmethod
    def _gen_validator(name: str) -> Callable[[object], bool]:
        def validate(value: object) -> bool:
            return (isinstance(value, tuple) and len(value) == 3
                    and value[0] == name and isinstance(value[1], Trace)
                    and (value[2] is None
                         or isinstance(value[2], GlobalStableReport)))
        return validate

    def _publish_reports(self, raw: Sequence[Tuple[str, Trace,
                                                   Optional[GlobalStableReport]]],
                         specs_by_name: Dict[str, WorkloadSpec],
                         cached_reports: Dict[str, GlobalStableReport]) -> None:
        """Publish freshly inspected reports to the on-disk report cache."""
        for name, _, report in raw:
            if report is None or name in cached_reports:
                continue
            key = self._report_cache_key(specs_by_name[name])
            if key is not None:
                self.report_cache.put(key, report)
