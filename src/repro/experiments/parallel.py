"""Parallel, sharded experiment execution over a process pool.

:class:`ParallelExperimentRunner` reuses the whole planning/aggregation core of
:class:`~repro.experiments.runner.ExperimentRunner` and overrides only its
execution hooks:

* ``_execute_jobs`` — outstanding (workload, configuration) simulations are
  sharded across ``max_workers`` OS processes,
* ``_execute_smt_jobs`` — SMT2 pair simulations shard the same way; workers
  regenerate both threads' traces (the second at its distinct base PC),
* ``_generate_workloads`` — cold-start trace synthesis plus Load Inspector
  analysis shards across the pool too, so even the first run of a sweep
  scales with the core count.

Determinism guarantees (enforced by ``tests/test_parallel_determinism.py``):

* **Per-spec seeding.**  Trace generation is a pure function of the
  :class:`WorkloadSpec` (whose embedded seed drives every RNG in the pipeline),
  the instruction budget, the register count and the base PC.  A workload's
  trace is therefore bit-identical in every worker and to the parent's copy,
  regardless of worker count or how jobs land on shards.
* **Order-independent merge.**  Results are merged into dictionaries keyed by
  workload name (or SMT pair) as futures complete; since each key appears in
  at most one job per sweep, completion order cannot change the merged value,
  and downstream aggregation (speedups, geomeans) iterates over the runner's
  workload order, never shard order.
* **Deterministic sharding.**  Jobs are submitted in sorted key order so a
  fixed worker count also yields a reproducible shard assignment.

Worker processes memoise regenerated traces keyed by (workload, instruction
budget, register count, base PC), so a sweep running many configurations over
the same workloads pays trace regeneration once per worker, not once per job —
and a worker that generated a trace during the cold start reuses it for every
simulation job it later receives.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.load_inspector import GlobalStableReport, inspect_trace
from repro.experiments.cache import ReportCache, ResultCache
from repro.experiments.runner import ExperimentRunner, SimulationJob, SmtJob, WorkloadRun
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import OutOfOrderCore
from repro.pipeline.smt import SmtResult, simulate_smt_pair
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import DEFAULT_BASE_PC, generate_trace
from repro.workloads.suites import SUITE_NAMES, WorkloadSpec
from repro.workloads.trace import Trace

#: Per-worker memo of regenerated traces:
#: (workload, instructions, registers, base_pc) -> Trace.
_WORKER_TRACES: Dict[Tuple[str, int, int, int], Trace] = {}


def _regenerate_trace(spec_dict: Dict[str, object], instructions: int,
                      num_registers: int,
                      base_pc: int = DEFAULT_BASE_PC) -> Trace:
    """Deterministically rebuild (and memoise) a workload trace in this worker."""
    key = (str(spec_dict["name"]), instructions, num_registers, base_pc)
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        spec = WorkloadSpec.from_dict(spec_dict)
        trace = generate_trace(spec, num_instructions=instructions,
                               num_registers=num_registers, base_pc=base_pc)
        _WORKER_TRACES[key] = trace
    return trace


def simulate_job_payload(payload: Tuple[str, Dict[str, object], int, int, CoreConfig]
                         ) -> Tuple[str, SimulationResult]:
    """Worker entry point: regenerate the trace, simulate, return (workload, result).

    Module-level (not a closure) so it pickles under every start method.
    """
    config_name, spec_dict, instructions, num_registers, config = payload
    trace = _regenerate_trace(spec_dict, instructions, num_registers)
    core = OutOfOrderCore(config, [trace], name=config_name)
    return str(spec_dict["name"]), core.run()


def simulate_smt_job_payload(
        payload: Tuple[str, Dict[str, object], Dict[str, object], int, int, int, CoreConfig]
) -> Tuple[Tuple[str, str], SmtResult]:
    """Worker entry point for one SMT2 pair: regenerate both traces, simulate.

    The second thread's trace is regenerated at its own base PC (and memoised
    under that PC), exactly matching the serial executor's behaviour.
    """
    (config_name, first_dict, second_dict, instructions, num_registers,
     second_base_pc, config) = payload
    first_trace = _regenerate_trace(first_dict, instructions, num_registers)
    second_trace = _regenerate_trace(second_dict, instructions, num_registers,
                                     base_pc=second_base_pc)
    result = simulate_smt_pair(first_trace, second_trace, config, name=config_name)
    return (str(first_dict["name"]), str(second_dict["name"])), result


def simulate_keyed_job_payload(payload: Tuple[str, Dict[str, object], int, int, CoreConfig]
                               ) -> Tuple[str, Tuple[str, str], SimulationResult]:
    """Worker entry point for wave execution: like :func:`simulate_job_payload`
    but tagged and keyed by ``(config_name, workload)``, so one wave may carry
    jobs for many configurations without the merged keys colliding."""
    workload, result = simulate_job_payload(payload)
    return "sim", (payload[0], workload), result


def simulate_keyed_smt_job_payload(
        payload: Tuple[str, Dict[str, object], Dict[str, object], int, int, int, CoreConfig]
) -> Tuple[str, Tuple[str, Tuple[str, str]], SmtResult]:
    """Worker entry point for wave execution of one SMT2 pair, keyed by
    ``(config_name, pair)`` (see :func:`simulate_keyed_job_payload`)."""
    pair, result = simulate_smt_job_payload(payload)
    return "smt", (payload[0], pair), result


def generate_workload_payload(payload: Tuple[Dict[str, object], int, int, bool]
                              ) -> Tuple[str, Trace, Optional[GlobalStableReport]]:
    """Worker entry point for cold-start generation: build a trace (+ report).

    ``need_report`` is False when the parent already holds a cached Load
    Inspector report for the workload; the worker then skips the inspection
    pass and ships only the trace.  The generated trace lands in the worker's
    memo, so simulation jobs later dispatched to this worker reuse it.
    """
    spec_dict, instructions, num_registers, need_report = payload
    trace = _regenerate_trace(spec_dict, instructions, num_registers)
    report = inspect_trace(trace) if need_report else None
    return str(spec_dict["name"]), trace, report


def _default_start_method() -> str:
    """Prefer fork (cheap, shares the imported simulator) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ParallelExperimentRunner(ExperimentRunner):
    """Shards trace generation and simulation jobs across worker processes.

    Everything else — planning, result caching, speedup/geomean aggregation,
    the on-disk :class:`ResultCache`/:class:`ReportCache` protocols — is
    inherited from the serial runner, so the two are drop-in interchangeable
    anywhere an :class:`ExperimentRunner` is accepted (figure harnesses,
    benchmarks, examples).
    """

    def __init__(self, per_suite: Optional[int] = 2, instructions: int = 6000,
                 num_registers: int = 16,
                 suites: Sequence[str] = SUITE_NAMES,
                 attach_stats_oracle: bool = True,
                 cache: Optional[ResultCache] = None,
                 report_cache: Optional[ReportCache] = None,
                 max_workers: Optional[int] = None,
                 start_method: Optional[str] = None):
        super().__init__(per_suite=per_suite, instructions=instructions,
                         num_registers=num_registers, suites=suites,
                         attach_stats_oracle=attach_stats_oracle, cache=cache,
                         report_cache=report_cache)
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.start_method = start_method or _default_start_method()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ----------------------------------------------------------------- executor

    def _executor(self) -> ProcessPoolExecutor:
        """The lazily created, reused worker pool (keeps worker trace memos warm)."""
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                             mp_context=context)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; the runner may be reused (pool respawns).

        Also flushes cache counters to the directory ledger (the parent owns
        all cache I/O — workers only simulate — so the parent-side flush
        captures the whole run).
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        super().close()

    def _collect(self, futures: Sequence[Future]) -> List[object]:
        """Await all futures; on the first failure cancel the rest and raise."""
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        try:
            return [future.result() for future in done]
        finally:
            for future in not_done:
                future.cancel()

    # ---------------------------------------------------------------- execution

    def _execute_jobs(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationResult]:
        """Shard ``jobs`` across the pool and merge keyed by workload name."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return super()._execute_jobs(jobs)
        ordered = sorted(jobs, key=lambda job: job.workload)
        pool = self._executor()
        futures = []
        for job in ordered:
            payload = (job.config_name, job.run.spec.to_dict(),
                       self.instructions, self.num_registers, job.config)
            futures.append(pool.submit(simulate_job_payload, payload))
        return dict(self._collect(futures))

    def _execute_smt_jobs(self, jobs: Sequence[SmtJob]
                          ) -> Dict[Tuple[str, str], SmtResult]:
        """Shard SMT pair simulations across the pool, merged keyed by pair."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return super()._execute_smt_jobs(jobs)
        ordered = sorted(jobs, key=lambda job: job.pair)
        pool = self._executor()
        futures = []
        for job in ordered:
            payload = (job.config_name, job.run.spec.to_dict(),
                       job.second_spec.to_dict(), self.instructions,
                       self.num_registers, job.second_base_pc, job.config)
            futures.append(pool.submit(simulate_smt_job_payload, payload))
        return dict(self._collect(futures))

    def _execute_wave(self, jobs: Sequence[SimulationJob],
                      smt_jobs: Sequence[SmtJob] = ()
                      ) -> Tuple[Dict[Tuple[str, str], SimulationResult],
                                 Dict[Tuple[str, Tuple[str, str]], SmtResult]]:
        """Feed a mixed multi-configuration batch into one pool submission.

        Every job — single-thread and SMT alike, across every configuration in
        the batch — is submitted up front and awaited once, so the pool stays
        continuously fed for the whole wave instead of draining at each
        per-configuration barrier.  Submission order is sorted by
        ``(config_name, workload/pair)`` for a reproducible shard assignment;
        results merge keyed by those same tuples, so completion order never
        affects the merged value.
        """
        if len(jobs) + len(smt_jobs) <= 1 or self.max_workers == 1:
            return super()._execute_wave(jobs, smt_jobs)
        pool = self._executor()
        futures = []
        for job in sorted(jobs, key=lambda job: (job.config_name, job.workload)):
            payload = (job.config_name, job.run.spec.to_dict(),
                       self.instructions, self.num_registers, job.config)
            futures.append(pool.submit(simulate_keyed_job_payload, payload))
        for job in sorted(smt_jobs, key=lambda job: (job.config_name, job.pair)):
            payload = (job.config_name, job.run.spec.to_dict(),
                       job.second_spec.to_dict(), self.instructions,
                       self.num_registers, job.second_base_pc, job.config)
            futures.append(pool.submit(simulate_keyed_smt_job_payload, payload))
        sim_results: Dict[Tuple[str, str], SimulationResult] = {}
        smt_results: Dict[Tuple[str, Tuple[str, str]], SmtResult] = {}
        for kind, key, result in self._collect(futures):
            if kind == "sim":
                sim_results[key] = result
            else:
                smt_results[key] = result
        return sim_results, smt_results

    # --------------------------------------------------------------- generation

    def _generate_workloads(self, specs: Sequence[WorkloadSpec]) -> Dict[str, WorkloadRun]:
        """Shard cold-start trace generation (+ inspection) across the pool.

        Load Inspector reports are looked up in the on-disk report cache from
        the parent before dispatch, so workers only run the inspection pass
        for workloads whose report is genuinely missing; fresh reports are
        published back to the cache as shards complete.
        """
        if len(specs) <= 1 or self.max_workers == 1:
            return super()._generate_workloads(specs)
        specs_by_name = {spec.name: spec for spec in specs}
        cached_reports: Dict[str, GlobalStableReport] = {}
        for spec in specs:
            key = self._report_cache_key(spec)
            if key is not None:
                report = self.report_cache.get(key)
                if report is not None:
                    cached_reports[spec.name] = report
        pool = self._executor()
        futures = []
        for spec in sorted(specs, key=lambda spec: spec.name):
            payload = (spec.to_dict(), self.instructions, self.num_registers,
                       spec.name not in cached_reports)
            futures.append(pool.submit(generate_workload_payload, payload))
        runs: Dict[str, WorkloadRun] = {}
        for name, trace, report in self._collect(futures):
            if report is None:
                report = cached_reports[name]
            else:
                key = self._report_cache_key(specs_by_name[name])
                if key is not None:
                    self.report_cache.put(key, report)
            runs[name] = WorkloadRun(spec=specs_by_name[name], trace=trace,
                                     report=report)
        return runs
