"""Plain-text reporting helpers for experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.051 -> '5.1%')."""
    return f"{value * 100:.{digits}f}%"


def format_speedup(value: float, digits: int = 3) -> str:
    """Format a speedup ratio (1.051 -> '1.051x')."""
    return f"{value:.{digits}f}x"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str = "") -> str:
    """Render a key/value mapping as a two-column table."""
    return format_table(["metric", "value"],
                        [(key, value) for key, value in mapping.items()],
                        title=title)


def format_dedup_stats(stats, title: str = "orchestrated wave") -> str:
    """Render a :class:`~repro.experiments.orchestrator.DedupStats` record.

    Accepts the dataclass itself or its ``to_dict()`` form, so bench reports
    loaded back from JSON render identically to live runs.
    """
    payload = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    rows = [
        ("figures", len(payload.get("figures", []))),
        ("jobs planned", payload["planned"]),
        ("unique after dedup", payload["unique"]),
        ("shared across figures",
         payload.get("deduped", payload["planned"] - payload["unique"])),
        ("cache-warm", payload["cache_warm"]),
        ("executed", payload["executed"]),
    ]
    return format_table(["metric", "count"], rows, title=title)


def format_persisted_dedup(dedup: Mapping[str, int],
                           title: str = "orchestrated waves (all processes)"
                           ) -> str:
    """Render the ledger-aggregated dedup block of ``persisted_cache_stats``.

    Counts are sums over every orchestrated wave that streamed its stats into
    the cache directory (possibly from several shard hosts); the dedup and
    cache-warm *rates* are what a shared sweep directory is actually buying.
    """
    planned = dedup.get("planned", 0)
    unique = dedup.get("unique", 0)
    deduped = dedup.get("deduped", planned - unique)
    cache_warm = dedup.get("cache_warm", 0)
    rows = [
        ("waves", dedup.get("waves", 0)),
        ("jobs planned", planned),
        ("unique after dedup", unique),
        ("dedup rate", format_percent(deduped / planned) if planned else "n/a"),
        ("cache-warm", cache_warm),
        ("cache-warm rate",
         format_percent(cache_warm / unique) if unique else "n/a"),
        ("executed", dedup.get("executed", 0)),
    ]
    return format_table(["metric", "value"], rows, title=title)


def format_health_report(health, title: str = "sweep health") -> str:
    """Render a :class:`~repro.experiments.runner.SweepHealthReport`.

    Accepts the dataclass itself or its ``to_dict()`` form, so bench reports
    loaded back from JSON render identically to live runs.
    """
    payload = health.to_dict() if hasattr(health, "to_dict") else dict(health)
    rows = [
        ("jobs supervised", payload.get("jobs", 0)),
        ("attempts", payload.get("attempts", 0)),
        ("retries", payload.get("retries", 0)),
        ("timeouts", payload.get("timeouts", 0)),
        ("pool rebuilds", payload.get("pool_rebuilds", 0)),
        ("degraded (in-process)", payload.get("degraded", 0)),
        ("dead-lettered", payload.get("dead_lettered",
                                      len(payload.get("dead_letters", [])))),
    ]
    return format_table(["metric", "count"], rows, title=title)


def _last_line(text: str) -> str:
    lines = [line for line in str(text).strip().splitlines() if line.strip()]
    return lines[-1] if lines else ""


def format_dead_letters(dead_letters: Sequence[object],
                        title: str = "dead-lettered jobs") -> str:
    """Render dead letters (dataclasses or their ``to_dict()`` forms), one per line.

    Full tracebacks are deliberately reduced to their last line here — the
    complete text stays on the :class:`~repro.experiments.runner.DeadLetter`
    records (and in ``--json`` bench/health payloads) for forensics; the
    human summary needs *which* job died of *what*, not forty frames each.
    """
    lines: List[str] = [title] if title else []
    for letter in dead_letters:
        payload = letter.to_dict() if hasattr(letter, "to_dict") else dict(letter)
        line = (f"  {payload['label']} (attempts {payload.get('attempts', '?')}): "
                f"{_last_line(payload.get('error', '')) or 'unknown error'}")
        fallback = _last_line(payload.get("fallback_error", ""))
        if fallback:
            line += f"; in-process fallback: {fallback}"
        lines.append(line)
    return "\n".join(lines)


def format_persisted_health(health: Mapping[str, int],
                            title: str = "sweep health (all processes)") -> str:
    """Render the ledger-aggregated health block of ``persisted_cache_stats``.

    Counts are sums over every runner that flushed supervision counters into
    the cache directory (possibly from several shard hosts); the retry rate
    says how flaky the fleet actually was, dead-lettered whether anything was
    lost.
    """
    attempts = health.get("attempts", 0)
    retries = health.get("retries", 0)
    rows = [
        ("runs", health.get("runs", 0)),
        ("jobs supervised", health.get("jobs", 0)),
        ("attempts", attempts),
        ("retries", retries),
        ("retry rate", format_percent(retries / attempts) if attempts else "n/a"),
        ("timeouts", health.get("timeouts", 0)),
        ("pool rebuilds", health.get("pool_rebuilds", 0)),
        ("degraded (in-process)", health.get("degraded", 0)),
        ("dead-lettered", health.get("dead_lettered", 0)),
    ]
    return format_table(["metric", "value"], rows, title=title)


def per_suite_table(per_suite: Mapping[str, Mapping[str, float]],
                    value_format=format_speedup, title: str = "") -> str:
    """Render a {suite: {config: value}} mapping in the paper's figure layout."""
    suites = list(per_suite.keys())
    configs: List[str] = []
    for values in per_suite.values():
        for name in values:
            if name not in configs:
                configs.append(name)
    rows = []
    for config in configs:
        row = [config]
        for suite in suites:
            value = per_suite[suite].get(config)
            row.append(value_format(value) if value is not None else "-")
        rows.append(row)
    return format_table(["config"] + suites, rows, title=title)
