"""Experiment runner: generates workloads once and runs named configurations over them.

The runner caches traces, Load Inspector reports and simulation results, so a
figure harness that shares configurations with another figure does not pay for
the simulation twice.  Workload count and trace length are parameters: the
benchmarks use a reduced set (a few workloads per suite, a few thousand
instructions) so the whole suite finishes in minutes, while the full
90-workload sweep of the paper is available by passing ``per_suite=None``.

The execution layer is split so serial and parallel runners share one
planning/aggregation core, with every expensive phase behind an overridable
hook:

* :meth:`ExperimentRunner.run_config` plans the outstanding
  :class:`SimulationJob` list (consulting the optional on-disk
  :class:`~repro.experiments.cache.ResultCache` first), hands the jobs to
  :meth:`ExperimentRunner._execute_jobs`, and commits the merged results
  *atomically* — either every selected workload gets a result or none does,
  so a config factory raising mid-sweep can never leave a partially populated
  :class:`WorkloadRun` that later aggregation misreads as complete.
* :meth:`ExperimentRunner.run_smt_config` follows the same pipeline for the
  paper's SMT2 pair sweeps: it plans :class:`SmtJob` records, consults the
  result cache (SMT entries round-trip through
  :meth:`~repro.pipeline.smt.SmtResult.to_dict`), executes the outstanding
  jobs via the :meth:`ExperimentRunner._execute_smt_jobs` hook and commits the
  per-pair results atomically into an in-memory store keyed by config name.
* :meth:`ExperimentRunner.workloads` generates traces and Load Inspector
  reports through the :meth:`ExperimentRunner._generate_workloads` hook, so
  cold starts can shard trace synthesis too.  Reports are served from the
  optional on-disk :class:`~repro.experiments.cache.ReportCache` when one is
  attached; traces are always regenerated from the spec's seed, which keeps
  them bit-identical at any worker count.

The base class runs every hook serially in-process;
:class:`~repro.experiments.parallel.ParallelExperimentRunner` overrides just
the hooks to shard work over a process pool.  All hook results merge into
dictionaries keyed by workload name (or pair), so shard completion order never
affects an aggregate.

Both ``run_config`` and ``run_smt_config`` additionally accept a
:class:`Shard` (``K/N``), which restricts execution to a deterministic slice
of the planned job list — the distribution primitive behind ``repro sweep
--shard K/N``: N hosts pointed at one shared cache directory cover the full
suite disjointly, and any subsequent unsharded run folds the per-shard cache
entries into results bit-identical to a serial unsharded sweep.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.analysis.load_inspector import GlobalStableReport, inspect_trace
from repro.analysis.stats_utils import filtered_geomean
from repro.experiments.cache import ReportCache, ResultCache, persist_health_stats
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import OutOfOrderCore
from repro.pipeline.smt import SMT_SECOND_THREAD_BASE_PC, SmtResult, simulate_smt_pair
from repro.pipeline.stats import SimulationResult
from repro.workloads.generator import generate_trace
from repro.workloads.suites import (
    SUITE_NAMES,
    WorkloadSpec,
    round_robin_specs,
    workload_specs_for_suite,
)
from repro.workloads.trace import Trace

#: A configuration may be a CoreConfig, a zero-argument factory, or a builder
#: taking (trace, report) - the latter is needed by oracle-based configurations.
ConfigLike = Union[CoreConfig, Callable[[], CoreConfig],
                   Callable[[Trace, GlobalStableReport], CoreConfig]]

_Item = TypeVar("_Item")


@dataclass(frozen=True)
class Shard:
    """One slice (``index`` of ``count``, 1-based) of a distributed sweep.

    Membership is decided by an item's ordinal in the *sorted canonical item
    list* (all workload names, or all SMT pairs), never by its position in the
    residual job list — so every host computes the same partition regardless
    of what its local cache already holds, and N shards sharing one cache
    directory cover the full suite disjointly.
    """

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("shard count must be at least 1")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI spelling ``K/N`` (1-based shard K of N)."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError(text)
            return cls(index=int(head), count=int(tail))
        except ValueError:
            raise ValueError(
                f"shard must look like K/N with 1 <= K <= N, got {text!r}") from None

    def select(self, items: Sequence[_Item]) -> List[_Item]:
        """The members of ``items`` this shard owns, in sorted canonical order."""
        ordered = sorted(items)
        return [item for ordinal, item in enumerate(ordered)
                if ordinal % self.count == self.index - 1]


@dataclass
class WorkloadRun:
    """Everything computed for one workload."""

    spec: WorkloadSpec
    trace: Trace
    report: GlobalStableReport
    results: Dict[str, SimulationResult] = field(default_factory=dict)


@dataclass
class SimulationJob:
    """One planned (workload, configuration) simulation.

    The configuration is fully materialised (oracles built, stats-oracle PCs
    attached), so executing a job needs nothing beyond the job itself plus the
    workload's trace — which executors may regenerate deterministically from
    ``run.spec`` instead of shipping the trace across a process boundary.
    """

    config_name: str
    run: WorkloadRun
    config: CoreConfig
    cache_key: Optional[str] = None

    @property
    def workload(self) -> str:
        """The planned workload's name (the result-dictionary key)."""
        return self.run.spec.name


@dataclass
class SmtJob:
    """One planned SMT2 (workload pair, configuration) simulation.

    The first thread's trace lives in ``run``; the second thread's trace is
    *not* materialised here — executors regenerate it deterministically from
    ``second_spec`` at ``second_base_pc``, exactly as single-thread executors
    regenerate traces from ``run.spec``.
    """

    config_name: str
    pair: Tuple[str, str]
    run: WorkloadRun
    second_spec: WorkloadSpec
    config: CoreConfig
    second_base_pc: int = SMT_SECOND_THREAD_BASE_PC
    cache_key: Optional[str] = None


def sim_job_label(job: SimulationJob) -> str:
    """The canonical supervision/fault label of a single-thread job."""
    return f"sim:{job.config_name}/{job.workload}"


def smt_job_label(job: SmtJob) -> str:
    """The canonical supervision/fault label of an SMT2 pair job."""
    return f"smt:{job.config_name}/{job.pair[0]}+{job.pair[1]}"


@dataclass
class DeadLetter:
    """One job that exhausted every execution rung of a sweep.

    ``error`` is the traceback text of the last pool-side failure (remote
    workers format it before the exception crosses the process boundary, so
    the text survives pickling); ``fallback_error`` is filled when the final
    in-process degradation attempt failed too.
    """

    label: str
    attempts: int
    error: str
    fallback_error: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, embedded in health reports and ledgers."""
        return {"label": self.label, "attempts": self.attempts,
                "error": self.error, "fallback_error": self.fallback_error}


@dataclass
class SweepHealthReport:
    """Supervision accounting for every job a runner executed.

    Counters accumulate across the runner's lifetime (every ``run_config`` /
    ``run_smt_config`` / orchestrated wave), are rendered by
    ``repro.experiments.reporting.format_health_report`` and flushed to the
    cache directory's counter ledger on close, so ``repro cache stats``
    surfaces retry/timeout/dead-letter rates across every process sharing a
    sweep directory.
    """

    jobs: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: int = 0
    dead_letters: List[DeadLetter] = field(default_factory=list)

    @property
    def dead_lettered(self) -> int:
        """How many jobs failed every rung (pool retries + in-process)."""
        return len(self.dead_letters)

    @property
    def healthy(self) -> bool:
        """True when every job succeeded on its first attempt in the pool."""
        return not (self.retries or self.timeouts or self.pool_rebuilds
                    or self.degraded or self.dead_letters)

    def counters(self) -> Dict[str, int]:
        """The integer counters (ledger form; dead letters reduce to a count)."""
        return {"jobs": self.jobs, "attempts": self.attempts,
                "retries": self.retries, "timeouts": self.timeouts,
                "pool_rebuilds": self.pool_rebuilds, "degraded": self.degraded,
                "dead_lettered": self.dead_lettered}

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable form (embedded in bench reports)."""
        payload: Dict[str, object] = dict(self.counters())
        payload["dead_letters"] = [letter.to_dict()
                                   for letter in self.dead_letters]
        return payload


class SweepExecutionError(RuntimeError):
    """One or more jobs dead-lettered after every retry/degradation rung.

    Subclasses :class:`RuntimeError` and embeds the last failure's traceback
    text in its message, so callers matching on the underlying error's text
    (and the atomic-commit tests doing exactly that) keep working.  Carries
    the wave's successes so the partial-commit layer can journal them to the
    on-disk cache before the error propagates — which is what makes the cache
    a resume journal: a rerun (or ``repro sweep --resume``) re-executes only
    the jobs that are genuinely missing.

    ``partial`` is set by each ``_execute_*`` hook to its merged-dictionary
    return shape (results keyed exactly as the hook would have keyed them).
    """

    def __init__(self, dead_letters: Sequence[DeadLetter],
                 health: "SweepHealthReport"):
        labels = ", ".join(letter.label for letter in dead_letters[:5])
        if len(dead_letters) > 5:
            labels += f", ... ({len(dead_letters) - 5} more)"
        detail = dead_letters[-1].error if dead_letters else ""
        super().__init__(
            f"{len(dead_letters)} job(s) dead-lettered after retries: "
            f"{labels}\nlast failure:\n{detail}")
        self.dead_letters = list(dead_letters)
        self.health = health
        #: Raw supervisor successes (executor-internal shape); the hooks
        #: reduce these into ``partial``.
        self.results: List[object] = []
        self.partial: Optional[object] = None


class ExperimentRunner:
    """Runs named configurations over a (possibly reduced) workload set.

    When a :class:`~repro.experiments.cache.ResultCache` is attached, every
    planned job consults the on-disk store before simulating and publishes its
    result afterwards, so reruns and figure harnesses sharing a cache directory
    skip simulation entirely on warm entries.
    """

    def __init__(self, per_suite: Optional[int] = 2, instructions: int = 6000,
                 num_registers: int = 16,
                 suites: Sequence[str] = SUITE_NAMES,
                 attach_stats_oracle: bool = True,
                 cache: Optional[ResultCache] = None,
                 report_cache: Optional[ReportCache] = None):
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        self.per_suite = per_suite
        self.instructions = instructions
        self.num_registers = num_registers
        self.suites = list(suites)
        self.attach_stats_oracle = attach_stats_oracle
        self.cache = cache
        self.report_cache = report_cache
        #: Supervision accounting across this runner's lifetime.
        self.health = SweepHealthReport()
        self._flushed_health: Dict[str, int] = {}
        self._workloads: Optional[Dict[str, WorkloadRun]] = None
        self._smt_results: Dict[str, Dict[Tuple[str, str], SmtResult]] = {}

    # ---------------------------------------------------------------- workloads

    def specs(self) -> List[WorkloadSpec]:
        """The workload specs covered by this runner."""
        specs: List[WorkloadSpec] = []
        for suite in self.suites:
            suite_specs = workload_specs_for_suite(suite)
            if self.per_suite is not None:
                suite_specs = suite_specs[:self.per_suite]
            specs.extend(suite_specs)
        return specs

    def workloads(self) -> Dict[str, WorkloadRun]:
        """Generate (and cache) every workload trace and its Load Inspector report.

        Generation happens through the overridable :meth:`_generate_workloads`
        hook; the returned dictionary always follows spec order, never the
        hook's completion order.
        """
        if self._workloads is None:
            specs = self.specs()
            generated = self._generate_workloads(specs)
            missing = [spec.name for spec in specs if spec.name not in generated]
            if missing:
                raise RuntimeError(
                    f"workload generator returned no run for {missing!r}")
            self._workloads = {spec.name: generated[spec.name] for spec in specs}
        return self._workloads

    def _report_cache_key(self, spec: WorkloadSpec) -> Optional[str]:
        if self.report_cache is None:
            return None
        return self.report_cache.key_for(spec, self.instructions, self.num_registers)

    def _report_for(self, spec: WorkloadSpec, trace: Trace) -> GlobalStableReport:
        """The Load Inspector report for ``trace``, via the on-disk cache if any."""
        key = self._report_cache_key(spec)
        if key is not None:
            cached = self.report_cache.get(key)
            if cached is not None:
                return cached
        report = inspect_trace(trace)
        if key is not None:
            self.report_cache.put(key, report)
        return report

    def _generate_workloads(self, specs: Sequence[WorkloadSpec]) -> Dict[str, WorkloadRun]:
        """Generate every workload trace + report serially; subclasses shard.

        Returns runs keyed by workload name, so merging is independent of
        generation order.
        """
        runs: Dict[str, WorkloadRun] = {}
        for spec in specs:
            trace = generate_trace(spec, num_instructions=self.instructions,
                                   num_registers=self.num_registers)
            runs[spec.name] = WorkloadRun(spec=spec, trace=trace,
                                          report=self._report_for(spec, trace))
        return runs

    # ------------------------------------------------------------------ running

    def _materialise_config(self, config: ConfigLike, run: WorkloadRun) -> CoreConfig:
        if isinstance(config, CoreConfig):
            materialised = config
        else:
            try:
                materialised = config(run.trace, run.report)  # type: ignore[call-arg]
            except TypeError:
                materialised = config()  # type: ignore[call-arg]
        if self.attach_stats_oracle and materialised.stats_oracle_pcs is None:
            materialised = materialised.copy(
                stats_oracle_pcs=run.report.global_stable_pcs())
        return materialised

    def plan_jobs(self, name: str, config: ConfigLike,
                  workload_names: Optional[Sequence[str]] = None) -> List[SimulationJob]:
        """Materialise one :class:`SimulationJob` per workload still missing ``name``.

        Planning materialises every configuration *before* anything executes,
        so a factory raising mid-sweep aborts the whole sweep with the in-memory
        result store untouched.
        """
        jobs: List[SimulationJob] = []
        for workload_name, run in self.workloads().items():
            if workload_names is not None and workload_name not in workload_names:
                continue
            if name in run.results:
                continue
            core_config = self._materialise_config(config, run)
            cache_key = None
            if self.cache is not None:
                cache_key = self.cache.key_for(core_config, run.spec,
                                               self.instructions, self.num_registers)
            jobs.append(SimulationJob(config_name=name, run=run,
                                      config=core_config, cache_key=cache_key))
        return jobs

    def _simulate_job(self, job: SimulationJob) -> SimulationResult:
        """Simulate one planned single-thread job in-process."""
        core = OutOfOrderCore(job.config, [job.run.trace], name=job.config_name)
        return core.run()

    def _simulate_smt_job(self, job: SmtJob) -> SmtResult:
        """Simulate one planned SMT2 job in-process.

        The second thread's trace is regenerated at ``second_base_pc`` so the
        two threads do not alias in the PC-indexed predictors.
        """
        second_trace = generate_trace(job.second_spec,
                                      num_instructions=self.instructions,
                                      num_registers=self.num_registers,
                                      base_pc=job.second_base_pc)
        return simulate_smt_pair(job.run.trace, second_trace,
                                 job.config, name=job.config_name)

    def _dead_letter(self, label: str, attempts: int = 1,
                     error: Optional[BaseException] = None) -> DeadLetter:
        """Record one exhausted job in the health report and return the letter."""
        letter = DeadLetter(label=label, attempts=attempts,
                            error=traceback.format_exc() if error is not None
                            else "")
        self.health.dead_letters.append(letter)
        return letter

    def _execute_jobs(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationResult]:
        """Simulate every planned job serially; subclasses override to shard.

        Returns results keyed by workload name, so merging is independent of
        execution/completion order.  A failure raises
        :class:`SweepExecutionError` carrying the results completed so far
        (``partial``), so the commit layer can journal them to the on-disk
        cache before the error propagates.
        """
        results: Dict[str, SimulationResult] = {}
        for job in jobs:
            self.health.jobs += 1
            self.health.attempts += 1
            try:
                results[job.workload] = self._simulate_job(job)
            except Exception as exc:
                letter = self._dead_letter(sim_job_label(job), error=exc)
                error = SweepExecutionError([letter], self.health)
                error.partial = results
                raise error from exc
        return results

    def _execute_wave(self, jobs: Sequence[SimulationJob],
                      smt_jobs: Sequence[SmtJob] = ()
                      ) -> Tuple[Dict[Tuple[str, str], SimulationResult],
                                 Dict[Tuple[str, Tuple[str, str]], SmtResult]]:
        """Execute a mixed multi-configuration batch as one wave.

        Unlike :meth:`_execute_jobs`, whose result dictionary is keyed by
        workload alone (one configuration per call), a wave may carry jobs for
        *many* configurations at once, so results are keyed by
        ``(config_name, workload)`` and ``(config_name, pair)``.  The serial
        implementation just loops; the parallel runner overrides this to feed
        every job — single-thread and SMT alike — into one process pool
        submission, so the pool never drains between configurations or figure
        harnesses.  This is the execution hook behind the cross-figure
        :class:`~repro.experiments.orchestrator.SweepOrchestrator`.

        Like :meth:`_execute_jobs`, a failure raises
        :class:`SweepExecutionError` whose ``partial`` carries the
        ``(sim results, smt results)`` completed so far.
        """
        sim_results: Dict[Tuple[str, str], SimulationResult] = {}
        smt_results: Dict[Tuple[str, Tuple[str, str]], SmtResult] = {}
        self.health.jobs += len(jobs) + len(smt_jobs)
        try:
            for job in jobs:
                self.health.attempts += 1
                sim_results[(job.config_name, job.workload)] = \
                    self._simulate_job(job)
            for smt_job in smt_jobs:
                self.health.attempts += 1
                smt_results[(smt_job.config_name, smt_job.pair)] = \
                    self._simulate_smt_job(smt_job)
        except Exception as exc:
            raise self._wave_failure(exc, sim_results, smt_results,
                                     jobs, smt_jobs) from exc
        return sim_results, smt_results

    def _wave_failure(self, exc: BaseException,
                      sim_results: Dict[Tuple[str, str], SimulationResult],
                      smt_results: Dict[Tuple[str, Tuple[str, str]], SmtResult],
                      jobs: Sequence[SimulationJob],
                      smt_jobs: Sequence[SmtJob]) -> "SweepExecutionError":
        """Build the partial-carrying error for a serial wave failure."""
        label = "wave"
        for job in jobs:
            if (job.config_name, job.workload) not in sim_results:
                label = sim_job_label(job)
                break
        else:
            for smt_job in smt_jobs:
                if (smt_job.config_name, smt_job.pair) not in smt_results:
                    label = smt_job_label(smt_job)
                    break
        letter = self._dead_letter(label, error=exc)
        error = SweepExecutionError([letter], self.health)
        error.partial = (sim_results, smt_results)
        return error

    def _stage_cached_jobs(self, jobs: Sequence[SimulationJob]
                           ) -> Tuple[Dict[str, SimulationResult], List[SimulationJob]]:
        """Split planned jobs into (cache-served results, outstanding jobs)."""
        staged: Dict[str, SimulationResult] = {}
        outstanding: List[SimulationJob] = []
        for job in jobs:
            cached = self.cache.get(job.cache_key) if job.cache_key is not None else None
            if cached is not None:
                staged[job.workload] = cached
            else:
                outstanding.append(job)
        return staged, outstanding

    def run_config(self, name: str, config: ConfigLike,
                   workload_names: Optional[Sequence[str]] = None,
                   shard: Optional[Shard] = None) -> Dict[str, SimulationResult]:
        """Run ``config`` over the workload set; results are cached by ``name``.

        The pipeline is plan → filter-by-shard → execute → commit: when a
        :class:`Shard` is given, only the workloads that shard owns execute
        (and only their results are committed and returned); N shards sharing
        one cache directory therefore cover the full suite disjointly, and a
        later unsharded call folds the per-shard cache entries back into the
        exact result set the serial runner produces.

        Results are committed atomically: if planning, simulation or cache
        lookup raises for any workload, no workload's result store is touched.
        """
        selected: Optional[set] = None
        if shard is not None:
            selected = set(shard.select(list(self.workloads())))
            if workload_names is not None:
                selected &= set(workload_names)
            # Plan only the shard's workloads: materialising configs (oracle
            # builders, cache-key hashing) for workloads other shards own
            # would waste (N-1)/N of the planning work on every host.
            workload_names = selected
        jobs = self.plan_jobs(name, config, workload_names)
        staged, outstanding = self._stage_cached_jobs(jobs)
        if outstanding:
            try:
                staged.update(self._execute_jobs(outstanding))
            except SweepExecutionError as error:
                # Journal the failed sweep's successes to the on-disk cache
                # (never the in-memory store — the atomic-commit contract
                # holds) so a rerun re-executes only the missing jobs.
                partial = error.partial if isinstance(error.partial, dict) else {}
                self._journal_partial({job.cache_key: partial.get(job.workload)
                                       for job in outstanding}, smt=False)
                raise
        missing = [job.workload for job in jobs if job.workload not in staged]
        if missing:
            raise RuntimeError(
                f"executor returned no result for workloads {missing!r} of config {name!r}")
        # Commit only after every job succeeded — and before the disk-store
        # writes, so a cache I/O failure (disk full, permissions) cannot throw
        # away an entire successfully simulated sweep.  The disk puts below
        # are also what append each entry's columnar warehouse row: every
        # commit path (serial, parallel, orchestrated, journaled) funnels
        # through cache.put/put_smt, which keeps the warehouse in lockstep
        # with the journal without any per-path wiring.
        workloads = self.workloads()
        for workload_name, result in staged.items():
            workloads[workload_name].results[name] = result
        if self.cache is not None:
            for job in outstanding:
                self.cache.put(job.cache_key, staged[job.workload])
        if selected is not None:
            # Shard coverage, not residual-plan coverage: workloads this shard
            # owns that were committed by an earlier call still belong in the
            # returned slice.  Iterate the workload dict (spec order) so the
            # returned mapping's order is deterministic, never set order.
            return {workload_name: run.results[name]
                    for workload_name, run in workloads.items()
                    if workload_name in selected and name in run.results}

        results: Dict[str, SimulationResult] = {}
        for workload_name, run in workloads.items():
            if workload_names is not None and workload_name not in workload_names:
                continue
            results[workload_name] = run.results[name]
        return results

    def _journal_partial(self, by_key: Dict[Optional[str], object],
                         smt: bool) -> None:
        """Best-effort commit of a failed sweep's successes to the disk cache.

        Runs on the error path, so every cache I/O failure is absorbed — a
        full disk must never mask the execution error being propagated.  The
        in-memory stores are deliberately untouched: partial results are a
        *journal* for resume, not a committed sweep.  Each journaled put also
        appends the entry's columnar warehouse row (inside ``cache.put``), so
        the warehouse agrees with the journal even on the failure path — a
        ``--resume`` of this sweep finds both in lockstep.
        """
        if self.cache is None:
            return
        for key, result in by_key.items():
            if key is None or result is None:
                continue
            try:
                if smt:
                    self.cache.put_smt(key, result)
                else:
                    self.cache.put(key, result)
            except OSError:
                pass

    # ---------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release executor resources and flush cache counters to the ledger.

        The flush is what makes ``repro cache stats`` see this process's
        hit/miss counters after the run is gone; it writes only deltas, so
        closing a runner repeatedly (context manager plus explicit call)
        never double-counts.  Supervision health counters flush the same way
        (class ``SweepSupervisor`` in the ledger), so retry/timeout/dead-letter
        rates are visible cross-process too.
        """
        if self.cache is not None:
            counters = self.health.counters()
            delta = {name: value - self._flushed_health.get(name, 0)
                     for name, value in counters.items()}
            if any(delta.values()):
                persist_health_stats(self.cache.directory, delta)
                self._flushed_health = counters
        for cache in (self.cache, self.report_cache):
            if cache is not None:
                cache.persist_stats()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- reporting

    def speedups(self, config_name: str, baseline_name: str = "baseline") -> Dict[str, float]:
        """Per-workload speedup of ``config_name`` over ``baseline_name``.

        Workloads where either run retired in zero cycles (degenerate
        tiny-trace configurations) are skipped: they have no meaningful ratio
        and would otherwise crash the geomean aggregations downstream.
        """
        speedups: Dict[str, float] = {}
        for workload_name, run in self.workloads().items():
            if config_name in run.results and baseline_name in run.results:
                baseline_cycles = run.results[baseline_name].cycles
                config_cycles = run.results[config_name].cycles
                if baseline_cycles > 0 and config_cycles > 0:
                    speedups[workload_name] = baseline_cycles / config_cycles
        return speedups

    def geomean_speedup(self, config_name: str, baseline_name: str = "baseline") -> float:
        """Geomean of :meth:`speedups` over every workload with both results."""
        return filtered_geomean(self.speedups(config_name, baseline_name).values())

    def speedups_by_suite(self, config_name: str,
                          baseline_name: str = "baseline") -> Dict[str, float]:
        """Geomean speedup per suite plus the overall geomean (key ``GEOMEAN``)."""
        by_suite: Dict[str, List[float]] = {suite: [] for suite in self.suites}
        for workload_name, value in self.speedups(config_name, baseline_name).items():
            suite = self.workloads()[workload_name].spec.suite
            by_suite[suite].append(value)
        summary = {suite: filtered_geomean(values)
                   for suite, values in by_suite.items()}
        all_values = [v for values in by_suite.values() for v in values]
        summary["GEOMEAN"] = filtered_geomean(all_values)
        return summary

    def metric_ratio(self, config_name: str, metric: Callable[[SimulationResult], float],
                     baseline_name: str = "baseline") -> Dict[str, float]:
        """Per-workload ratio of an arbitrary metric against the baseline."""
        ratios: Dict[str, float] = {}
        for workload_name, run in self.workloads().items():
            if config_name in run.results and baseline_name in run.results:
                base_value = metric(run.results[baseline_name])
                new_value = metric(run.results[config_name])
                if base_value:
                    ratios[workload_name] = new_value / base_value
        return ratios

    # --------------------------------------------------------------------- SMT

    def smt_pairs(self, max_pairs: Optional[int] = None) -> List[Tuple[str, str]]:
        """Deterministic cross-suite workload pairings for SMT2 experiments.

        Specs are interleaved round-robin across suites (every suite's first
        workload, then every suite's second, ...) and consecutive entries are
        paired, so adjacent pair members come from different suites wherever
        suite sizes allow.  The order is a pure function of the spec list:
        ``max_pairs`` only truncates, and growing ``per_suite`` only appends
        pairs — the existing prefix never reshuffles (regression-pinned in
        ``tests/test_experiments.py``).
        """
        names = [spec.name for spec in round_robin_specs(self.specs())]
        pairs = [(names[index], names[index + 1])
                 for index in range(0, len(names) - 1, 2)]
        if max_pairs is not None:
            pairs = pairs[:max_pairs]
        return pairs

    def plan_smt_jobs(self, name: str, config: ConfigLike,
                      max_pairs: Optional[int] = None) -> List[SmtJob]:
        """Materialise one :class:`SmtJob` per pair still missing ``name``.

        Mirrors :meth:`plan_jobs`: every configuration is materialised before
        anything executes, so a factory raising mid-sweep aborts the whole SMT
        sweep with the in-memory result store untouched.
        """
        committed = self._smt_results.get(name, {})
        workloads = self.workloads()
        jobs: List[SmtJob] = []
        for pair in self.smt_pairs(max_pairs):
            if pair in committed:
                continue
            first = workloads[pair[0]]
            second_spec = workloads[pair[1]].spec
            core_config = self._materialise_config(config, first)
            cache_key = None
            if self.cache is not None:
                cache_key = self.cache.key_for_smt(
                    core_config, first.spec, second_spec,
                    self.instructions, self.num_registers)
            jobs.append(SmtJob(config_name=name, pair=pair, run=first,
                               second_spec=second_spec, config=core_config,
                               cache_key=cache_key))
        return jobs

    def _execute_smt_jobs(self, jobs: Sequence[SmtJob]
                          ) -> Dict[Tuple[str, str], SmtResult]:
        """Simulate every planned SMT job serially; subclasses override to shard.

        Results are keyed by pair, so merging is independent of execution
        order.  Failures follow the :meth:`_execute_jobs` contract: a
        :class:`SweepExecutionError` with the completed pairs in ``partial``.
        """
        results: Dict[Tuple[str, str], SmtResult] = {}
        for job in jobs:
            self.health.jobs += 1
            self.health.attempts += 1
            try:
                results[job.pair] = self._simulate_smt_job(job)
            except Exception as exc:
                letter = self._dead_letter(smt_job_label(job), error=exc)
                error = SweepExecutionError([letter], self.health)
                error.partial = results
                raise error from exc
        return results

    def _stage_cached_smt_jobs(self, jobs: Sequence[SmtJob]
                               ) -> Tuple[Dict[Tuple[str, str], SmtResult], List[SmtJob]]:
        """Split planned SMT jobs into (cache-served results, outstanding jobs)."""
        staged: Dict[Tuple[str, str], SmtResult] = {}
        outstanding: List[SmtJob] = []
        for job in jobs:
            cached = (self.cache.get_smt(job.cache_key)
                      if job.cache_key is not None else None)
            if cached is not None:
                staged[job.pair] = cached
            else:
                outstanding.append(job)
        return staged, outstanding

    def run_smt_config(self, name: str, config: ConfigLike,
                       max_pairs: Optional[int] = None,
                       shard: Optional[Shard] = None) -> Dict[Tuple[str, str], SmtResult]:
        """Run an SMT2 configuration over the cross-suite pairs.

        Follows the same plan → filter-by-shard → execute → commit pipeline as
        :meth:`run_config`: per-pair results are memoised under ``name``, warm
        cache entries skip simulation entirely, a :class:`Shard` restricts the
        sweep to the pairs that shard owns, and the commit is atomic — a
        failure anywhere in the sweep leaves the in-memory store untouched.
        """
        pairs = self.smt_pairs(max_pairs)
        if shard is not None:
            owned = set(shard.select(pairs))
            pairs = [pair for pair in pairs if pair in owned]
        jobs = self.plan_smt_jobs(name, config, max_pairs)
        if shard is not None:
            jobs = [job for job in jobs if job.pair in owned]
        staged, outstanding = self._stage_cached_smt_jobs(jobs)
        if outstanding:
            try:
                staged.update(self._execute_smt_jobs(outstanding))
            except SweepExecutionError as error:
                # Same resume-journal contract as run_config: disk cache only.
                partial = error.partial if isinstance(error.partial, dict) else {}
                self._journal_partial({job.cache_key: partial.get(job.pair)
                                       for job in outstanding}, smt=True)
                raise
        missing = [job.pair for job in jobs if job.pair not in staged]
        if missing:
            raise RuntimeError(
                f"executor returned no result for SMT pairs {missing!r} of config {name!r}")
        # Commit only after every job succeeded, and before the disk-store
        # writes so a cache I/O failure cannot discard a finished sweep.
        committed = self._smt_results.setdefault(name, {})
        committed.update(staged)
        if self.cache is not None:
            for job in outstanding:
                self.cache.put_smt(job.cache_key, staged[job.pair])
        return {pair: committed[pair] for pair in pairs}
