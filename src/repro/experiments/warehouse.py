"""Columnar results warehouse over the content-addressed object cache.

The object store under a cache directory holds one JSON blob per simulation
(:mod:`repro.experiments.cache`), which is the right shape for *replaying* a
result but the wrong shape for *analytics*: every ``repro cache stats`` or
cross-sweep aggregation ("geomean speedup by suite across all cached sweeps")
would otherwise re-decode thousands of full per-entry payloads.  This module
maintains a flat, engine-independent table of per-result rows next to the
object store, so aggregation reads columns instead of blobs:

* **Write path.**  :class:`ResultCache.put`/``put_smt`` (``cache.py``) append
  one :class:`WarehouseRow` per committed entry through a
  :class:`WarehouseWriter` — an append-only JSONL file per process under
  ``<cache-dir>/.warehouse/``.  Every commit path funnels through those two
  methods (serial and parallel runners, orchestrated waves, partial-wave
  journals, ``--resume`` re-execution), so the warehouse can never disagree
  with the cache journal: a journaled entry and its row are written by the
  same ``put`` call.  Appends are observability-grade: I/O failures are
  absorbed, and ``REPRO_WAREHOUSE=0`` disables them entirely.
* **Compaction.**  :func:`compact_warehouse` folds the accumulated row files
  into one columnar segment (struct-of-arrays JSON, ``*.whseg``), crash-safely
  mirroring the stats ledger: an ``O_EXCL`` lock serialises compactors, the
  output lists the sources it ``folded`` so readers exclude leftover
  originals, and a failed write rolls back to the originals.
* **Rebuild.**  :func:`rebuild_warehouse` regenerates every row from the
  object store itself (``repro warehouse rebuild``), so pre-warehouse caches
  migrate losslessly.  Row derivation is a pure function of ``(key, entry
  payload)`` — identical on the write path and the rebuild path — which is
  what the differential suite in ``tests/test_warehouse.py`` proves
  bit-for-bit.
* **Read path.**  :func:`load_rows` serves ``repro query``, ``repro cache
  stats`` and the ``warehouse`` figure harness from the columnar files alone
  (zero object-store decodes); when no warehouse files exist it falls back to
  an in-memory object-store scan, so analytics never require a migration
  first.

File suffixes are deliberately never ``.json``: the object store's entry
scans glob ``*/*.json`` and must not mistake warehouse files for entries,
exactly like the ``.stats`` ledger files.

Bump :data:`WAREHOUSE_SCHEMA_VERSION` whenever the row layout changes;
RL003 pins :meth:`WarehouseRow.to_dict`'s key set against it.
"""

from __future__ import annotations

import dataclasses
import fcntl
import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.stats_utils import filtered_geomean, median
from repro.pipeline.smt import SmtResult
from repro.pipeline.stats import SimulationResult
from repro.power.power_model import CorePowerModel
from repro.workloads.suites import get_workload_spec

#: Subdirectory of a cache directory holding the columnar warehouse files.
WAREHOUSE_SUBDIR = ".warehouse"

#: Version of the warehouse row/segment layout; bump on any row-shape change
#: (RL003 gates :meth:`WarehouseRow.to_dict` drift on this constant).
WAREHOUSE_SCHEMA_VERSION = 1

#: Environment variable disabling warehouse appends (``0``/``false``/``no``/
#: ``off``).  Reads stay available either way; the rebuild command restores a
#: warehouse that was written with appends off.
WAREHOUSE_ENV = "REPRO_WAREHOUSE"

#: Suffix of live append-only row files (one JSON object per line).
_ROWS_SUFFIX = ".rows.jsonl"

#: Suffix of columnar segment files (struct-of-arrays JSON).
_SEGMENT_SUFFIX = ".whseg"

#: A compaction lock older than this is from a dead compactor and may be broken.
_COMPACT_LOCK_STALE_SECONDS = 3600.0

#: Column order of the flat row schema.  ``key`` is the cache key (already
#: engine-independent by the RL002 purity contract), ``schema`` the
#: ``SCHEMA_VERSION`` of the source cache entry.
ROW_COLUMNS = ("key", "kind", "workload", "suite", "config", "cycles",
               "instructions", "ipc", "coverage", "power", "l1d_accesses",
               "schema")

#: Metrics ``repro query`` can aggregate (numeric row columns).
QUERY_METRICS = ("ipc", "cycles", "instructions", "coverage", "power",
                 "l1d_accesses")


@dataclasses.dataclass
class WarehouseRow:
    """One flat, engine-independent analytics row per cached result.

    Every field derives purely from the cache key and the entry payload, so
    the write path (live result object) and :func:`rebuild_warehouse`
    (decoded payload) produce bit-identical rows.
    """

    key: str
    kind: str
    workload: str
    suite: str
    config: str
    cycles: int
    instructions: int
    ipc: float
    coverage: float
    power: float
    l1d_accesses: int
    schema: int

    def to_dict(self) -> Dict[str, object]:
        """The row as a plain dictionary (JSONL/columnar form)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "workload": self.workload,
            "suite": self.suite,
            "config": self.config,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "coverage": self.coverage,
            "power": self.power,
            "l1d_accesses": self.l1d_accesses,
            "schema": self.schema,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WarehouseRow":
        """Rebuild a row from :meth:`to_dict` output (missing keys raise)."""
        return cls(
            key=str(data["key"]),
            kind=str(data["kind"]),
            workload=str(data["workload"]),
            suite=str(data["suite"]),
            config=str(data["config"]),
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            ipc=float(data["ipc"]),
            coverage=float(data["coverage"]),
            power=float(data["power"]),
            l1d_accesses=int(data["l1d_accesses"]),
            schema=int(data["schema"]),
        )


# ------------------------------------------------------------- row derivation


def suite_of(workload: str) -> str:
    """The suite label a workload name resolves to via the registry.

    SMT pair names (``a+b``) resolve each thread and join with ``+``.  Names
    outside the registry — custom specs constructed in tests — resolve to the
    empty string.  Both the write path and the rebuild path derive suites
    through this one function, so the two can never disagree on a row.
    """
    suites = []
    for part in workload.split("+"):
        try:
            suites.append(get_workload_spec(part).suite)
        except KeyError:
            suites.append("")
    return "+".join(suites) if any(suites) else ""


def _coverage_of(result: SimulationResult) -> float:
    """Fraction of renamed loads eliminated or value-predicted (0.0 if none)."""
    stats = result.stats
    covered = stats.eliminated_loads_retired + stats.value_predicted_loads
    if stats.loads_renamed <= 0:
        return 0.0
    return covered / stats.loads_renamed


def row_for_result(key: str, result: SimulationResult,
                   schema_version: int) -> WarehouseRow:
    """The warehouse row of one single-thread result entry."""
    return WarehouseRow(
        key=key,
        kind="result",
        workload=result.trace_name,
        suite=suite_of(result.trace_name),
        config=result.config_name,
        cycles=result.cycles,
        instructions=result.instructions,
        ipc=result.ipc,
        coverage=_coverage_of(result),
        power=CorePowerModel().evaluate(result.power_events).total,
        l1d_accesses=int(result.power_events.get("l1d_accesses", 0)),
        schema=schema_version,
    )


def row_for_smt(key: str, smt: SmtResult, schema_version: int) -> WarehouseRow:
    """The warehouse row of one SMT pair entry (kind ``smt``)."""
    row = row_for_result(key, smt.result, schema_version)
    row.kind = "smt"
    return row


def canonical_rows(rows: Sequence[WarehouseRow]) -> List[WarehouseRow]:
    """Deduplicate by key and impose the canonical row order.

    Entries are content-addressed, so two rows sharing a key are identical;
    the first occurrence wins.  The order — ``(kind, config, workload, key)``
    — is a pure function of row content, so the same logical warehouse always
    reads back identically whatever mixture of row files and segments holds
    it (the bit-identity anchor of the differential suite).
    """
    seen: Dict[str, WarehouseRow] = {}
    for row in rows:
        seen.setdefault(row.key, row)
    return sorted(seen.values(),
                  key=lambda r: (r.kind, r.config, r.workload, r.key))


# ------------------------------------------------------------- columnar codec


def encode_rows(rows: Sequence[WarehouseRow]) -> Dict[str, object]:
    """Encode rows into the columnar (struct-of-arrays) segment payload."""
    dicts = [row.to_dict() for row in rows]
    return {
        "warehouse_schema": WAREHOUSE_SCHEMA_VERSION,
        "rows": len(dicts),
        "columns": {name: [entry[name] for entry in dicts]
                    for name in ROW_COLUMNS},
    }


def decode_rows(payload: Dict[str, object]) -> List[WarehouseRow]:
    """Decode one columnar segment payload back into rows.

    Raises ``ValueError`` on a schema mismatch or ragged/missing columns, so
    callers treat a malformed segment as absent rather than half-reading it.
    """
    if payload.get("warehouse_schema") != WAREHOUSE_SCHEMA_VERSION:
        raise ValueError("warehouse schema mismatch")
    columns = payload.get("columns")
    if not isinstance(columns, dict):
        raise ValueError("segment carries no columns")
    count = int(payload.get("rows", -1))
    series: List[List[object]] = []
    for name in ROW_COLUMNS:
        column = columns.get(name)
        if not isinstance(column, list) or len(column) != count:
            raise ValueError(f"column {name!r} missing or ragged")
        series.append(column)
    return [WarehouseRow.from_dict(dict(zip(ROW_COLUMNS, values)))
            for values in zip(*series)] if count else []


# ---------------------------------------------------------------- write path


def warehouse_enabled() -> bool:
    """Whether warehouse appends are on (:data:`WAREHOUSE_ENV` can disable)."""
    raw = os.environ.get(WAREHOUSE_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in {"0", "false", "no", "off"}


def warehouse_dir(directory: Union[str, Path]) -> Path:
    """The warehouse subdirectory of a cache directory."""
    return Path(directory) / WAREHOUSE_SUBDIR


class WarehouseWriter:
    """Appends rows to one per-process JSONL file under ``.warehouse/``.

    One writer per :class:`~repro.experiments.cache.ResultCache` instance;
    the file name embeds the pid and a fresh UUID, so any number of
    concurrent processes (the N hosts of a sharded sweep) append without
    contention.  Each append is a single ``O_APPEND``-mode line write, so a
    crash can tear at most the final line — which the readers skip — and
    every line before it stays in agreement with the cache journal.  Like
    the stats ledger, append I/O failures are absorbed: the warehouse is an
    analytics index, never a correctness requirement.

    Appends and :func:`compact_warehouse` coordinate through an advisory
    ``flock`` per row file: the compactor locks every source before its
    final read and unlink, and an appender that acquires the lock only to
    find its file already folded (the path no longer names its inode)
    rotates to a fresh file and retries — so a row can never land in the
    window between a compactor's read and its unlink and silently vanish.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = warehouse_dir(directory)
        self.enabled = warehouse_enabled()
        self._path: Optional[Path] = None

    def append(self, row: WarehouseRow) -> bool:
        """Append one row; returns False when disabled or on I/O failure."""
        if not self.enabled:
            return False
        line = json.dumps(row.to_dict(), sort_keys=True).encode("utf-8") + b"\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Bounded retry: each miss means a compactor folded our file
            # around this append, and the next round rotates to a fresh name.
            # A folded *name* is never reused (O_EXCL on a new UUID, never
            # O_CREAT on the old path): segments list folded names to hide
            # leftover sources, so recreating one would hide live rows.
            for _ in range(4):
                if self._path is None:
                    self._path = self.directory / (
                        f"{os.getpid()}-{uuid.uuid4().hex}{_ROWS_SUFFIX}")
                    fd = os.open(self._path,
                                 os.O_WRONLY | os.O_APPEND | os.O_CREAT
                                 | os.O_EXCL)
                else:
                    try:
                        fd = os.open(self._path, os.O_WRONLY | os.O_APPEND)
                    except FileNotFoundError:
                        # A compactor folded and unlinked our file.
                        self._path = None
                        continue
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if os.fstat(fd).st_nlink == 0:
                        # Unlinked between our open and our lock: this inode
                        # was already folded; the row must go elsewhere.
                        self._path = None
                        continue
                    os.write(fd, line)
                    return True
                finally:
                    os.close(fd)
            return False
        except OSError:
            return False


def _write_segment(directory: Path, payload: Dict[str, object],
                   name: str) -> Optional[Path]:
    """Atomically write one segment file; returns None on any I/O failure.

    Mirrors the stats ledger's ``_write_ledger``: temp file + rename, and the
    temp prefix starts with a dot so a writer that dies mid-flush leaves an
    orphan the ``repro cache verify`` scan surfaces (and ``--purge`` cleans).
    """
    handle = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".wh.", suffix=".tmp", delete=False)
        with handle:
            json.dump(payload, handle)
        target = directory / name
        os.replace(handle.name, target)
        return target
    except OSError:
        if handle is not None:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
        return None


# ----------------------------------------------------------------- read path


def _parse_row_file(path: Path) -> List[WarehouseRow]:
    """Rows of one JSONL file; torn or malformed lines are skipped."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    return _parse_rows_text(text)


def _parse_rows_text(text: str) -> List[WarehouseRow]:
    """Rows of JSONL text; torn or malformed lines are skipped."""
    rows: List[WarehouseRow] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                continue
            rows.append(WarehouseRow.from_dict(data))
        except (ValueError, KeyError, TypeError):
            continue
    return rows


def _read_sources(directory: Path
                  ) -> Tuple[List[Tuple[Path, List[WarehouseRow]]], List[Path]]:
    """Parseable warehouse files as ``(live sources, superseded leftovers)``.

    A compacted/rebuilt segment lists the files it ``folded``; any of those
    still on disk (a compactor died between writing its output and unlinking
    the sources) is excluded from the live set and returned separately, so
    the crash window can never double-count — exactly the stats-ledger
    contract.  Unreadable files are skipped: one bad writer must never poison
    analytics for every host sharing the directory.
    """
    live: List[Tuple[Path, List[WarehouseRow]]] = []
    superseded: Set[str] = set()
    if not directory.is_dir():
        return live, []
    parsed: List[Tuple[Path, List[WarehouseRow]]] = []
    for path in sorted(directory.glob(f"*{_SEGMENT_SUFFIX}")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            rows = decode_rows(payload)
            folded = [str(name) for name in payload.get("folded", [])]
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            continue
        superseded.update(folded)
        parsed.append((path, rows))
    for path in sorted(directory.glob(f"*{_ROWS_SUFFIX}")):
        parsed.append((path, _parse_row_file(path)))
    stale = [path for path, _ in parsed if path.name in superseded]
    live = [(path, rows) for path, rows in parsed
            if path.name not in superseded]
    return live, stale


def warehouse_present(directory: Union[str, Path]) -> bool:
    """Whether any warehouse file exists under the cache directory."""
    base = warehouse_dir(directory)
    if not base.is_dir():
        return False
    return (next(base.glob(f"*{_SEGMENT_SUFFIX}"), None) is not None
            or next(base.glob(f"*{_ROWS_SUFFIX}"), None) is not None)


def read_rows(directory: Union[str, Path]) -> List[WarehouseRow]:
    """Every live warehouse row, deduplicated and in canonical order.

    Reads only warehouse files — never an object-store entry — so this is
    the zero-decode path the acceptance criterion instruments.
    """
    live, _ = _read_sources(warehouse_dir(directory))
    merged: List[WarehouseRow] = []
    for _, rows in live:
        merged.extend(rows)
    return canonical_rows(merged)


def scan_object_store(directory: Union[str, Path],
                      schema_version: int) -> List[WarehouseRow]:
    """Derive every row straight from the object store (full JSON decodes).

    The slow path: used by ``repro warehouse rebuild`` to migrate existing
    caches and by :func:`load_rows` as the fallback when no warehouse files
    exist yet.  Entries with a different schema version, report entries and
    undecodable payloads are skipped, matching what the write path would
    have appended.
    """
    rows: List[WarehouseRow] = []
    base = Path(directory)
    if not base.is_dir():
        return rows
    for path in sorted(base.glob("*/*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        if payload.get("schema") != schema_version:
            continue
        kind = str(payload.get("kind", "result"))
        key = str(payload.get("key", path.stem))
        try:
            if kind == "result":
                rows.append(row_for_result(
                    key, SimulationResult.from_dict(payload["result"]),
                    schema_version))
            elif kind == "smt":
                rows.append(row_for_smt(
                    key, SmtResult.from_dict(payload["result"]),
                    schema_version))
        except (ValueError, KeyError, TypeError):
            continue
    return canonical_rows(rows)


def load_rows(directory: Union[str, Path], schema_version: int,
              allow_fallback: bool = True) -> List[WarehouseRow]:
    """Rows for analytics: warehouse segments first, object store as fallback.

    When any warehouse file exists the read is tabular-only (zero object
    decodes); a cache with no warehouse — written before this layer existed,
    or with ``REPRO_WAREHOUSE=0`` — falls back to
    :func:`scan_object_store` unless ``allow_fallback`` is off.
    """
    if warehouse_present(directory):
        return read_rows(directory)
    if allow_fallback:
        return scan_object_store(directory, schema_version)
    return []


# ------------------------------------------------------- compaction / rebuild


def compact_warehouse(directory: Union[str, Path]) -> int:
    """Fold every live warehouse file into one columnar segment.

    Each process's cache appends its own row file, so a long-lived shared
    directory accumulates them; ``repro cache gc`` and ``repro warehouse
    compact`` call this to keep the file count at one.  Crash safety mirrors
    :func:`~repro.experiments.cache.compact_persisted_stats`: concurrent
    compactors are serialised by an ``O_EXCL`` lock (stale locks from dead
    compactors are broken after a re-stat), the output segment lists its
    ``folded`` sources so readers exclude leftovers from a compactor that
    died before unlinking them, and a failed segment write leaves the
    originals as the single source of truth.  Live *row files* are
    additionally ``flock``-ed for the duration of the fold: an appender
    either lands its row before the final read (it is folded) or finds its
    file gone and rotates to a fresh one (it survives the fold) — never in
    between.  Returns files removed.
    """
    base = warehouse_dir(directory)
    if not base.is_dir():
        return 0
    lock = base / ".compact.lock"
    try:
        lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            # Stat immediately before breaking so a lock refreshed since the
            # caller's glob is left alone.
            if time.time() - lock.stat().st_mtime > _COMPACT_LOCK_STALE_SECONDS:
                lock.unlink()
        except OSError:
            pass
        return 0
    except OSError:
        return 0
    locked: List[Tuple[Path, object]] = []
    try:
        # Segments are immutable once renamed into place: read them plainly.
        superseded: Set[str] = set()
        parsed: List[Tuple[Path, List[WarehouseRow]]] = []
        for path in sorted(base.glob(f"*{_SEGMENT_SUFFIX}")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                rows = decode_rows(payload)
                folded = [str(name) for name in payload.get("folded", [])]
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                continue
            superseded.update(folded)
            parsed.append((path, rows))
        # Row files may have a live appender: take each file's flock before
        # the final read, and hold it until the fold commits, so no row can
        # land between this read and the unlink below.  Only files locked
        # here are folded — one created after this glob keeps its rows.
        for path in sorted(base.glob(f"*{_ROWS_SUFFIX}")):
            try:
                handle = path.open("r", encoding="utf-8")
            except OSError:
                continue
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                handle.close()
                continue
            locked.append((path, handle))
            parsed.append((path, _parse_rows_text(handle.read())))
        stale = [path for path, _ in parsed if path.name in superseded]
        live = [(path, rows) for path, rows in parsed
                if path.name not in superseded]
        removed = 0
        for path in stale:
            # Leftovers from a compactor that died mid-fold; their rows
            # already live in a compacted segment.
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        needs_fold = (len(live) > 1
                      or any(path.name.endswith(_ROWS_SUFFIX)
                             for path, _ in live))
        if not live or not needs_fold:
            return removed
        merged = canonical_rows([row for _, rows in live for row in rows])
        payload = {"pid": os.getpid(), "written_at": time.time(),
                   "compacted": True,
                   "folded": [path.name for path, _ in live]}
        payload.update(encode_rows(merged))
        target = _write_segment(base, payload,
                                f"compacted-{uuid.uuid4().hex}{_SEGMENT_SUFFIX}")
        if target is None:
            # Roll back: the originals stay authoritative.
            return removed
        for path, _ in live:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
    finally:
        for _, handle in locked:
            try:
                handle.close()
            except OSError:
                pass
        os.close(lock_fd)
        try:
            lock.unlink()
        except OSError:
            pass


def rebuild_warehouse(directory: Union[str, Path],
                      schema_version: int) -> Tuple[int, int]:
    """Regenerate the whole warehouse from the object store.

    Decodes every current-schema result/SMT entry, writes one fresh segment
    that lists **every** pre-existing warehouse file as folded, then unlinks
    them — so a crash mid-rebuild leaves readers on the new segment, never
    double-counting, and the next rebuild deletes the leftovers.  Returns
    ``(rows written, files replaced)``.  Raises ``OSError`` when the segment
    cannot be written: unlike appends, an explicitly requested rebuild must
    fail loudly.
    """
    base = warehouse_dir(directory)
    rows = scan_object_store(directory, schema_version)
    existing = (sorted(base.glob(f"*{_SEGMENT_SUFFIX}"))
                + sorted(base.glob(f"*{_ROWS_SUFFIX}"))) if base.is_dir() else []
    payload = {"pid": os.getpid(), "written_at": time.time(),
               "compacted": True, "rebuilt": True,
               "folded": [path.name for path in existing]}
    payload.update(encode_rows(rows))
    target = _write_segment(base, payload,
                            f"rebuilt-{uuid.uuid4().hex}{_SEGMENT_SUFFIX}")
    if target is None:
        raise OSError(f"could not write warehouse segment under {base}")
    for path in existing:
        try:
            path.unlink()
        except OSError:
            pass
    return len(rows), len(existing)


def clear_warehouse(directory: Union[str, Path]) -> int:
    """Delete every warehouse file (``repro cache clear``); returns count."""
    base = warehouse_dir(directory)
    removed = 0
    if not base.is_dir():
        return removed
    for pattern in (f"*{_SEGMENT_SUFFIX}", f"*{_ROWS_SUFFIX}"):
        for path in base.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


# ------------------------------------------------------------------ analytics


def warehouse_stats(directory: Union[str, Path]) -> Dict[str, object]:
    """Summary block for ``repro cache stats``: files, rows, kinds, configs.

    Tabular-only (zero object-store decodes); ``present`` is False when no
    warehouse file exists, which is how the stats path knows to say so
    instead of printing an empty table.
    """
    base = warehouse_dir(directory)
    summary: Dict[str, object] = {
        "present": warehouse_present(directory),
        "segments": 0, "row_files": 0, "total_bytes": 0,
        "rows": 0, "by_kind": {}, "by_config": {},
    }
    if not summary["present"]:
        return summary
    for pattern, field in ((f"*{_SEGMENT_SUFFIX}", "segments"),
                           (f"*{_ROWS_SUFFIX}", "row_files")):
        for path in base.glob(pattern):
            summary[field] += 1
            try:
                summary["total_bytes"] += path.stat().st_size
            except OSError:
                pass
    rows = read_rows(directory)
    summary["rows"] = len(rows)
    for row in rows:
        summary["by_kind"][row.kind] = summary["by_kind"].get(row.kind, 0) + 1
        summary["by_config"][row.config] = (
            summary["by_config"].get(row.config, 0) + 1)
    return summary


def verify_warehouse(directory: Union[str, Path],
                     schema_version: int) -> Dict[str, object]:
    """Compare warehouse keys against the object-store journal (envelope-only).

    ``missing`` keys — journaled entries with no warehouse row — mean the
    warehouse disagrees with the journal and ``repro warehouse verify`` exits
    non-zero.  ``extra`` keys are rows whose entries were since GC-evicted:
    the warehouse deliberately keeps history, so they fail only ``--strict``.
    """
    entry_keys: Set[str] = set()
    base = Path(directory)
    if base.is_dir():
        for path in base.glob("*/*.json"):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            if payload.get("schema") != schema_version:
                continue
            if str(payload.get("kind", "result")) not in ("result", "smt"):
                continue
            entry_keys.add(str(payload.get("key", path.stem)))
    row_keys = {row.key for row in read_rows(directory)}
    return {
        "entries": len(entry_keys),
        "rows": len(row_keys),
        "missing": sorted(entry_keys - row_keys),
        "extra": sorted(row_keys - entry_keys),
    }


def filter_rows(rows: Sequence[WarehouseRow],
                kind: Optional[str] = None,
                suite: Optional[str] = None,
                config: Optional[str] = None,
                workload: Optional[str] = None,
                configs: Optional[Set[str]] = None) -> List[WarehouseRow]:
    """Rows matching every given filter (None matches everything).

    ``suite`` matches any ``+``-joined component, so ``Client`` selects the
    SMT rows of ``Client+Server`` pairs too; ``configs`` restricts to a set
    of config labels (how ``repro query --family`` selects a sweep family).
    """
    selected = []
    for row in rows:
        if kind is not None and row.kind != kind:
            continue
        if suite is not None and suite not in row.suite.split("+"):
            continue
        if config is not None and row.config != config:
            continue
        if workload is not None and row.workload != workload:
            continue
        if configs is not None and row.config not in configs:
            continue
        selected.append(row)
    return selected


#: Aggregation functions ``repro query --agg`` selects from.  ``geomean``
#: and ``median`` share their implementations with every other aggregation
#: path in the repo, so query output is bit-comparable with figure output.
QUERY_AGGREGATES = {
    "geomean": filtered_geomean,
    "median": median,
    "mean": lambda values: (sum(values) / len(values)) if values else 0.0,
    "sum": sum,
    "count": len,
    "min": lambda values: min(values) if values else 0.0,
    "max": lambda values: max(values) if values else 0.0,
}


def aggregate_rows(rows: Sequence[WarehouseRow], metric: str,
                   agg: str = "geomean",
                   group_by: Optional[str] = None) -> Dict[str, float]:
    """Aggregate one metric column, optionally grouped by a label column.

    ``metric`` must be one of :data:`QUERY_METRICS` and ``agg`` a key of
    :data:`QUERY_AGGREGATES`; ``group_by`` is ``suite``/``config``/
    ``workload``/``kind`` (None aggregates everything under ``"all"``).
    Groups come back sorted, so output is deterministic.
    """
    if metric not in QUERY_METRICS:
        raise ValueError(f"unknown metric {metric!r}; "
                         f"available: {list(QUERY_METRICS)}")
    if agg not in QUERY_AGGREGATES:
        raise ValueError(f"unknown aggregate {agg!r}; "
                         f"available: {sorted(QUERY_AGGREGATES)}")
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        group = getattr(row, group_by) if group_by else "all"
        grouped.setdefault(group, []).append(float(getattr(row, metric)))
    reduce = QUERY_AGGREGATES[agg]
    return {group: float(reduce(values))
            for group, values in sorted(grouped.items())}


def speedup_summary(rows: Sequence[WarehouseRow],
                    baseline: str = "baseline",
                    group_by: Optional[str] = None
                    ) -> Dict[str, Dict[str, float]]:
    """Geomean speedups of every config against ``baseline`` from rows alone.

    Single-thread rows are joined per ``(workload, instructions)`` — every
    config of one sweep retires the same trace, so the pair identifies the
    job across sweeps of different budgets — and the per-workload ratio is
    ``baseline cycles / config cycles``, skipping degenerate zero-cycle runs
    exactly like :meth:`ExperimentRunner.speedups`.  Returns ``{config:
    {group: geomean}}`` with group ``GEOMEAN`` always present (the overall
    geomean); ``group_by="suite"`` adds per-suite geomeans.
    """
    result_rows = [row for row in rows if row.kind == "result"]
    base_cycles = {(row.workload, row.instructions): row.cycles
                   for row in result_rows if row.config == baseline}
    summary: Dict[str, Dict[str, float]] = {}
    ratios: Dict[str, List[Tuple[str, float]]] = {}
    for row in result_rows:
        if row.config == baseline:
            continue
        base = base_cycles.get((row.workload, row.instructions))
        if base is None or base <= 0 or row.cycles <= 0:
            continue
        ratios.setdefault(row.config, []).append((row.suite, base / row.cycles))
    for config in sorted(ratios):
        values = ratios[config]
        block = {"GEOMEAN": filtered_geomean([v for _, v in values])}
        if group_by == "suite":
            by_suite: Dict[str, List[float]] = {}
            for suite, value in values:
                by_suite.setdefault(suite, []).append(value)
            for suite in sorted(by_suite):
                block[suite] = filtered_geomean(by_suite[suite])
        summary[config] = block
    return summary
