"""Front-end models: branch prediction and branch target buffer."""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    TagePredictor,
    TageConfig,
    BranchPredictor,
)
from repro.frontend.btb import BranchTargetBuffer

__all__ = [
    "BimodalPredictor",
    "TagePredictor",
    "TageConfig",
    "BranchPredictor",
    "BranchTargetBuffer",
]
