"""Conditional branch predictors: bimodal and a TAGE-like tagged predictor.

The paper's baseline uses TAGE/ITTAGE.  The TAGE model here keeps the
essential structure - a bimodal base predictor plus several tagged tables
indexed with geometrically increasing global-history lengths, provider/altpred
selection, useful-bit based allocation - while staying small enough to run
fast in Python.  Unconditional jumps are always predicted correctly (their
targets are static in the synthetic ISA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class BimodalPredictor:
    """2-bit saturating-counter predictor indexed by PC."""

    def __init__(self, entries: int = 8192):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._counters = [2] * entries  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        """Taken when the 2-bit counter for ``pc`` is weakly/strongly taken."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Saturating 2-bit counter update with the resolved direction."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)


@dataclass
class TageConfig:
    """Geometry of the TAGE-like predictor."""

    base_entries: int = 8192
    tagged_entries: int = 1024
    num_tables: int = 4
    min_history: int = 4
    max_history: int = 64
    tag_bits: int = 10
    counter_max: int = 3  # 3-bit signed counter range [-4, 3]


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self, tag: int = 0, counter: int = 0, useful: int = 0):
        self.tag = tag
        self.counter = counter
        self.useful = useful


class TagePredictor:
    """TAGE-like predictor: bimodal base + tagged tables with geometric histories."""

    def __init__(self, config: Optional[TageConfig] = None):
        self.config = config or TageConfig()
        cfg = self.config
        self.base = BimodalPredictor(cfg.base_entries)
        self._tables: List[List[Optional[_TaggedEntry]]] = [
            [None] * cfg.tagged_entries for _ in range(cfg.num_tables)
        ]
        # Geometric history lengths between min_history and max_history.
        self.history_lengths = []
        ratio = (cfg.max_history / cfg.min_history) ** (1.0 / max(cfg.num_tables - 1, 1))
        length = float(cfg.min_history)
        for _ in range(cfg.num_tables):
            self.history_lengths.append(int(round(length)))
            length *= ratio
        self._global_history = 0
        # Index hash width, fixed by the table geometry.
        self._index_bits = cfg.tagged_entries.bit_length() - 1
        # Folded-history values keyed by (length, bits).  The fold depends
        # only on the global history, which changes exclusively in `update`,
        # so one resolution's worth of predict/update/allocate index and tag
        # computations all share the same few folds.
        self._fold_cache: dict = {}
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------ hashing

    def _folded_history(self, length: int, bits: int) -> int:
        key = (length, bits)
        cached = self._fold_cache.get(key)
        if cached is not None:
            return cached
        history = self._global_history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        self._fold_cache[key] = folded
        return folded

    def _index(self, pc: int, table: int) -> int:
        fold = self._folded_history(self.history_lengths[table], self._index_bits)
        return ((pc >> 2) ^ fold ^ (table * 0x9E5)) % self.config.tagged_entries

    def _tag(self, pc: int, table: int) -> int:
        cfg = self.config
        fold = self._folded_history(self.history_lengths[table], cfg.tag_bits)
        return ((pc >> 2) ^ (fold << 1) ^ table) & ((1 << cfg.tag_bits) - 1)

    # --------------------------------------------------------------- prediction

    def _find_provider(self, pc: int) -> Tuple[Optional[int], Optional[_TaggedEntry]]:
        for table in reversed(range(self.config.num_tables)):
            entry = self._tables[table][self._index(pc, table)]
            if entry is not None and entry.tag == self._tag(pc, table):
                return table, entry
        return None, None

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        self.predictions += 1
        _, entry = self._find_provider(pc)
        if entry is not None:
            return entry.counter >= 0
        return self.base.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""
        provider_table, provider = self._find_provider(pc)
        self._train(pc, taken, provider_table, provider)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused predict + update sharing one provider search.

        ``predict`` mutates nothing besides its counter, so running it and
        ``update`` back to back performs the identical provider search twice;
        this entry point does the search once and feeds both.  Returns the
        prediction, with counters updated exactly as the two-call sequence
        would have.
        """
        self.predictions += 1
        provider_table, provider = self._find_provider(pc)
        predicted = (provider.counter >= 0) if provider is not None else self.base.predict(pc)
        self._train(pc, taken, provider_table, provider)
        return predicted

    def _train(self, pc: int, taken: bool,
               provider_table: Optional[int],
               provider: Optional[_TaggedEntry]) -> None:
        cfg = self.config
        predicted = (provider.counter >= 0) if provider is not None else self.base.predict(pc)
        if predicted != taken:
            self.mispredictions += 1

        if provider is not None:
            if taken:
                provider.counter = min(provider.counter + 1, cfg.counter_max)
            else:
                provider.counter = max(provider.counter - 1, -cfg.counter_max - 1)
            if predicted == taken:
                provider.useful = min(provider.useful + 1, 3)
            else:
                provider.useful = max(provider.useful - 1, 0)
        else:
            self.base.update(pc, taken)

        # Allocate a new entry in a longer-history table on a misprediction.
        if predicted != taken:
            start = (provider_table + 1) if provider_table is not None else 0
            for table in range(start, cfg.num_tables):
                index = self._index(pc, table)
                entry = self._tables[table][index]
                if entry is None or entry.useful == 0:
                    self._tables[table][index] = _TaggedEntry(
                        tag=self._tag(pc, table), counter=0 if taken else -1, useful=0)
                    break

        self._global_history = ((self._global_history << 1) | int(taken)) & ((1 << 128) - 1)
        self._fold_cache.clear()

    def misprediction_rate(self) -> float:
        """Fraction of predictions that were wrong."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictor:
    """Front-end facade: direction prediction for branches, always-correct jumps."""

    def __init__(self, tage_config: Optional[TageConfig] = None):
        self.direction = TagePredictor(tage_config)
        self.conditional_predictions = 0
        self.conditional_mispredictions = 0

    def predict_taken(self, pc: int, is_conditional: bool) -> bool:
        """Predict whether the branch at ``pc`` is taken."""
        if not is_conditional:
            return True
        return self.direction.predict(pc)

    def resolve(self, pc: int, is_conditional: bool, predicted: bool, taken: bool) -> bool:
        """Train with the outcome; returns True if the branch was mispredicted."""
        if not is_conditional:
            return False
        self.conditional_predictions += 1
        self.direction.update(pc, taken)
        mispredicted = predicted != taken
        if mispredicted:
            self.conditional_mispredictions += 1
        return mispredicted

    def resolve_at_writeback(self, pc: int, is_conditional: bool, taken: bool) -> bool:
        """``predict_taken`` + ``resolve`` fused for the branch writeback path.

        Counter updates and training are bit-identical to the two-call
        sequence; only the duplicated TAGE provider search is saved.
        """
        if not is_conditional:
            return False
        self.conditional_predictions += 1
        predicted = self.direction.predict_and_update(pc, taken)
        mispredicted = predicted != taken
        if mispredicted:
            self.conditional_mispredictions += 1
        return mispredicted

    def misprediction_rate(self) -> float:
        """Fraction of conditional predictions that were wrong."""
        if self.conditional_predictions == 0:
            return 0.0
        return self.conditional_mispredictions / self.conditional_predictions
