"""Branch target buffer: caches taken-branch targets for the fetch stage."""

from __future__ import annotations

from typing import Dict, Optional


class BranchTargetBuffer:
    """A direct-mapped BTB with a simple tag check."""

    def __init__(self, entries: int = 4096):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._targets: Dict[int, tuple] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, or None on a BTB miss."""
        index = pc % self.entries
        entry = self._targets.get(index)
        if entry is not None and entry[0] == pc:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target of a taken branch."""
        self._targets[pc % self.entries] = (pc, target)
