"""Synthetic x86-64-flavoured micro-op ISA used by the workload VM and the core model.

The ISA is deliberately small: ALU operations, register/immediate moves, loads,
stores, and branches.  Loads carry an explicit addressing mode (PC-relative,
stack-relative, register-relative) because Constable's characterisation and the
per-category results of the paper (Figs. 3, 13, 17, 24) are keyed on it.
"""

from repro.isa.registers import (
    ARCH_REGISTER_COUNT,
    APX_REGISTER_COUNT,
    REGISTER_NAMES,
    RSP,
    RBP,
    STACK_REGISTERS,
    RegisterFile,
    register_name,
)
from repro.isa.instruction import (
    AddressingMode,
    OpClass,
    MemOperand,
    StaticInstruction,
    DynamicInstruction,
    SnoopEvent,
    is_memory_op,
)
from repro.isa.program import Program, ProgramBuilder, Label

__all__ = [
    "ARCH_REGISTER_COUNT",
    "APX_REGISTER_COUNT",
    "REGISTER_NAMES",
    "RSP",
    "RBP",
    "STACK_REGISTERS",
    "RegisterFile",
    "register_name",
    "AddressingMode",
    "OpClass",
    "MemOperand",
    "StaticInstruction",
    "DynamicInstruction",
    "SnoopEvent",
    "is_memory_op",
    "Program",
    "ProgramBuilder",
    "Label",
]
