"""Micro-op model: opcode classes, addressing modes, static and dynamic instructions.

A *static* instruction is a single program location (PC).  A *dynamic*
instruction is one executed instance of a static instruction, carrying the
values the functional VM observed (effective address, loaded value, branch
outcome).  The timing model consumes dynamic instructions; the Constable golden
check compares what the out-of-order model produced against these functional
values at retirement (paper §8.5).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.isa.registers import STACK_REGISTERS


class OpClass(enum.Enum):
    """Coarse operation classes, enough to drive port binding and latency."""

    ALU = "alu"          # single-cycle integer op
    MUL = "mul"          # 3-cycle integer multiply
    DIV = "div"          # long-latency divide
    LOAD = "load"        # memory read
    STORE = "store"      # memory write
    BRANCH = "branch"    # conditional branch
    JUMP = "jump"        # unconditional branch / call / return
    MOVE_REG = "movr"    # register-to-register move (move-elimination candidate)
    MOVE_IMM = "movi"    # immediate move (zero/constant-idiom candidate)
    NOP = "nop"


#: Operation classes that reference memory.
MEMORY_OP_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

#: Operation classes that redirect control flow.
CONTROL_OP_CLASSES = frozenset({OpClass.BRANCH, OpClass.JUMP})


def is_memory_op(opclass: OpClass) -> bool:
    """True if ``opclass`` is a load or a store."""
    return opclass in MEMORY_OP_CLASSES


class AddressingMode(enum.Enum):
    """Load/store addressing-mode taxonomy used throughout the paper (Fig. 3b)."""

    NONE = "none"                  # not a memory operation
    PC_RELATIVE = "pc_relative"    # RIP-relative: no register address sources
    STACK_RELATIVE = "stack"       # RSP/RBP is the only register address source
    REG_RELATIVE = "register"      # any other general-purpose register source


class MemOperand:
    """Memory operand of a load or store: ``[base + index*scale + disp]``.

    ``base``/``index`` are architectural register indices or ``None``.  A
    PC-relative operand has neither base nor index.
    """

    __slots__ = ("base", "index", "scale", "disp")

    def __init__(self, base: Optional[int] = None, index: Optional[int] = None,
                 scale: int = 1, disp: int = 0):
        if scale not in (1, 2, 4, 8):
            raise ValueError(f"scale must be 1, 2, 4 or 8, got {scale}")
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp

    def address_registers(self) -> Tuple[int, ...]:
        """Architectural registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None and self.index != self.base:
            regs.append(self.index)
        return tuple(regs)

    def addressing_mode(self) -> AddressingMode:
        """Classify this operand per the paper's PC/stack/register-relative taxonomy."""
        regs = self.address_registers()
        if not regs:
            return AddressingMode.PC_RELATIVE
        if all(r in STACK_REGISTERS for r in regs):
            return AddressingMode.STACK_RELATIVE
        return AddressingMode.REG_RELATIVE

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"MemOperand(base={self.base}, index={self.index}, "
                f"scale={self.scale}, disp={self.disp:#x})")


class StaticInstruction:
    """One program location: opcode, operands, and control-flow targets.

    Decode-time facts (``is_load``/``is_store``/``is_branch``, the source
    register set, the addressing mode) are computed once at construction:
    the out-of-order core consults them for every dynamic instance, and the
    operands they derive from are final after construction (only
    ``branch_target`` is patched later, by label resolution).
    """

    __slots__ = (
        "pc", "opclass", "dest", "srcs", "alu_op", "imm", "mem",
        "branch_target", "cond", "size",
        "is_load", "is_store", "is_branch", "_source_registers", "_addressing_mode",
    )

    def __init__(self, pc: int, opclass: OpClass, dest: Optional[int] = None,
                 srcs: Tuple[int, ...] = (), alu_op: str = "add", imm: int = 0,
                 mem: Optional[MemOperand] = None, branch_target: Optional[int] = None,
                 cond: str = "", size: int = 8):
        if opclass in MEMORY_OP_CLASSES and mem is None:
            raise ValueError("memory operations require a MemOperand")
        if opclass in CONTROL_OP_CLASSES and branch_target is None:
            raise ValueError("control operations require a branch target")
        self.pc = pc
        self.opclass = opclass
        self.dest = dest
        self.srcs = tuple(srcs)
        self.alu_op = alu_op
        self.imm = imm
        self.mem = mem
        self.branch_target = branch_target
        self.cond = cond
        self.size = size
        self.is_load = opclass is OpClass.LOAD
        self.is_store = opclass is OpClass.STORE
        self.is_branch = opclass in CONTROL_OP_CLASSES
        regs = list(self.srcs)
        if mem is not None:
            for r in mem.address_registers():
                if r not in regs:
                    regs.append(r)
        self._source_registers = tuple(regs)
        self._addressing_mode = (AddressingMode.NONE if mem is None
                                 else mem.addressing_mode())

    def source_registers(self) -> Tuple[int, ...]:
        """All architectural registers this instruction reads.

        For a load, these are exactly the address-source registers that
        Constable's Register Monitor Table has to watch (Condition 1, §5).
        """
        return self._source_registers

    def addressing_mode(self) -> AddressingMode:
        """Addressing mode of the memory operand (``NONE`` for non-memory ops)."""
        return self._addressing_mode

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"StaticInstruction(pc={self.pc:#x}, {self.opclass.value}, "
                f"dest={self.dest}, srcs={self.srcs})")


class DynamicInstruction:
    """One executed instance of a static instruction, as seen by the functional VM.

    The static decode (``pc``/``opclass``/``is_load``/``is_store``/``is_branch``)
    is flattened onto the dynamic record at construction so the simulator's hot
    loop reads plain slot attributes instead of chasing ``.static.*`` chains on
    every cycle.
    """

    __slots__ = (
        "seq", "static", "address", "load_value", "store_value",
        "branch_taken", "next_pc", "thread_id",
        "pc", "opclass", "is_load", "is_store", "is_branch",
    )

    def __init__(self, seq: int, static: StaticInstruction, address: int = 0,
                 load_value: int = 0, store_value: int = 0,
                 branch_taken: bool = False, next_pc: int = 0, thread_id: int = 0):
        self.seq = seq
        self.static = static
        self.address = address
        self.load_value = load_value
        self.store_value = store_value
        self.branch_taken = branch_taken
        self.next_pc = next_pc
        self.thread_id = thread_id
        self.pc = static.pc
        self.opclass = static.opclass
        self.is_load = static.is_load
        self.is_store = static.is_store
        self.is_branch = static.is_branch

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DynamicInstruction(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.opclass.value}, addr={self.address:#x})")


class SnoopEvent:
    """A cross-core invalidation arriving at the core.

    ``after_seq`` anchors the snoop in the dynamic instruction stream: the
    timing model delivers it once the instruction with that sequence number has
    been fetched.  ``address`` is a byte address; delivery happens at cacheline
    granularity (paper §6.6).
    """

    __slots__ = ("after_seq", "address", "writer_core")

    def __init__(self, after_seq: int, address: int, writer_core: int = 1):
        self.after_seq = after_seq
        self.address = address
        self.writer_core = writer_core

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SnoopEvent(after_seq={self.after_seq}, address={self.address:#x})"
