"""Static program representation and a tiny assembler for building synthetic kernels.

Workload kernels (`repro.workloads.kernels`) are written against
:class:`ProgramBuilder`, which resolves labels to program counters and produces
an immutable :class:`Program` the functional VM executes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import MemOperand, OpClass, StaticInstruction

#: Byte distance between consecutive static instructions.
INSTRUCTION_SIZE = 4


class Label:
    """A forward-referencable position in a program under construction."""

    __slots__ = ("name", "pc")

    def __init__(self, name: str):
        self.name = name
        self.pc: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Label({self.name!r}, pc={self.pc})"


class Program:
    """An immutable static program: a PC-indexed map of instructions."""

    def __init__(self, instructions: List[StaticInstruction], entry_pc: int):
        if not instructions:
            raise ValueError("a program must contain at least one instruction")
        self._by_pc: Dict[int, StaticInstruction] = {i.pc: i for i in instructions}
        if len(self._by_pc) != len(instructions):
            raise ValueError("duplicate program counters in program")
        if entry_pc not in self._by_pc:
            raise ValueError("entry PC is not part of the program")
        self._instructions = list(instructions)
        self.entry_pc = entry_pc

    def __len__(self) -> int:
        return len(self._instructions)

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    def fetch(self, pc: int) -> StaticInstruction:
        """Return the static instruction at ``pc``."""
        return self._by_pc[pc]

    def instructions(self) -> List[StaticInstruction]:
        """All static instructions in program order."""
        return list(self._instructions)

    def next_pc(self, pc: int) -> int:
        """Fall-through PC after ``pc``."""
        return pc + INSTRUCTION_SIZE

    def loads(self) -> List[StaticInstruction]:
        """All static load instructions."""
        return [i for i in self._instructions if i.is_load]

    def stores(self) -> List[StaticInstruction]:
        """All static store instructions."""
        return [i for i in self._instructions if i.is_store]


class ProgramBuilder:
    """A tiny two-pass assembler for synthetic programs.

    Instructions are laid out at consecutive PCs starting at ``base_pc``;
    branch targets may be :class:`Label` objects created with :meth:`label`
    (place them with :meth:`place`) and are resolved when :meth:`build` runs.
    """

    def __init__(self, base_pc: int = 0x400000):
        self._base_pc = base_pc
        self._records: List[Tuple[StaticInstruction, Optional[Label]]] = []
        self._labels: List[Label] = []

    # ------------------------------------------------------------------ labels

    def label(self, name: str) -> Label:
        """Create a label that can be placed later and used as a branch target."""
        lab = Label(name)
        self._labels.append(lab)
        return lab

    def place(self, label: Label) -> Label:
        """Bind ``label`` to the PC of the next emitted instruction."""
        label.pc = self._next_pc()
        return label

    def here(self, name: str = "here") -> Label:
        """Create a label bound to the next instruction (shorthand for label+place)."""
        return self.place(self.label(name))

    def _next_pc(self) -> int:
        return self._base_pc + len(self._records) * INSTRUCTION_SIZE

    def _emit(self, opclass: OpClass, *, dest: Optional[int] = None,
              srcs: Tuple[int, ...] = (), alu_op: str = "add", imm: int = 0,
              mem: Optional[MemOperand] = None, target: Optional[Label] = None,
              cond: str = "", size: int = 8) -> StaticInstruction:
        pc = self._next_pc()
        # Branch targets are patched in build(); use a placeholder for now.
        placeholder = pc if target is not None else None
        inst = StaticInstruction(
            pc=pc, opclass=opclass, dest=dest, srcs=srcs, alu_op=alu_op, imm=imm,
            mem=mem, branch_target=placeholder, cond=cond, size=size,
        )
        self._records.append((inst, target))
        return inst

    # --------------------------------------------------------------- non-memory

    def alu(self, dest: int, srcs: Tuple[int, ...] = (), op: str = "add",
            imm: int = 0) -> StaticInstruction:
        """Single-cycle integer operation ``dest = op(srcs, imm)``."""
        return self._emit(OpClass.ALU, dest=dest, srcs=tuple(srcs), alu_op=op, imm=imm)

    def addi(self, dest: int, src: int, imm: int) -> StaticInstruction:
        """``dest = src + imm``."""
        return self.alu(dest, (src,), op="add", imm=imm)

    def mul(self, dest: int, srcs: Tuple[int, ...]) -> StaticInstruction:
        """Integer multiply."""
        return self._emit(OpClass.MUL, dest=dest, srcs=tuple(srcs), alu_op="mul")

    def div(self, dest: int, srcs: Tuple[int, ...]) -> StaticInstruction:
        """Integer divide (long latency)."""
        return self._emit(OpClass.DIV, dest=dest, srcs=tuple(srcs), alu_op="div")

    def movi(self, dest: int, imm: int) -> StaticInstruction:
        """Move an immediate into a register (zero/constant-idiom candidate)."""
        return self._emit(OpClass.MOVE_IMM, dest=dest, imm=imm, alu_op="mov")

    def movr(self, dest: int, src: int) -> StaticInstruction:
        """Register-to-register move (move-elimination candidate)."""
        return self._emit(OpClass.MOVE_REG, dest=dest, srcs=(src,), alu_op="mov")

    def nop(self) -> StaticInstruction:
        """No-operation."""
        return self._emit(OpClass.NOP)

    # ------------------------------------------------------------------- memory

    def load(self, dest: int, base: Optional[int] = None, index: Optional[int] = None,
             scale: int = 1, disp: int = 0, size: int = 8) -> StaticInstruction:
        """Load ``dest`` from ``[base + index*scale + disp]``."""
        mem = MemOperand(base=base, index=index, scale=scale, disp=disp)
        return self._emit(OpClass.LOAD, dest=dest, mem=mem, size=size)

    def load_global(self, dest: int, address: int, size: int = 8) -> StaticInstruction:
        """PC-relative load from a fixed global address."""
        return self.load(dest, base=None, index=None, disp=address, size=size)

    def store(self, src: int, base: Optional[int] = None, index: Optional[int] = None,
              scale: int = 1, disp: int = 0, size: int = 8) -> StaticInstruction:
        """Store ``src`` to ``[base + index*scale + disp]``."""
        mem = MemOperand(base=base, index=index, scale=scale, disp=disp)
        return self._emit(OpClass.STORE, srcs=(src,), mem=mem, size=size)

    def store_global(self, src: int, address: int, size: int = 8) -> StaticInstruction:
        """PC-relative store to a fixed global address."""
        return self.store(src, base=None, index=None, disp=address, size=size)

    # ------------------------------------------------------------------ control

    def jnz(self, reg: int, target: Label) -> StaticInstruction:
        """Branch to ``target`` if ``reg`` is non-zero."""
        return self._emit(OpClass.BRANCH, srcs=(reg,), target=target, cond="nz")

    def jz(self, reg: int, target: Label) -> StaticInstruction:
        """Branch to ``target`` if ``reg`` is zero."""
        return self._emit(OpClass.BRANCH, srcs=(reg,), target=target, cond="z")

    def jmp(self, target: Label) -> StaticInstruction:
        """Unconditional jump to ``target``."""
        return self._emit(OpClass.JUMP, target=target, cond="always")

    # -------------------------------------------------------------------- build

    def build(self, entry: Optional[Label] = None) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        instructions = []
        for inst, target in self._records:
            if target is not None:
                if target.pc is None:
                    raise ValueError(f"label {target.name!r} was never placed")
                inst.branch_target = target.pc
            instructions.append(inst)
        entry_pc = self._base_pc if entry is None else entry.pc
        if entry_pc is None:
            raise ValueError("entry label was never placed")
        return Program(instructions, entry_pc=entry_pc)
