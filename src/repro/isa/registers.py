"""Architectural register definitions and a simple register file.

The register namespace mirrors x86-64: sixteen general-purpose integer
registers, with ``RSP``/``RBP`` designated as stack registers (the paper's
"stack-relative" addressing mode uses exactly these two as the only source
register).  The optional APX extension (paper appendix B) doubles the register
count to 32; workloads can be generated for either register budget.
"""

from __future__ import annotations

from typing import List, Optional

#: Baseline x86-64 general purpose register names, in encoding order.
REGISTER_NAMES: List[str] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

#: Number of architectural integer registers without APX.
ARCH_REGISTER_COUNT = 16

#: Number of architectural integer registers with the APX extension.
APX_REGISTER_COUNT = 32

#: Stack pointer register index (``rsp``).
RSP = REGISTER_NAMES.index("rsp")

#: Frame/base pointer register index (``rbp``).
RBP = REGISTER_NAMES.index("rbp")

#: The two registers whose use as the sole address source makes a load
#: "stack-relative" in the paper's taxonomy.
STACK_REGISTERS = frozenset({RSP, RBP})

_MASK64 = (1 << 64) - 1


def register_name(index: int) -> str:
    """Return a printable name for register ``index`` (APX registers are ``r16``..)."""
    if index < 0:
        raise ValueError(f"register index must be non-negative, got {index}")
    if index < len(REGISTER_NAMES):
        return REGISTER_NAMES[index]
    return f"r{index}"


class RegisterFile:
    """A flat architectural register file holding 64-bit unsigned values.

    Used by the functional VM (`repro.workloads.vm`) to execute synthetic
    programs and produce traces.  Values wrap modulo 2**64 like hardware.
    """

    def __init__(self, count: int = ARCH_REGISTER_COUNT, initial: Optional[List[int]] = None):
        if count <= 0:
            raise ValueError("register file must have at least one register")
        self._count = count
        if initial is None:
            self._values = [0] * count
        else:
            if len(initial) != count:
                raise ValueError("initial values length must equal register count")
            self._values = [v & _MASK64 for v in initial]

    @property
    def count(self) -> int:
        """Number of architectural registers."""
        return self._count

    def read(self, index: int) -> int:
        """Read register ``index``."""
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write ``value`` (wrapped to 64 bits) into register ``index``."""
        self._values[index] = value & _MASK64

    def snapshot(self) -> List[int]:
        """Return a copy of all register values."""
        return list(self._values)

    def load_snapshot(self, values: List[int]) -> None:
        """Restore register values from a previous :meth:`snapshot`."""
        if len(values) != self._count:
            raise ValueError("snapshot length mismatch")
        self._values = [v & _MASK64 for v in values]

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        pairs = ", ".join(f"{register_name(i)}={v:#x}" for i, v in enumerate(self._values))
        return f"RegisterFile({pairs})"
