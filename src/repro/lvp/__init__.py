"""Load value predictors: the EVES predictor (CVP-1 winner) and the Lipasti LLVP."""

from repro.lvp.base import LoadValuePredictor, ValuePrediction
from repro.lvp.eves import EvesPredictor, EvesConfig
from repro.lvp.llvp import LipastiPredictor, LipastiConfig

__all__ = [
    "LoadValuePredictor",
    "ValuePrediction",
    "EvesPredictor",
    "EvesConfig",
    "LipastiPredictor",
    "LipastiConfig",
]
