"""Common interface for load value predictors.

A predictor is consulted at rename time for every load; if it is confident it
returns a value that breaks the load's data dependence.  The load still
executes to verify the prediction; a mismatch at writeback flushes the younger
window, just like a branch misprediction (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ValuePrediction:
    """Outcome of one prediction attempt."""

    predicted: bool
    value: int = 0
    component: str = ""


class LoadValuePredictor:
    """Abstract load value predictor interface."""

    name = "lvp"

    def __init__(self):
        self.attempts = 0
        self.predictions = 0
        self.correct = 0
        self.incorrect = 0

    def predict(self, pc: int, branch_history: int = 0) -> ValuePrediction:
        """Predict the value of the load at ``pc`` (called at rename)."""
        raise NotImplementedError

    def train(self, pc: int, actual_value: int, branch_history: int = 0) -> None:
        """Train the predictor with the load's actual value (called at writeback)."""
        raise NotImplementedError

    # ------------------------------------------------------------------- stats

    def record_outcome(self, prediction: ValuePrediction, actual_value: int) -> bool:
        """Account the verification outcome; returns True if the prediction was correct."""
        self.attempts += 1
        if not prediction.predicted:
            return True
        self.predictions += 1
        if prediction.value == actual_value:
            self.correct += 1
            return True
        self.incorrect += 1
        return False

    def coverage(self) -> float:
        """Fraction of loads for which a prediction was made."""
        if self.attempts == 0:
            return 0.0
        return self.predictions / self.attempts

    def accuracy(self) -> float:
        """Fraction of made predictions that were correct."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions
