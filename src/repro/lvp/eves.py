"""EVES-style load value predictor (Seznec, CVP-1 winner).

EVES combines two components:

* **E-Stride** - per-PC last value + stride with a high confidence bar; covers
  loads whose values follow an arithmetic progression (including constants,
  stride 0).
* **E-VTAGE** - tagged tables indexed by PC hashed with folded global branch
  history; covers context-dependent value repetition.

The model keeps the structure and the confidence-gated prediction policy; the
probabilistic confidence-increment details of the original are simplified to
deterministic saturating counters with high thresholds, which preserves the
"predict only when very sure" behaviour that matters for pipeline flushes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lvp.base import LoadValuePredictor, ValuePrediction

_MASK64 = (1 << 64) - 1


@dataclass
class EvesConfig:
    """Component sizes and confidence thresholds."""

    stride_entries: int = 4096
    stride_confidence_threshold: int = 14
    stride_confidence_max: int = 15
    vtage_tables: int = 4
    vtage_entries: int = 1024
    vtage_tag_bits: int = 12
    vtage_confidence_threshold: int = 14
    vtage_confidence_max: int = 15
    min_history: int = 2
    max_history: int = 32


class _StrideEntry:
    __slots__ = ("last_value", "stride", "confidence")

    def __init__(self, last_value: int):
        self.last_value = last_value
        self.stride = 0
        self.confidence = 0


class _VtageEntry:
    __slots__ = ("tag", "value", "confidence", "useful")

    def __init__(self, tag: int, value: int):
        self.tag = tag
        self.value = value
        self.confidence = 0
        self.useful = 0


class EvesPredictor(LoadValuePredictor):
    """E-Stride + E-VTAGE hybrid value predictor."""

    name = "eves"

    def __init__(self, config: Optional[EvesConfig] = None):
        super().__init__()
        self.config = config or EvesConfig()
        cfg = self.config
        self._stride: Dict[int, _StrideEntry] = {}
        self._vtage: List[List[Optional[_VtageEntry]]] = [
            [None] * cfg.vtage_entries for _ in range(cfg.vtage_tables)
        ]
        ratio = (cfg.max_history / cfg.min_history) ** (1.0 / max(cfg.vtage_tables - 1, 1))
        self._history_lengths = []
        length = float(cfg.min_history)
        for _ in range(cfg.vtage_tables):
            self._history_lengths.append(int(round(length)))
            length *= ratio

    # ----------------------------------------------------------------- hashing

    @staticmethod
    def _fold(history: int, length: int, bits: int) -> int:
        history &= (1 << length) - 1
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def _vtage_index(self, pc: int, table: int, history: int) -> int:
        cfg = self.config
        bits = cfg.vtage_entries.bit_length() - 1
        fold = self._fold(history, self._history_lengths[table], bits)
        return ((pc >> 2) ^ fold ^ (table * 0x9E3)) % cfg.vtage_entries

    def _vtage_tag(self, pc: int, table: int, history: int) -> int:
        cfg = self.config
        fold = self._fold(history, self._history_lengths[table], cfg.vtage_tag_bits)
        return ((pc >> 2) ^ (fold << 1) ^ (table * 7)) & ((1 << cfg.vtage_tag_bits) - 1)

    def _vtage_lookup(self, pc: int, history: int) -> Optional[_VtageEntry]:
        for table in reversed(range(self.config.vtage_tables)):
            entry = self._vtage[table][self._vtage_index(pc, table, history)]
            if entry is not None and entry.tag == self._vtage_tag(pc, table, history):
                return entry
        return None

    # -------------------------------------------------------------- prediction

    def predict(self, pc: int, branch_history: int = 0) -> ValuePrediction:
        """VTAGE first, stride fallback: the EVES component hierarchy."""
        cfg = self.config
        vtage_entry = self._vtage_lookup(pc, branch_history)
        if vtage_entry is not None and vtage_entry.confidence >= cfg.vtage_confidence_threshold:
            return ValuePrediction(predicted=True, value=vtage_entry.value, component="vtage")
        stride_entry = self._stride.get(pc)
        if stride_entry is not None and stride_entry.confidence >= cfg.stride_confidence_threshold:
            value = (stride_entry.last_value + stride_entry.stride) & _MASK64
            return ValuePrediction(predicted=True, value=value, component="stride")
        return ValuePrediction(predicted=False)

    # ---------------------------------------------------------------- training

    def _train_stride(self, pc: int, actual_value: int) -> None:
        cfg = self.config
        entry = self._stride.get(pc)
        if entry is None:
            if len(self._stride) >= cfg.stride_entries:
                self._stride.pop(next(iter(self._stride)))
            self._stride[pc] = _StrideEntry(actual_value)
            return
        observed_stride = (actual_value - entry.last_value) & _MASK64
        if observed_stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, cfg.stride_confidence_max)
        else:
            entry.confidence = 0
            entry.stride = observed_stride
        entry.last_value = actual_value

    def _train_vtage(self, pc: int, actual_value: int, history: int) -> None:
        cfg = self.config
        entry = self._vtage_lookup(pc, history)
        if entry is not None:
            if entry.value == actual_value:
                entry.confidence = min(entry.confidence + 1, cfg.vtage_confidence_max)
                entry.useful = min(entry.useful + 1, 3)
            else:
                entry.confidence = 0
                entry.useful = max(entry.useful - 1, 0)
                if entry.useful == 0:
                    entry.value = actual_value
            return
        # Allocate in a random-ish table whose slot is not useful.
        for table in range(cfg.vtage_tables):
            index = self._vtage_index(pc, table, history)
            slot = self._vtage[table][index]
            if slot is None or slot.useful == 0:
                self._vtage[table][index] = _VtageEntry(
                    tag=self._vtage_tag(pc, table, history), value=actual_value)
                return

    def train(self, pc: int, actual_value: int, branch_history: int = 0) -> None:
        """Train both components with the committed value."""
        self._train_stride(pc, actual_value)
        self._train_vtage(pc, actual_value, branch_history)
