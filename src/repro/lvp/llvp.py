"""Lipasti-style constant-load value predictor (LLVP).

Lipasti et al. (ASPLOS 1996) predict "constant loads": loads whose value
repeats.  The classification table is a per-PC last-value table with a small
confidence counter; the paper contrasts LLVP's data-fetch-only elimination
against Constable's full elimination (§7), so the predictor here is primarily
a comparison point in the headroom experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.lvp.base import LoadValuePredictor, ValuePrediction


@dataclass
class LipastiConfig:
    """LLVP table geometry."""

    entries: int = 2048
    confidence_threshold: int = 3
    confidence_max: int = 3


class _LastValueEntry:
    __slots__ = ("value", "confidence")

    def __init__(self, value: int):
        self.value = value
        self.confidence = 0


class LipastiPredictor(LoadValuePredictor):
    """Per-PC last-value predictor with a 2-bit confidence counter."""

    name = "llvp"

    def __init__(self, config: Optional[LipastiConfig] = None):
        super().__init__()
        self.config = config or LipastiConfig()
        self._table: Dict[int, _LastValueEntry] = {}

    def predict(self, pc: int, branch_history: int = 0) -> ValuePrediction:
        """Predict the last value once its confidence clears the threshold."""
        del branch_history
        entry = self._table.get(pc)
        if entry is not None and entry.confidence >= self.config.confidence_threshold:
            return ValuePrediction(predicted=True, value=entry.value, component="last_value")
        return ValuePrediction(predicted=False)

    def train(self, pc: int, actual_value: int, branch_history: int = 0) -> None:
        """Last-value update: bump confidence on a match, reset on a change."""
        del branch_history
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.config.entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _LastValueEntry(actual_value)
            return
        if entry.value == actual_value:
            entry.confidence = min(entry.confidence + 1, self.config.confidence_max)
        else:
            entry.value = actual_value
            entry.confidence = 0
