"""Memory hierarchy substrate: caches, prefetchers, DRAM, TLB and coherence directory."""

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.prefetcher import StridePrefetcher, StreamPrefetcher
from repro.memory.dram import DramConfig, DramModel
from repro.memory.tlb import TlbConfig, Tlb
from repro.memory.coherence import Directory
from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig, CACHE_LINE_SIZE

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "StridePrefetcher",
    "StreamPrefetcher",
    "DramConfig",
    "DramModel",
    "TlbConfig",
    "Tlb",
    "Directory",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "CACHE_LINE_SIZE",
]
