"""Set-associative cache model with LRU replacement.

The cache tracks presence only (tags, not data): the functional values come
from the trace, so the timing model needs hit/miss behaviour, occupancy and
eviction notifications (the latter feed the coherence directory and the
Constable-AMT-I variant of Fig. 22).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    latency: int = 5

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_size) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of ways*line_size "
                f"({self.size_bytes} % {self.ways * self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, ways and line size."""
        return self.size_bytes // (self.ways * self.line_size)


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetch_fills: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        """Hits as a fraction of accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (stats-summary form)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "prefetch_fills": self.prefetch_fills,
            "invalidations": self.invalidations,
        }


class SetAssociativeCache:
    """An LRU set-associative cache tracking line presence."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        # Each set is an ordered list of line addresses, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]

    # ------------------------------------------------------------------ helpers

    def line_address(self, address: int) -> int:
        """Align ``address`` down to its cache line."""
        return address - (address % self.config.line_size)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_size) % self._num_sets

    # ------------------------------------------------------------------- access

    def probe(self, address: int) -> bool:
        """Check presence without updating replacement state or statistics."""
        line = self.line_address(address)
        return line in self._sets[self._set_index(line)]

    def access(self, address: int, is_write: bool = False) -> bool:
        """Look up ``address``; returns True on hit.  Misses do not fill."""
        del is_write  # presence-only model: loads and stores behave identically
        self.stats.accesses += 1
        line = self.line_address(address)
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            self.stats.hits += 1
            cache_set.remove(line)
            cache_set.append(line)
            return True
        self.stats.misses += 1
        return False

    def fill(self, address: int, from_prefetch: bool = False) -> Optional[int]:
        """Insert the line containing ``address``; returns the evicted line, if any."""
        line = self.line_address(address)
        index = self._set_index(line)
        cache_set = self._sets[index]
        if line in cache_set:
            cache_set.remove(line)
            cache_set.append(line)
            return None
        evicted = None
        if len(cache_set) >= self.config.ways:
            evicted = cache_set.pop(0)
            self.stats.evictions += 1
        cache_set.append(line)
        if from_prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, address: int) -> bool:
        """Remove the line containing ``address``; returns True if it was present."""
        line = self.line_address(address)
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            cache_set.remove(line)
            self.stats.invalidations += 1
            return True
        return False

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)
