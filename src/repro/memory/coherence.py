"""Directory-based coherence bookkeeping: core-valid (CV) bits and CV-bit pinning.

Constable relies on snoop requests to learn about remote writes (Condition 2).
In a directory protocol, a clean eviction from a core-private cache clears the
core's CV bit, after which the directory stops forwarding snoops to that core.
The paper's fix (§6.6) is to *pin* the CV bit of any cacheline accessed by an
eliminated load so snoops keep arriving even after a clean eviction.  This
module models exactly that bookkeeping; the actual invalidation traffic comes
from the workload's snoop events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass
class _DirectoryEntry:
    """Per-cacheline directory state: which cores hold it, which cores pinned it."""

    cv_bits: Set[int] = field(default_factory=set)
    pinned: Set[int] = field(default_factory=set)


class Directory:
    """Per-cacheline CV-bit tracking for a small multi-core system."""

    def __init__(self, num_cores: int = 2, line_size: int = 64):
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self.line_size = line_size
        self._entries: Dict[int, _DirectoryEntry] = {}
        self.snoops_forwarded = 0
        self.snoops_filtered = 0
        self.pins = 0

    # ------------------------------------------------------------------ helpers

    def _line(self, address: int) -> int:
        return address - (address % self.line_size)

    def _entry(self, address: int) -> _DirectoryEntry:
        line = self._line(address)
        entry = self._entries.get(line)
        if entry is None:
            entry = _DirectoryEntry()
            self._entries[line] = entry
        return entry

    # ------------------------------------------------------------------- events

    def record_fill(self, address: int, core: int) -> None:
        """A core brought the line into its private cache: set its CV bit."""
        self._entry(address).cv_bits.add(core)

    def record_eviction(self, address: int, core: int) -> None:
        """A core evicted the line: clear its CV bit unless it pinned the line."""
        entry = self._entry(address)
        if core not in entry.pinned:
            entry.cv_bits.discard(core)

    def pin(self, address: int, core: int) -> None:
        """Pin the core's CV bit for this line (paper §6.6, eliminated-load lines)."""
        entry = self._entry(address)
        if core not in entry.pinned:
            self.pins += 1
        entry.pinned.add(core)
        entry.cv_bits.add(core)

    def unpin(self, address: int, core: int) -> None:
        """Remove the pin (e.g. when the load loses its elimination status)."""
        self._entry(address).pinned.discard(core)

    def snoop_reaches_core(self, address: int, core: int) -> bool:
        """Would a snoop for ``address`` be forwarded to ``core``?

        A snoop is forwarded only when the core's CV bit is set.  Delivering the
        snoop clears the CV bit and the pin, per the normal directory protocol.
        """
        entry = self._entry(address)
        if core in entry.cv_bits:
            entry.cv_bits.discard(core)
            entry.pinned.discard(core)
            self.snoops_forwarded += 1
            return True
        self.snoops_filtered += 1
        return False

    def is_pinned(self, address: int, core: int) -> bool:
        """True when ``core`` has ``address``'s line pinned."""
        return core in self._entry(address).pinned

    def has_cv_bit(self, address: int, core: int) -> bool:
        """True when ``core`` holds the CV bit for ``address``'s line."""
        return core in self._entry(address).cv_bits
