"""Main-memory latency model.

A full DDR4 timing model is unnecessary for Constable's results (its benefit
comes from the core, not from DRAM); what matters is that LLC misses are
expensive and that row-buffer locality makes streaming cheaper than random
access.  The model keeps an open row per bank and charges tCAS for row hits
and tRP+tRCD+tCAS for row misses, in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class DramConfig:
    """DRAM geometry and timing (latencies in core cycles)."""

    channels: int = 4
    banks_per_channel: int = 16
    row_size_bytes: int = 2048
    row_hit_latency: int = 70        # ~tCAS at 3.2 GHz core clock
    row_miss_latency: int = 210      # ~tRP + tRCD + tCAS
    bus_latency: int = 20

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("channels and banks must be positive")


class DramModel:
    """Open-row DRAM latency model."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0

    def _bank_and_row(self, address: int) -> (int, int):
        cfg = self.config
        row = address // cfg.row_size_bytes
        bank = row % (cfg.channels * cfg.banks_per_channel)
        return bank, row

    def access_latency(self, address: int) -> int:
        """Latency (core cycles) of one memory access at ``address``."""
        cfg = self.config
        bank, row = self._bank_and_row(address)
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            latency = cfg.row_hit_latency
        else:
            self.row_misses += 1
            latency = cfg.row_miss_latency
            self._open_rows[bank] = row
        return latency + cfg.bus_latency

    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest future cycle at which DRAM state changes on its own, if any.

        This model is latency-only: bank/row state mutates exclusively when an
        access is performed, and the returned latency folds every queueing
        effect into the access itself — nothing becomes ready at a wall-clock
        time between accesses, so the answer is always ``None``.  The query is
        part of the next-ready surface the event-driven core schedules over; a
        refresh- or bank-busy-modelling DRAM would return its next timer here.
        """
        return None
