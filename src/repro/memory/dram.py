"""Main-memory latency model.

A full DDR4 timing model is unnecessary for Constable's results (its benefit
comes from the core, not from DRAM); what matters is that LLC misses are
expensive and that row-buffer locality makes streaming cheaper than random
access.  The model keeps an open row per bank and charges tCAS for row hits
and tRP+tRCD+tCAS for row misses, in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class DramConfig:
    """DRAM geometry and timing (latencies in core cycles)."""

    channels: int = 4
    banks_per_channel: int = 16
    row_size_bytes: int = 2048
    row_hit_latency: int = 70        # ~tCAS at 3.2 GHz core clock
    row_miss_latency: int = 210      # ~tRP + tRCD + tCAS
    bus_latency: int = 20

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("channels and banks must be positive")


class DramModel:
    """Open-row DRAM latency model."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0
        #: Earliest still-outstanding transaction completion (core cycle) as
        #: reported by the hierarchy via :meth:`note_inflight`, or None.
        self._earliest_inflight: Optional[int] = None

    def _bank_and_row(self, address: int) -> (int, int):
        cfg = self.config
        row = address // cfg.row_size_bytes
        bank = row % (cfg.channels * cfg.banks_per_channel)
        return bank, row

    def access_latency(self, address: int) -> int:
        """Latency (core cycles) of one memory access at ``address``."""
        cfg = self.config
        bank, row = self._bank_and_row(address)
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            latency = cfg.row_hit_latency
        else:
            self.row_misses += 1
            latency = cfg.row_miss_latency
            self._open_rows[bank] = row
        return latency + cfg.bus_latency

    def accesses(self) -> int:
        """Total DRAM accesses (row hits plus row misses)."""
        return self.row_hits + self.row_misses

    def note_inflight(self, completion_cycle: int) -> None:
        """Record a DRAM-serviced load whose data returns at ``completion_cycle``.

        The hierarchy forwards the core-scheduled completion cycle of every
        demand load that missed all the way to main memory, so the model owns
        a genuine transaction timer even though bank/row state itself only
        mutates at access time.
        """
        earliest = self._earliest_inflight
        if earliest is None or completion_cycle < earliest:
            self._earliest_inflight = completion_cycle

    def next_ready_cycle(self, now: int) -> Optional[int]:
        """Earliest known future cycle at which an outstanding DRAM transaction
        completes, or None.

        Bank/row state mutates exclusively when an access is performed and the
        returned latency folds every queueing effect into the access itself,
        so the forward timer is the earliest :meth:`note_inflight` completion
        still ahead of ``now``.  Expired timers are dropped — the core's
        completion heap bounds the skip target regardless, so forgetting can
        only delay a skip, never overshoot one.  A refresh- or
        bank-busy-modelling DRAM would fold its own timers in here.
        """
        earliest = self._earliest_inflight
        if earliest is None:
            return None
        if earliest <= now:
            self._earliest_inflight = None
            return None
        return earliest
