"""Three-level cache hierarchy with prefetchers, DTLB, DRAM and eviction callbacks.

Geometry defaults follow the paper's baseline (Table 2): 48 KB/12-way L1-D with
a 5-cycle latency and a stride prefetcher; 2 MB/16-way L2 with stride+streamer;
3 MB/12-way LLC; DDR4-like main memory.  The hierarchy reports, per access, the
total load-to-use latency and which level serviced it, and exposes L1-D access
counts (used by Fig. 18b and the MEU power breakdown of Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DramConfig, DramModel
from repro.memory.prefetcher import StridePrefetcher, StreamPrefetcher
from repro.memory.tlb import Tlb, TlbConfig

#: Cache line size used across the hierarchy and the coherence directory.
CACHE_LINE_SIZE = 64


@dataclass
class MemoryHierarchyConfig:
    """Configuration of the full data-side memory hierarchy."""

    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=48 * 1024, ways=12, line_size=CACHE_LINE_SIZE, latency=5))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=2 * 1024 * 1024, ways=16, line_size=CACHE_LINE_SIZE, latency=14))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="LLC", size_bytes=3 * 1024 * 1024, ways=12, line_size=CACHE_LINE_SIZE, latency=50))
    dram: DramConfig = field(default_factory=DramConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    enable_prefetchers: bool = True


class MemoryHierarchy:
    """L1-D / L2 / LLC / DRAM with simple prefetching and eviction callbacks."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None):
        self.config = config or MemoryHierarchyConfig()
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.llc = SetAssociativeCache(self.config.llc)
        self.dram = DramModel(self.config.dram)
        self.dtlb = Tlb(self.config.tlb)
        self.l1_stride = StridePrefetcher(degree=2)
        self.l2_stride = StridePrefetcher(degree=4)
        self.l2_streamer = StreamPrefetcher(degree=2)
        #: Callbacks invoked with the line address of every L1-D eviction
        #: (used by the coherence directory and the Constable-AMT-I variant).
        self.l1_eviction_listeners: List[Callable[[int], None]] = []
        #: Callbacks invoked with the line address of every L1-D demand fill.
        self.l1_fill_listeners: List[Callable[[int], None]] = []
        self.level_counts: Dict[str, int] = {"L1D": 0, "L2": 0, "LLC": 0, "DRAM": 0}

    # ------------------------------------------------------------------ helpers

    def _notify_eviction(self, line: Optional[int]) -> None:
        if line is None:
            return
        for listener in self.l1_eviction_listeners:
            listener(line)

    def _notify_fill(self, line: int) -> None:
        for listener in self.l1_fill_listeners:
            listener(line)

    def _fill_l1(self, address: int, from_prefetch: bool = False) -> None:
        evicted = self.l1d.fill(address, from_prefetch=from_prefetch)
        self._notify_eviction(evicted)
        if not from_prefetch:
            self._notify_fill(self.l1d.line_address(address))

    def _run_prefetchers(self, pc: int, address: int) -> None:
        if not self.config.enable_prefetchers:
            return
        for line in self.l1_stride.observe(pc, address):
            self._fill_l1(line, from_prefetch=True)
        l2_candidates = self.l2_stride.observe(pc, address) + self.l2_streamer.observe(pc, address)
        for line in l2_candidates:
            self.l2.fill(line, from_prefetch=True)

    # ------------------------------------------------------------------- access

    def load_access(self, address: int, pc: int = 0) -> Tuple[int, str]:
        """Perform a demand load; returns ``(latency_cycles, servicing_level)``."""
        latency = self.dtlb.translate(address)
        cfg = self.config
        if self.l1d.access(address):
            self._run_prefetchers(pc, address)
            self.level_counts["L1D"] += 1
            return latency + cfg.l1d.latency, "L1D"
        if self.l2.access(address):
            level, extra = "L2", cfg.l2.latency
            self.level_counts["L2"] += 1
        elif self.llc.access(address):
            level, extra = "LLC", cfg.llc.latency
            self.level_counts["LLC"] += 1
        else:
            level, extra = "DRAM", cfg.llc.latency + self.dram.access_latency(address)
            self.level_counts["DRAM"] += 1
            self.llc.fill(address)
        self.l2.fill(address)
        self._fill_l1(address)
        self._run_prefetchers(pc, address)
        return latency + cfg.l1d.latency + extra, level

    def store_access(self, address: int, pc: int = 0) -> int:
        """Perform a store commit (write-allocate); returns its L1 latency."""
        latency = self.dtlb.translate(address)
        if not self.l1d.access(address, is_write=True):
            if not self.l2.access(address, is_write=True):
                if not self.llc.access(address, is_write=True):
                    self.llc.fill(address)
                self.l2.fill(address)
            self._fill_l1(address)
        self._run_prefetchers(pc, address)
        return latency + self.config.l1d.latency

    def invalidate_line(self, address: int) -> None:
        """Invalidate a line across all levels (snoop-induced)."""
        self.l1d.invalidate(address)
        self.l2.invalidate(address)
        self.llc.invalidate(address)

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest future cycle at which the hierarchy changes state on its own.

        The caches and prefetchers mutate only when an access drives them, and
        every access latency is charged up front at the access — there are no
        in-flight MSHR-style transactions completing at a later wall-clock
        time.  The only component that could own a timer is DRAM, so this
        simply forwards its (currently always-``None``) answer.  The
        event-driven core folds this query into its next-interesting-cycle
        computation; a hierarchy gaining MSHRs or a busy-until DRAM only has
        to return its earliest timer here to keep cycle skipping exact.
        """
        return self.dram.next_ready_cycle()

    # -------------------------------------------------------------------- stats

    def l1d_accesses(self) -> int:
        """Total L1-D demand accesses (loads + stores)."""
        return self.l1d.stats.accesses

    def stats_summary(self) -> Dict[str, object]:
        return {
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
            "llc": self.llc.stats.as_dict(),
            "dram_accesses": self.dram.accesses(),
            "dtlb_accesses": self.dtlb.accesses,
            "dtlb_hit_rate": self.dtlb.hit_rate(),
            "service_levels": dict(self.level_counts),
        }
