"""Three-level cache hierarchy with prefetchers, DTLB, DRAM and eviction callbacks.

Geometry defaults follow the paper's baseline (Table 2): 48 KB/12-way L1-D with
a 5-cycle latency and a stride prefetcher; 2 MB/16-way L2 with stride+streamer;
3 MB/12-way LLC; DDR4-like main memory.  The hierarchy reports, per access, the
total load-to-use latency and which level serviced it, and exposes L1-D access
counts (used by Fig. 18b and the MEU power breakdown of Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DramConfig, DramModel
from repro.memory.prefetcher import StridePrefetcher, StreamPrefetcher
from repro.memory.tlb import Tlb, TlbConfig

#: Cache line size used across the hierarchy and the coherence directory.
CACHE_LINE_SIZE = 64


@dataclass
class MemoryHierarchyConfig:
    """Configuration of the full data-side memory hierarchy."""

    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=48 * 1024, ways=12, line_size=CACHE_LINE_SIZE, latency=5))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=2 * 1024 * 1024, ways=16, line_size=CACHE_LINE_SIZE, latency=14))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="LLC", size_bytes=3 * 1024 * 1024, ways=12, line_size=CACHE_LINE_SIZE, latency=50))
    dram: DramConfig = field(default_factory=DramConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    enable_prefetchers: bool = True


class MemoryHierarchy:
    """L1-D / L2 / LLC / DRAM with simple prefetching and eviction callbacks."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None):
        self.config = config or MemoryHierarchyConfig()
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.llc = SetAssociativeCache(self.config.llc)
        self.dram = DramModel(self.config.dram)
        self.dtlb = Tlb(self.config.tlb)
        self.l1_stride = StridePrefetcher(degree=2)
        self.l2_stride = StridePrefetcher(degree=4)
        self.l2_streamer = StreamPrefetcher(degree=2)
        #: Callbacks invoked with the line address of every L1-D eviction
        #: (used by the coherence directory and the Constable-AMT-I variant).
        self.l1_eviction_listeners: List[Callable[[int], None]] = []
        #: Callbacks invoked with the line address of every L1-D demand fill.
        self.l1_fill_listeners: List[Callable[[int], None]] = []
        self.level_counts: Dict[str, int] = {"L1D": 0, "L2": 0, "LLC": 0, "DRAM": 0}
        #: Earliest still-in-flight demand-load completion (load-to-use data
        #: return as scheduled by the core), or None.  Fed by
        #: :meth:`note_inflight`, consumed by :meth:`next_ready_cycle`.
        self._earliest_inflight: Optional[int] = None
        #: Servicing level of the most recent demand load (used to attribute
        #: the in-flight timer to DRAM when main memory owned the miss).
        self._last_demand_level: Optional[str] = None

    # ------------------------------------------------------------------ helpers

    def _notify_eviction(self, line: Optional[int]) -> None:
        if line is None:
            return
        for listener in self.l1_eviction_listeners:
            listener(line)

    def _notify_fill(self, line: int) -> None:
        for listener in self.l1_fill_listeners:
            listener(line)

    def _fill_l1(self, address: int, from_prefetch: bool = False) -> None:
        evicted = self.l1d.fill(address, from_prefetch=from_prefetch)
        self._notify_eviction(evicted)
        if not from_prefetch:
            self._notify_fill(self.l1d.line_address(address))

    def _run_prefetchers(self, pc: int, address: int) -> None:
        if not self.config.enable_prefetchers:
            return
        for line in self.l1_stride.observe(pc, address):
            self._fill_l1(line, from_prefetch=True)
        l2_candidates = self.l2_stride.observe(pc, address) + self.l2_streamer.observe(pc, address)
        for line in l2_candidates:
            self.l2.fill(line, from_prefetch=True)

    # ------------------------------------------------------------------- access

    def load_access(self, address: int, pc: int = 0) -> Tuple[int, str]:
        """Perform a demand load; returns ``(latency_cycles, servicing_level)``."""
        latency = self.dtlb.translate(address)
        cfg = self.config
        if self.l1d.access(address):
            self._run_prefetchers(pc, address)
            self.level_counts["L1D"] += 1
            self._last_demand_level = "L1D"
            return latency + cfg.l1d.latency, "L1D"
        if self.l2.access(address):
            level, extra = "L2", cfg.l2.latency
            self.level_counts["L2"] += 1
        elif self.llc.access(address):
            level, extra = "LLC", cfg.llc.latency
            self.level_counts["LLC"] += 1
        else:
            level, extra = "DRAM", cfg.llc.latency + self.dram.access_latency(address)
            self.level_counts["DRAM"] += 1
            self.llc.fill(address)
        self.l2.fill(address)
        self._fill_l1(address)
        self._run_prefetchers(pc, address)
        self._last_demand_level = level
        return latency + cfg.l1d.latency + extra, level

    def store_access(self, address: int, pc: int = 0) -> int:
        """Perform a store commit (write-allocate); returns its L1 latency."""
        latency = self.dtlb.translate(address)
        if not self.l1d.access(address, is_write=True):
            if not self.l2.access(address, is_write=True):
                if not self.llc.access(address, is_write=True):
                    self.llc.fill(address)
                self.l2.fill(address)
            self._fill_l1(address)
        self._run_prefetchers(pc, address)
        return latency + self.config.l1d.latency

    def invalidate_line(self, address: int) -> None:
        """Invalidate a line across all levels (snoop-induced)."""
        self.l1d.invalidate(address)
        self.l2.invalidate(address)
        self.llc.invalidate(address)

    def note_inflight(self, completion_cycle: int) -> None:
        """Record that the most recent demand load's data returns to the core
        at ``completion_cycle``.

        Called by the core at load issue with the completion cycle it pushed
        onto its completion heap (AGU plus the hierarchy latency this access
        reported), so the hierarchy's forward timer matches the event the
        core will actually observe.  When DRAM serviced the miss, the timer
        is forwarded to the DRAM model too — main memory then owns a genuine
        transaction-completion timer of its own.
        """
        earliest = self._earliest_inflight
        if earliest is None or completion_cycle < earliest:
            self._earliest_inflight = completion_cycle
        if self._last_demand_level == "DRAM":
            self.dram.note_inflight(completion_cycle)

    def next_ready_cycle(self, now: int) -> Optional[int]:
        """Earliest known future cycle at which an in-flight access completes.

        The caches and prefetchers charge every latency up front at access
        time, so the hierarchy's forward timer is the earliest *demand load
        data return* recorded by :meth:`note_inflight` that is still ahead of
        ``now``, combined with the DRAM model's own transaction timer.  An
        expired timer is dropped (the next in-flight completion is not
        locally derivable; the core's completion heap still bounds the skip
        target, so forgetting can only delay a skip, never land it past an
        event).  Returns None when nothing is known to be in flight.
        """
        earliest = self._earliest_inflight
        if earliest is not None and earliest <= now:
            self._earliest_inflight = earliest = None
        dram_ready = self.dram.next_ready_cycle(now)
        if earliest is None:
            return dram_ready
        if dram_ready is None:
            return earliest
        return min(earliest, dram_ready)

    # -------------------------------------------------------------------- stats

    def l1d_accesses(self) -> int:
        """Total L1-D demand accesses (loads + stores)."""
        return self.l1d.stats.accesses

    def stats_summary(self) -> Dict[str, object]:
        """Per-level cache/TLB/DRAM counters as one nested dictionary."""
        return {
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
            "llc": self.llc.stats.as_dict(),
            "dram_accesses": self.dram.accesses(),
            "dtlb_accesses": self.dtlb.accesses,
            "dtlb_hit_rate": self.dtlb.hit_rate(),
            "service_levels": dict(self.level_counts),
        }
