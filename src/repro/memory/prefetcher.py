"""Hardware data prefetchers: PC-based stride and next-line streamer.

The baseline system of the paper runs a stride prefetcher at L1-D and
stride + streamer (+SPP) at L2.  Prefetchers here generate candidate line
addresses that the hierarchy fills into the target cache; their effect on the
results is indirect (they shape the load-latency distribution of the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(slots=True)
class _StrideEntry:
    last_address: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """PC-indexed stride prefetcher (Fu et al., MICRO 1992 style)."""

    def __init__(self, table_size: int = 256, degree: int = 2,
                 confidence_threshold: int = 2, line_size: int = 64):
        if table_size <= 0 or degree <= 0:
            raise ValueError("table_size and degree must be positive")
        self.table_size = table_size
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.line_size = line_size
        self._table: Dict[int, _StrideEntry] = {}
        self.issued_prefetches = 0

    def observe(self, pc: int, address: int) -> List[int]:
        """Observe a demand access and return line addresses to prefetch."""
        entry = self._table.get(pc)
        prefetches: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict an arbitrary (oldest-inserted) entry.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(last_address=address)
            return prefetches
        stride = address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 7)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = address
        if entry.confidence >= self.confidence_threshold and entry.stride != 0:
            for k in range(1, self.degree + 1):
                target = address + entry.stride * k
                if target >= 0:
                    prefetches.append(target - (target % self.line_size))
        self.issued_prefetches += len(prefetches)
        return prefetches


class StreamPrefetcher:
    """Simple next-line streamer: prefetches the next N lines of an accessed region."""

    def __init__(self, degree: int = 1, line_size: int = 64):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self.line_size = line_size
        self._last_line: Optional[int] = None
        self.issued_prefetches = 0

    def observe(self, pc: int, address: int) -> List[int]:
        """Observe a demand access and return line addresses to prefetch."""
        del pc
        line = address - (address % self.line_size)
        prefetches: List[int] = []
        if self._last_line is not None and 0 < line - self._last_line <= 2 * self.line_size:
            for k in range(1, self.degree + 1):
                prefetches.append(line + k * self.line_size)
        self._last_line = line
        self.issued_prefetches += len(prefetches)
        return prefetches
