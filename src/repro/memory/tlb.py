"""Data TLB model: a small fully-counted set-associative translation cache.

Only the access counts (for the MEU power breakdown of Fig. 19) and a modest
miss penalty matter; page-table walks are modelled as a fixed latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class TlbConfig:
    """DTLB geometry and miss penalty."""

    entries: int = 96
    ways: int = 6
    page_size: int = 4096
    miss_penalty: int = 25

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB geometry must be positive")
        if self.entries % self.ways != 0:
            raise ValueError("TLB entries must be a multiple of ways")


class Tlb:
    """LRU set-associative DTLB."""

    def __init__(self, config: TlbConfig = TlbConfig()):
        self.config = config
        self._num_sets = config.entries // config.ways
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def translate(self, address: int) -> int:
        """Access the TLB for ``address``; returns the extra latency (0 on hit)."""
        self.accesses += 1
        page = address // self.config.page_size
        index = page % self._num_sets
        tlb_set = self._sets[index]
        if page in tlb_set:
            self.hits += 1
            tlb_set.remove(page)
            tlb_set.append(page)
            return 0
        self.misses += 1
        if len(tlb_set) >= self.config.ways:
            tlb_set.pop(0)
        tlb_set.append(page)
        return self.config.miss_penalty

    def hit_rate(self) -> float:
        """Hits as a fraction of accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses
