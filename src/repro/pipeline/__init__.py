"""Cycle-level out-of-order core model (trace-driven) with optional Constable,
load value prediction, MRN, ELAR and RFP attached."""

from repro.pipeline.config import CoreConfig
from repro.pipeline.stats import SimulationResult, PipelineStats
from repro.pipeline.cpu import OutOfOrderCore, GoldenCheckError, simulate_trace
from repro.pipeline.smt import simulate_smt_pair, SmtResult

__all__ = [
    "CoreConfig",
    "SimulationResult",
    "PipelineStats",
    "OutOfOrderCore",
    "GoldenCheckError",
    "simulate_trace",
    "simulate_smt_pair",
    "SmtResult",
]
