"""Core configuration: the Golden-Cove-like baseline of Table 2 plus mechanism knobs."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.backend.ports import PortConfig
from repro.backend.resources import BackendSizes
from repro.core.config import ConstableConfig
from repro.core.ideal import IdealOracle
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.rename.optimizations import RenameOptimizationConfig


@dataclass
class CoreConfig:
    """All parameters of one simulated core.

    Defaults follow the paper's baseline (Table 2): a 6-wide out-of-order core
    with Memory Renaming and the rename-stage dynamic optimizations enabled,
    and no Constable / value predictor attached.
    """

    # Pipeline widths.
    fetch_width: int = 8
    decode_width: int = 6
    rename_width: int = 6
    retire_width: int = 6
    idq_entries: int = 144

    # Window sizes and execution ports.
    sizes: BackendSizes = field(default_factory=BackendSizes)
    ports: PortConfig = field(default_factory=PortConfig)

    # Execution latencies (cycles).
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 18
    agu_latency: int = 1
    store_forward_latency: int = 5

    # Recovery penalties (cycles).
    frontend_refill_cycles: int = 10
    flush_penalty: int = 10

    # Memory hierarchy.
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    # Baseline rename-stage mechanisms.
    rename_optimizations: RenameOptimizationConfig = field(default_factory=RenameOptimizationConfig)
    enable_memory_renaming: bool = True

    # Optional mechanisms under study.
    constable: Optional[ConstableConfig] = None
    lvp: Optional[str] = None              # None | "eves" | "llvp"
    ideal_oracle: Optional[IdealOracle] = None
    enable_elar: bool = False
    enable_rfp: bool = False

    # Oracle PC set used only for statistics classification (Fig. 6); never
    # influences timing decisions.
    stats_oracle_pcs: Optional[Set[int]] = None

    # Workload/architecture parameters.
    num_registers: int = 16
    num_cores: int = 2                      # for the coherence directory
    max_cycles_per_instruction: int = 200   # runaway-simulation guard

    def __post_init__(self) -> None:
        for name in ("fetch_width", "decode_width", "rename_width", "retire_width"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.lvp not in (None, "eves", "llvp"):
            raise ValueError(f"unknown load value predictor {self.lvp!r}")

    # ----------------------------------------------------------------- variants

    def copy(self, **overrides) -> "CoreConfig":
        """A shallow-copied configuration with selected fields replaced."""
        return dataclasses.replace(self, **overrides)

    def with_load_width(self, load_units: int) -> "CoreConfig":
        """Scale the number of load execution units (Fig. 20a sensitivity)."""
        if load_units <= 0:
            raise ValueError("load_units must be positive")
        ports = PortConfig(
            issue_width=self.ports.issue_width,
            alu=self.ports.alu,
            load=load_units,
            store_address=self.ports.store_address,
            store_data=self.ports.store_data,
        )
        return self.copy(ports=ports)

    def with_depth_scale(self, factor: float) -> "CoreConfig":
        """Scale ROB/RS/LB/SB depth (Fig. 20b sensitivity)."""
        return self.copy(sizes=self.sizes.scaled(factor))
