"""Trace-driven, cycle-level out-of-order core model.

The model is occupancy- and port-accurate where it matters for Constable:
loads contend for reservation-station entries and load execution units, their
latency is set by the cache hierarchy, stores resolve addresses at execution
and can catch younger loads (including eliminated ones) violating memory
ordering, and the retire stage runs the golden check of paper §8.5 comparing
the value Constable supplied against the functional trace.

Functional correctness always comes from the trace; the simulator only decides
*when* things happen - except for eliminated / ideally-handled loads, whose
values come from Constable's structures and are therefore checked at retire.

Two execution engines drive the same stage pipeline:

* ``"cycle"`` — the reference stepper: every cycle runs every stage, idle or
  not.
* ``"event"`` (default) — event-driven cycle skipping: after a cycle in which
  *no* stage made progress, the core computes the next "interesting" cycle
  (minimum over the completion-heap head, each thread's front-end refill
  timer, and the next-ready queries of the memory hierarchy, execution ports
  and store queues) and advances ``self.cycle`` straight to it instead of
  ticking through the idle gap.  Long memory stalls — the dominant cost of
  the paper's memory-bound workloads — collapse from hundreds of no-op stage
  sweeps into one jump.

The two engines are bit-identical by construction.  A zero-progress cycle
leaves the whole machine state untouched except for two per-cycle accounting
counters (the port model's cycle count and the SLD-updates-per-cycle
histogram's zero bucket), which the skip replays in bulk.  No stage can
become able to make progress *during* an idle gap except through one of the
events the skip target minimises over: source operands only ever become ready
at completion-heap pops, retire waits on the heap too, rename waits on
resources freed by retire/flush, and fetch waits on the refill timer or a
branch resolution (again the heap).  One stall shape is excluded from
skipping outright: a load whose rename attempt finds the reservation station
full only *after* running its side-effecting mechanisms (Constable SLD
lookup, LVP predict, RFP prefetch) — the reference repeats those effects
every stalled cycle, so such cycles step one by one until the RS drains.
The differential tests in ``tests/test_event_driven.py`` and the golden
fixtures pin this equivalence.
"""

from __future__ import annotations

import heapq
import os
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.dependence import MemoryDependencePredictor
from repro.backend.ports import ExecutionPorts, PortKind
from repro.backend.resources import ResourcePool
from repro.backend.store_queue import StoreQueue
from repro.core.constable import ConstableEngine
from repro.core.ideal import IdealMode, IdealOracle
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.instruction import DynamicInstruction, OpClass
from repro.lvp.eves import EvesPredictor
from repro.lvp.llvp import LipastiPredictor
from repro.memory.coherence import Directory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.stats import PipelineStats, SimulationResult
from repro.pipeline.uop import InflightOp
from repro.prior.elar import EarlyLoadAddressResolver
from repro.prior.rfp import RegisterFilePrefetcher
from repro.rename.memory_renaming import MemoryRenamer
from repro.rename.optimizations import OptimizationKind, RenameOptimizer
from repro.rename.rat import RegisterAliasTable
from repro.workloads.trace import Trace

#: The simulated core's identifier in the coherence directory.
OWN_CORE = 0

#: Environment variable selecting the default execution engine.
CORE_ENGINE_ENV = "REPRO_CORE_ENGINE"

#: Supported execution engines: event-driven cycle skipping (default) and the
#: per-cycle reference stepper it is differentially tested against.
CORE_ENGINES = ("event", "cycle")


#: Unknown ``REPRO_CORE_ENGINE`` values already warned about in this process.
_WARNED_ENGINE_VALUES: Set[str] = set()


def default_engine() -> str:
    """The engine used when a core is built without an explicit choice.

    ``REPRO_CORE_ENGINE=cycle`` forces the per-cycle reference stepper
    process-wide (including pool workers, which inherit the environment) —
    the differential tests and the ``repro bench`` harness use this to run
    both engines over identical sweeps.  Unknown values fall back to the
    event-driven engine rather than failing an entire sweep over a typo, but
    warn once per process — a typo here would otherwise turn a differential
    run into a vacuous event-vs-event comparison.
    """
    raw = os.environ.get(CORE_ENGINE_ENV, "").strip().lower()
    if raw and raw not in CORE_ENGINES:
        if raw not in _WARNED_ENGINE_VALUES:
            _WARNED_ENGINE_VALUES.add(raw)
            warnings.warn(
                f"ignoring unknown {CORE_ENGINE_ENV}={raw!r}; using 'event' "
                f"(expected one of {CORE_ENGINES})",
                RuntimeWarning, stacklevel=2)
        return "event"
    return raw or "event"


class GoldenCheckError(AssertionError):
    """Raised when a retired load's value/address disagrees with the functional trace."""


class _ThreadState:
    """Per-hardware-thread front-end and window state."""

    def __init__(self, thread_id: int, trace: Trace, config: CoreConfig,
                 rob_capacity: int, lb_capacity: int, sb_capacity: int):
        self.thread_id = thread_id
        self.trace = trace
        self.instructions = trace.instructions
        # The trace's snoop sequence is an immutable tuple: share it and walk
        # it by index instead of copying it per hardware thread.
        self.snoops = trace.snoops
        self.snoop_index = 0
        self.fetch_index = 0
        self.fetch_blocked_until = 0
        self.pending_redirect_seq: Optional[int] = None
        self.idq: deque = deque()
        self.rob: List[InflightOp] = []
        self.load_buffer: List[InflightOp] = []
        self.store_queue = StoreQueue()
        self.rat: RegisterAliasTable = RegisterAliasTable(config.num_registers)
        self.rob_pool = ResourcePool(f"ROB.t{thread_id}", rob_capacity)
        self.lb_pool = ResourcePool(f"LB.t{thread_id}", lb_capacity)
        self.sb_pool = ResourcePool(f"SB.t{thread_id}", sb_capacity)
        self.branch_history = 0
        self.constable: Optional[ConstableEngine] = None
        self.lvp = None
        self.mrn: Optional[MemoryRenamer] = None
        self.retired_instructions = 0
        self.finish_cycle: Optional[int] = None

    def fetch_done(self) -> bool:
        return self.fetch_index >= len(self.instructions)

    def done(self) -> bool:
        return self.fetch_done() and not self.rob and not self.idq


class OutOfOrderCore:
    """The simulated core: one or two hardware threads over shared execution resources."""

    def __init__(self, config: CoreConfig, traces: Sequence[Trace],
                 name: str = "baseline", engine: Optional[str] = None):
        if not traces:
            raise ValueError("at least one trace is required")
        if len(traces) > 2:
            raise ValueError("at most two hardware threads (2-way SMT) are supported")
        if engine is None:
            engine = default_engine()
        if engine not in CORE_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {CORE_ENGINES}")
        self.config = config
        self.name = name
        self.engine = engine
        self.smt = len(traces) > 1
        self.stats = PipelineStats()
        self.ports = ExecutionPorts(config.ports)
        self.hierarchy = MemoryHierarchy(config.memory)
        self.directory = Directory(num_cores=config.num_cores,
                                   line_size=config.memory.l1d.line_size)
        self.branch_predictor = BranchPredictor()
        self.dependence_predictor = MemoryDependencePredictor()
        self.rename_optimizer = RenameOptimizer(config.rename_optimizations)
        self.elar = EarlyLoadAddressResolver() if config.enable_elar else None
        self.rfp = RegisterFilePrefetcher() if config.enable_rfp else None
        self.rs_pool = ResourcePool("RS", config.sizes.rs)

        partition = 2 if self.smt else 1
        self.threads: List[_ThreadState] = []
        for thread_id, trace in enumerate(traces):
            thread = _ThreadState(
                thread_id, trace, config,
                rob_capacity=max(8, config.sizes.rob // partition),
                lb_capacity=max(4, config.sizes.load_buffer // partition),
                sb_capacity=max(4, config.sizes.store_buffer // partition),
            )
            if config.constable is not None:
                thread.constable = ConstableEngine(config.constable,
                                                   num_registers=config.num_registers)
            if config.lvp == "eves":
                thread.lvp = EvesPredictor()
            elif config.lvp == "llvp":
                thread.lvp = LipastiPredictor()
            if config.enable_memory_renaming:
                thread.mrn = MemoryRenamer()
            self.threads.append(thread)

        self.oracle: Optional[IdealOracle] = config.ideal_oracle
        if self.oracle is not None:
            self.oracle.reset_runtime_state()
        self.stats_oracle_pcs: Set[int] = set(config.stats_oracle_pcs or ())

        # Coherence bookkeeping: CV bits follow L1 fills and evictions.
        self.hierarchy.l1_fill_listeners.append(self._on_l1_fill)
        self.hierarchy.l1_eviction_listeners.append(self._on_l1_eviction)

        self.cycle = 0
        self._completion_heap: List[Tuple[int, int, InflightOp]] = []
        self._heap_counter = 0
        self._rs_waiting: List[InflightOp] = []
        self._denied_nonstable_load_this_cycle = False
        self._issued_loads_this_cycle: List[InflightOp] = []
        # True when this cycle a load's rename attempt stalled on a full RS
        # *after* running its side-effecting mechanisms; such cycles must not
        # be skipped (the reference repeats the side effects every cycle).
        self._rename_stall_after_side_effects = False
        #: Idle cycles the event engine jumped over instead of stepping.
        self.skipped_idle_cycles = 0
        #: Cycles in which the stage pipeline actually ran.
        self.stepped_cycles = 0

    # ------------------------------------------------------------------ helpers

    def _on_l1_fill(self, line_address: int) -> None:
        self.directory.record_fill(line_address, OWN_CORE)

    def _on_l1_eviction(self, line_address: int) -> None:
        self.directory.record_eviction(line_address, OWN_CORE)
        for thread in self.threads:
            if thread.constable is not None:
                thread.constable.on_l1_eviction(line_address)

    def _schedule_completion(self, op: InflightOp, finish_cycle: int) -> None:
        self._heap_counter += 1
        op.finish_cycle = finish_cycle
        heapq.heappush(self._completion_heap, (finish_cycle, self._heap_counter, op))

    @staticmethod
    def _word(address: int) -> int:
        return address & ~0x7

    # ===================================================================== fetch

    def _deliver_snoops(self, thread: _ThreadState) -> None:
        """Deliver snoop events anchored before the next instruction to fetch."""
        next_seq = (thread.instructions[thread.fetch_index].seq
                    if not thread.fetch_done() else None)
        while thread.snoop_index < len(thread.snoops):
            snoop = thread.snoops[thread.snoop_index]
            if next_seq is not None and snoop.after_seq > next_seq:
                break
            thread.snoop_index += 1
            if self.directory.snoop_reaches_core(snoop.address, OWN_CORE):
                self.hierarchy.invalidate_line(snoop.address)
                if thread.constable is not None:
                    thread.constable.on_snoop(snoop.address)

    def _apply_wrong_path_noise(self, thread: _ThreadState, pc: int) -> None:
        """Emulate wrong-path instructions updating Constable's RMT/SLD (Fig. 9b)."""
        constable = thread.constable
        if constable is None or not constable.config.wrong_path_updates:
            return
        # Deterministic pseudo-random register choices derived from the branch PC.
        registers = [(pc >> 3) % self.config.num_registers,
                     (pc >> 7) % self.config.num_registers]
        for register in registers:
            constable.on_register_write(register)

    def _fetch_thread(self, thread: _ThreadState, budget: int) -> int:
        fetched = 0
        while (fetched < budget and not thread.fetch_done()
               and len(thread.idq) < self.config.idq_entries
               and self.cycle >= thread.fetch_blocked_until
               and thread.pending_redirect_seq is None):
            self._deliver_snoops(thread)
            dyn = thread.instructions[thread.fetch_index]
            thread.idq.append((dyn, thread.fetch_index))
            thread.fetch_index += 1
            fetched += 1
            self.stats.uops_fetched += 1
            if dyn.is_branch:
                is_conditional = dyn.static.opclass is OpClass.BRANCH
                predicted = self.branch_predictor.predict_taken(dyn.pc, is_conditional)
                if is_conditional:
                    self.stats.branches_predicted += 1
                if predicted != dyn.branch_taken:
                    # Fetch must wait until the branch resolves (trace-driven model).
                    thread.pending_redirect_seq = dyn.seq
                    self.stats.branch_mispredictions += 1
                    self._apply_wrong_path_noise(thread, dyn.pc)
                    break
        return fetched

    def _fetch_stage(self) -> None:
        budget = self.config.fetch_width
        if self.smt:
            per_thread = max(1, budget // len(self.threads))
            for offset in range(len(self.threads)):
                thread = self.threads[(self.cycle + offset) % len(self.threads)]
                self._fetch_thread(thread, per_thread)
        else:
            self._fetch_thread(self.threads[0], budget)

    # ==================================================================== rename

    def _producer_sources(self, thread: _ThreadState, dyn: DynamicInstruction,
                          op: InflightOp) -> None:
        for register in dyn.static.source_registers():
            producer = thread.rat.producer_of(register)
            if producer is not None and not producer.squashed:
                ready = producer.value_ready_cycle
                if ready is None or ready > self.cycle:
                    op.depends_on.append(producer)

    def _rename_load(self, thread: _ThreadState, op: InflightOp) -> None:
        dyn = op.dyn
        config = self.config
        mode = dyn.static.addressing_mode()
        op.oracle_stable = dyn.pc in self.stats_oracle_pcs
        if op.oracle_stable:
            self.stats.oracle_stable_loads_renamed += 1

        # Ideal oracle mechanisms (Fig. 7) take precedence over everything else.
        if self.oracle is not None and self.oracle.covers(dyn.pc):
            op.ideal_covered = True
            address, value = self.oracle.known_value(dyn.pc)
            op.ideal_address, op.ideal_value = address, value
            if self.oracle.mode is IdealMode.CONSTABLE:
                op.eliminated = True
                op.constable_address, op.constable_value = address, value
                op.needs_rs = False
                op.executed_at_rename = True
                op.mark_complete(self.cycle)
                op.value_obtained_cycle = self.cycle
                return
            # Both stable-LVP modes break the data dependence immediately.
            op.mark_value_ready(self.cycle)
            op.value_obtained_cycle = self.cycle
            return

        # Constable (the real mechanism).
        if thread.constable is not None:
            decision = thread.constable.on_load_rename(dyn.pc, mode)
            op.likely_stable = decision.likely_stable
            if decision.eliminate:
                op.eliminated = True
                op.constable_value = decision.value
                op.constable_address = decision.address
                op.needs_rs = False
                op.executed_at_rename = True
                op.mark_complete(self.cycle)
                op.value_obtained_cycle = self.cycle
                return

        # Load value prediction (EVES / LLVP).
        if thread.lvp is not None:
            prediction = thread.lvp.predict(dyn.pc, thread.branch_history)
            if prediction.predicted:
                op.lvp_prediction = prediction
                op.mark_value_ready(self.cycle)
                op.value_obtained_cycle = self.cycle
                self.stats.value_predicted_loads += 1

        # Memory renaming: break the data dependence if a paired store is in flight.
        if thread.mrn is not None and op.lvp_prediction is None:
            store_pc = thread.mrn.predicted_store_pc(dyn.pc)
            if store_pc is not None:
                for record in reversed(thread.store_queue.records()):
                    if record.pc == store_pc:
                        op.mrn_store = record
                        op.mrn_predicted = True
                        op.mark_value_ready(self.cycle)
                        break

        # ELAR / RFP.
        if self.elar is not None and self.elar.can_resolve_early(dyn):
            op.elar_early = True
        if self.rfp is not None:
            predicted_address = self.rfp.issue_prefetch(dyn.pc)
            if predicted_address is not None:
                op.rfp_address = predicted_address
                self.hierarchy.load_access(predicted_address, dyn.pc)

    def _rename_one(self, thread: _ThreadState, dyn: DynamicInstruction,
                    trace_index: int, loads_renamed_this_cycle: int) -> Optional[InflightOp]:
        """Rename a single micro-op; returns None if allocation must stall."""
        config = self.config

        # Per-cycle SLD read-port limit (§6.7.1): stall beyond three loads/cycle.
        if (thread.constable is not None and dyn.is_load
                and loads_renamed_this_cycle >= config.constable.sld_read_ports):
            self.stats.rename_stalls_sld_ports += 1
            return None
        if (thread.constable is not None
                and thread.constable.sld_updates_this_cycle > config.constable.sld_write_ports):
            self.stats.rename_stalls_sld_ports += 1
            return None

        op = InflightOp(dyn, thread.thread_id, trace_index, self.cycle)
        op.optimization = self.rename_optimizer.classify(dyn)

        # Resource checks (no partial allocation: check first, then claim).
        if not thread.rob_pool.can_allocate():
            return None
        if dyn.is_load and not thread.lb_pool.can_allocate():
            return None
        if dyn.is_store and not thread.sb_pool.can_allocate():
            return None

        self._producer_sources(thread, dyn, op)

        if op.optimization is not OptimizationKind.NONE:
            # Folded/eliminated at rename: completes immediately, no RS, no port.
            op.needs_rs = False
            op.executed_at_rename = True
            op.mark_complete(self.cycle)
        elif dyn.is_load:
            self._rename_load(thread, op)
        elif dyn.is_store:
            op.port_kind = PortKind.STORE_ADDRESS
        elif (dyn.is_branch
              or dyn.static.opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV,
                                        OpClass.MOVE_REG, OpClass.MOVE_IMM)):
            # Non-folded moves execute on an ALU port like any other integer op.
            op.port_kind = PortKind.ALU
        else:
            op.needs_rs = False
            op.executed_at_rename = True
            op.mark_complete(self.cycle)

        if dyn.is_load and not op.eliminated and op.optimization is OptimizationKind.NONE:
            op.port_kind = PortKind.LOAD

        needs_rs = op.needs_rs and not op.executed_at_rename
        if needs_rs and not self.rs_pool.can_allocate():
            if dyn.is_load:
                # The attempt already ran the rename-stage load mechanisms
                # (Constable SLD lookup, LVP predict, RFP prefetch into the
                # real hierarchy) before discovering the RS is full, and the
                # per-cycle reference re-runs them on every stalled cycle.
                # Flag the cycle so the event engine does not skip the gap —
                # eliding those repeats would diverge observable statistics.
                self._rename_stall_after_side_effects = True
            return None

        # Claim resources.
        thread.rob_pool.allocate()
        if dyn.is_load:
            thread.lb_pool.allocate()
        if dyn.is_store:
            thread.sb_pool.allocate()
            op.store_record = thread.store_queue.insert(dyn.seq, dyn.pc)
        if needs_rs:
            self.rs_pool.allocate()
            op.in_rs = True
            self._rs_waiting.append(op)

        # Constable: every destination write is visible to the RMT (steps 7-8).
        if thread.constable is not None and dyn.static.dest is not None:
            thread.constable.on_register_write(dyn.static.dest)

        # Update the RAT and the window.
        if dyn.static.dest is not None:
            thread.rat.set_producer(dyn.static.dest, op)
        thread.rob.append(op)
        if dyn.is_load:
            thread.load_buffer.append(op)

        # Branch history for context-based value prediction.
        if dyn.is_branch:
            thread.branch_history = ((thread.branch_history << 1)
                                     | int(dyn.branch_taken)) & ((1 << 64) - 1)

        # Bookkeeping.
        self.stats.uops_renamed += 1
        if dyn.is_load:
            self.stats.loads_renamed += 1
        elif dyn.is_store:
            self.stats.stores_renamed += 1
        elif dyn.is_branch:
            self.stats.branches_renamed += 1
        return op

    def _rename_stage(self) -> None:
        budget = self.config.rename_width
        thread_order = [self.threads[(self.cycle + i) % len(self.threads)]
                        for i in range(len(self.threads))]
        loads_this_cycle = {thread.thread_id: 0 for thread in self.threads}
        stalled = {thread.thread_id: False for thread in self.threads}
        renamed = 0
        while renamed < budget:
            progress = False
            for thread in thread_order:
                if renamed >= budget or stalled[thread.thread_id] or not thread.idq:
                    continue
                dyn, trace_index = thread.idq[0]
                op = self._rename_one(thread, dyn, trace_index,
                                      loads_this_cycle[thread.thread_id])
                if op is None:
                    stalled[thread.thread_id] = True
                    continue
                thread.idq.popleft()
                if dyn.is_load:
                    loads_this_cycle[thread.thread_id] += 1
                renamed += 1
                progress = True
            if not progress:
                break

    # ===================================================================== issue

    def _load_latency(self, thread: _ThreadState, op: InflightOp) -> int:
        config = self.config
        dyn = op.dyn
        address = dyn.address

        # Register-file prefetching: a correct address prediction hides the access.
        if self.rfp is not None and op.rfp_address is not None:
            if self.rfp.verify(op.rfp_address, address):
                return config.agu_latency + 1

        # Store-to-load forwarding from the same thread's store queue.
        forwarding = thread.store_queue.forwarding_candidate(dyn.seq, address)
        if forwarding is not None and forwarding.data_ready:
            self.stats.loads_forwarded_from_store += 1
            latency = config.agu_latency + config.store_forward_latency
        else:
            memory_latency, _ = self.hierarchy.load_access(address, dyn.pc)
            latency = config.agu_latency + memory_latency

        if op.elar_early and self.elar is not None:
            latency = max(1, latency - self.elar.latency_savings())
        return latency

    def _execute_store_address(self, thread: _ThreadState, op: InflightOp) -> None:
        """A store generated its address: AMT lookup, MRN training, ordering check."""
        dyn = op.dyn
        record = op.store_record
        record.address = dyn.address
        record.line_address = dyn.address - (dyn.address % self.config.memory.l1d.line_size)
        record.value = dyn.store_value
        record.address_ready = True
        record.data_ready = True

        if thread.constable is not None:
            thread.constable.on_store_address(dyn.address)
        if thread.mrn is not None:
            thread.mrn.observe_store(dyn.pc, dyn.address, dyn.seq)

        # Memory disambiguation (paper §6.5): younger loads that already obtained
        # a value for the same word must be squashed and re-executed.
        victim: Optional[InflightOp] = None
        store_word = self._word(dyn.address)
        for load in thread.load_buffer:
            if load.squashed or load.seq <= dyn.seq:
                continue
            load_address = load.constable_address if load.eliminated else load.dyn.address
            if self._word(load_address) != store_word:
                continue
            obtained = load.value_obtained_cycle
            if obtained is not None and obtained <= self.cycle:
                if victim is None or load.seq < victim.seq:
                    victim = load
        if victim is not None:
            self.stats.ordering_violation_flushes += 1
            self.dependence_predictor.train_violation(victim.pc)
            if victim.eliminated and thread.constable is not None:
                thread.constable.on_ordering_violation(victim.pc)
            self._flush_from(thread, victim, reason="ordering")

    def _issue_stage(self) -> None:
        config = self.config
        self._denied_nonstable_load_this_cycle = False
        self._issued_loads_this_cycle = []
        still_waiting: List[InflightOp] = []
        for op in self._rs_waiting:
            if op.squashed:
                continue
            if op.issued:
                continue
            thread = self.threads[op.thread]
            if not op.sources_ready(self.cycle):
                still_waiting.append(op)
                continue
            if (op.is_load
                    and self.dependence_predictor.should_wait_for_stores(op.pc)
                    and thread.store_queue.has_unresolved_older_store(op.seq)):
                still_waiting.append(op)
                continue
            kind = op.port_kind or PortKind.ALU
            if not self.ports.issue(kind):
                if op.is_load and not op.oracle_stable:
                    self._denied_nonstable_load_this_cycle = True
                still_waiting.append(op)
                continue

            op.issued = True
            op.issue_cycle = self.cycle
            self.rs_pool.release()
            op.in_rs = False
            self.stats.rs_issues += 1

            opclass = op.dyn.static.opclass
            if op.is_load:
                ideal_fetch_elim = (op.ideal_covered and self.oracle is not None
                                    and self.oracle.mode is IdealMode.STABLE_LVP_FETCH_ELIM)
                if ideal_fetch_elim:
                    latency = config.agu_latency
                else:
                    latency = self._load_latency(thread, op)
                self.stats.loads_executed += 1
                self.stats.agu_ops += 1
                self._issued_loads_this_cycle.append(op)
                if op.value_obtained_cycle is None:
                    op.value_obtained_cycle = self.cycle + latency
            elif op.is_store:
                latency = config.agu_latency
                self.stats.agu_ops += 1
            elif opclass is OpClass.MUL:
                latency = config.mul_latency
                self.stats.mul_ops += 1
            elif opclass is OpClass.DIV:
                latency = config.div_latency
                self.stats.div_ops += 1
            else:
                latency = config.alu_latency
                self.stats.alu_ops += 1

            self._schedule_completion(op, self.cycle + latency)

        self._rs_waiting = still_waiting

        if self._issued_loads_this_cycle:
            self.stats.load_utilized_cycles += 1
            stable_issued = any(op.oracle_stable for op in self._issued_loads_this_cycle)
            if stable_issued and self._denied_nonstable_load_this_cycle:
                self.stats.load_utilized_cycles_stable_blocking += 1
            elif stable_issued:
                self.stats.load_utilized_cycles_stable_only += 1

    # ================================================================= writeback

    def _writeback_load(self, thread: _ThreadState, op: InflightOp) -> None:
        dyn = op.dyn
        actual_value = dyn.load_value
        address = dyn.address

        if self.oracle is not None and self.oracle.is_stable(dyn.pc):
            self.oracle.observe_execution(dyn.pc, address, actual_value)

        # Value prediction verification and training.
        if thread.lvp is not None:
            if op.lvp_prediction is not None:
                correct = thread.lvp.record_outcome(op.lvp_prediction, actual_value)
                if correct:
                    self.stats.value_predictions_correct += 1
                else:
                    self.stats.lvp_misprediction_flushes += 1
                    self._flush_after(thread, op, reason="lvp")
            else:
                thread.lvp.record_outcome(op.lvp_prediction or _NO_PREDICTION, actual_value)
            thread.lvp.train(dyn.pc, actual_value, thread.branch_history)

        # Memory renaming verification and training.
        if thread.mrn is not None:
            if op.mrn_predicted and op.mrn_store is not None:
                correct = (not op.mrn_store.address_ready
                           or op.mrn_store.overlaps(address))
                thread.mrn.record_prediction(correct)
                if not correct:
                    self.stats.mrn_misprediction_flushes += 1
                    self._flush_after(thread, op, reason="mrn")
            thread.mrn.observe_load(dyn.pc, address, dyn.seq)

        # Register-file prefetcher training.
        if self.rfp is not None:
            self.rfp.train(dyn.pc, address)

        # Constable: confidence update and (for likely-stable loads) RMT/AMT insertion.
        if thread.constable is not None:
            pin = thread.constable.on_load_writeback(
                dyn.pc, address, actual_value,
                dyn.static.source_registers(), op.likely_stable)
            if pin:
                self.directory.pin(address, OWN_CORE)

        self.dependence_predictor.observe_safe_execution(dyn.pc)

    def _writeback_stage(self) -> None:
        while self._completion_heap and self._completion_heap[0][0] <= self.cycle:
            _, _, op = heapq.heappop(self._completion_heap)
            if op.squashed:
                continue
            thread = self.threads[op.thread]
            op.mark_complete(self.cycle)
            if op.is_load:
                self._writeback_load(thread, op)
            elif op.is_store:
                self._execute_store_address(thread, op)
            elif op.dyn.is_branch:
                is_conditional = op.dyn.static.opclass is OpClass.BRANCH
                predicted = self.branch_predictor.predict_taken(op.pc, is_conditional)
                self.branch_predictor.resolve(op.pc, is_conditional, predicted,
                                              op.dyn.branch_taken)
                if thread.pending_redirect_seq == op.seq:
                    thread.pending_redirect_seq = None
                    thread.fetch_blocked_until = self.cycle + self.config.frontend_refill_cycles

    # ==================================================================== retire

    def _golden_check(self, op: InflightOp) -> None:
        dyn = op.dyn
        self.stats.golden_checks += 1
        if op.eliminated and not op.reexecuted:
            if op.constable_value != dyn.load_value or op.constable_address != dyn.address:
                raise GoldenCheckError(
                    f"eliminated load at pc={dyn.pc:#x} seq={dyn.seq} retired with "
                    f"value={op.constable_value:#x} addr={op.constable_address:#x}, "
                    f"functional value={dyn.load_value:#x} addr={dyn.address:#x}")
        if op.ideal_covered and op.constable_value == 0 and op.eliminated is False:
            # Ideal stable LVP modes execute the load, nothing extra to check.
            return

    def _retire_thread(self, thread: _ThreadState, budget: int) -> int:
        retired = 0
        while retired < budget and thread.rob:
            op = thread.rob[0]
            if not op.complete or (op.complete_cycle is not None
                                   and op.complete_cycle > self.cycle):
                break
            thread.rob.pop(0)
            if op.is_load:
                self._golden_check(op)
                if op in thread.load_buffer:
                    thread.load_buffer.remove(op)
                thread.lb_pool.release()
                if op.eliminated:
                    self.stats.eliminated_loads_retired += 1
                    if op.oracle_stable:
                        self.stats.eliminated_oracle_stable_loads += 1
                    else:
                        self.stats.eliminated_non_stable_loads += 1
                    if thread.constable is not None:
                        thread.constable.release_xprf()
            if op.is_store:
                self.hierarchy.store_access(op.dyn.address, op.pc)
                self.stats.store_commits += 1
                thread.store_queue.remove(op.seq)
                thread.sb_pool.release()
            if op.dest is not None:
                thread.rat.clear_producer(op.dest, op)
            thread.rob_pool.release()
            op.retired = True
            retired += 1
            thread.retired_instructions += 1
            self.stats.instructions_retired += 1
        if thread.done() and thread.finish_cycle is None:
            thread.finish_cycle = self.cycle
        return retired

    def _retire_stage(self) -> None:
        budget = self.config.retire_width
        if self.smt:
            per_thread = max(1, budget // len(self.threads))
            for thread in self.threads:
                self._retire_thread(thread, per_thread)
        else:
            self._retire_thread(self.threads[0], budget)

    # ===================================================================== flush

    def _squash(self, thread: _ThreadState, op: InflightOp) -> None:
        op.squashed = True
        if op.in_rs:
            self.rs_pool.release()
            op.in_rs = False
        if op.is_load:
            if op in thread.load_buffer:
                thread.load_buffer.remove(op)
            thread.lb_pool.release()
            if op.eliminated and thread.constable is not None:
                thread.constable.release_xprf()
        if op.is_store:
            thread.sb_pool.release()
        if op.dest is not None:
            thread.rat.clear_producer(op.dest, op)
        thread.rob_pool.release()
        self.stats.reexecuted_uops += 1

    def _flush_from(self, thread: _ThreadState, first_victim: InflightOp,
                    reason: str) -> None:
        """Squash ``first_victim`` and everything younger in its thread, then refetch."""
        self.stats.flushes += 1
        if first_victim.is_load:
            first_victim.reexecuted = True
        try:
            start = thread.rob.index(first_victim)
        except ValueError:
            return
        victims = thread.rob[start:]
        del thread.rob[start:]
        for op in victims:
            self._squash(thread, op)
        thread.store_queue.squash_younger_than(first_victim.seq - 1)
        self._rs_waiting = [op for op in self._rs_waiting if not op.squashed]
        thread.rat.rebuild(thread.rob, lambda op: op.dest if not op.squashed else None)
        thread.idq.clear()
        thread.fetch_index = first_victim.trace_index
        thread.pending_redirect_seq = None
        thread.fetch_blocked_until = self.cycle + self.config.flush_penalty
        del reason

    def _flush_after(self, thread: _ThreadState, op: InflightOp, reason: str) -> None:
        """Squash everything younger than ``op`` (value-misprediction recovery)."""
        try:
            index = thread.rob.index(op)
        except ValueError:
            return
        if index + 1 < len(thread.rob):
            self._flush_from(thread, thread.rob[index + 1], reason)
        else:
            # Nothing younger in flight; only the front-end needs to restart.
            thread.idq.clear()
            thread.fetch_index = op.trace_index + 1
            thread.pending_redirect_seq = None
            thread.fetch_blocked_until = self.cycle + self.config.flush_penalty
            self.stats.flushes += 1

    # ======================================================================= run

    def _progress_token(self) -> Tuple[int, int, int, int, int, int, int]:
        """A fingerprint of every counter some stage bumps when it does work.

        If the token is unchanged across one full stage sweep, the cycle was
        idle: nothing fetched (``uops_fetched``, which also covers snoop
        delivery and branch-redirect setup — both happen only while an
        instruction is fetched), nothing renamed, nothing issued or scheduled
        (``rs_issues`` plus the monotone heap push counter), nothing written
        back or resolved (heap length), nothing retired, and no flush
        (``flushes`` covers both recovery paths).
        """
        stats = self.stats
        return (stats.uops_fetched, stats.uops_renamed, stats.rs_issues,
                stats.instructions_retired, stats.flushes,
                self._heap_counter, len(self._completion_heap))

    def _next_event_cycle(self) -> Optional[int]:
        """The next cycle at which an idle machine can make progress, or None.

        After a zero-progress cycle, every stage is blocked on a condition
        that only one of these events can change (see the module docstring's
        equivalence argument): the earliest scheduled completion, a thread's
        front-end refill timer, or a timed resource becoming ready.  The
        next-ready queries currently all answer ``None`` (the port, store
        queue and memory models charge latency at access time), but folding
        them in here keeps the skip exact if any of them ever grows a timer.
        """
        candidates: List[int] = []
        if self._completion_heap:
            candidates.append(self._completion_heap[0][0])
        for thread in self.threads:
            if not thread.fetch_done() and thread.fetch_blocked_until > self.cycle:
                candidates.append(thread.fetch_blocked_until)
        resource_timers = (self.hierarchy.next_ready_cycle(),
                           self.ports.next_release_cycle())
        for timer in resource_timers:
            if timer is not None:
                candidates.append(timer)
        for thread in self.threads:
            timer = thread.store_queue.next_release_cycle()
            if timer is not None:
                candidates.append(timer)
        if not candidates:
            return None
        return min(candidates)

    def _skip_idle_gap(self, max_cycles: int) -> None:
        """Jump over the idle cycles between now and the next event.

        Replays, in bulk, the only two things the per-cycle reference mutates
        during an idle cycle: the port model's cycle counter and (per
        Constable-equipped thread) a zero entry in the SLD-updates-per-cycle
        histogram.  The jump lands one cycle *before* the event so the main
        loop's increment and runaway guard see exactly the cycle values the
        reference stepper would.
        """
        target = self._next_event_cycle()
        if target is None:
            # Genuine deadlock: no scheduled completion and no front-end
            # timer can ever unblock a stage.  Jump to the runaway guard so
            # both engines raise the identical diagnostic.
            self.cycle = max_cycles
            return
        resume = min(target, max_cycles + 1)
        skipped = resume - self.cycle - 1
        if skipped <= 0:
            return
        self.ports.skip_idle_cycles(skipped)
        for thread in self.threads:
            if thread.constable is not None:
                self.stats.record_sld_updates(0, cycles=skipped)
        self.skipped_idle_cycles += skipped
        self.cycle = resume - 1

    def run(self) -> SimulationResult:
        """Simulate until every thread has drained; returns the result record."""
        total_instructions = sum(len(t.instructions) for t in self.threads)
        max_cycles = total_instructions * self.config.max_cycles_per_instruction + 10_000
        event_driven = self.engine == "event"
        while not all(thread.done() for thread in self.threads):
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles; likely a deadlock")
            self.ports.new_cycle()
            for thread in self.threads:
                if thread.constable is not None:
                    thread.constable.begin_cycle()
            before = self._progress_token() if event_driven else None
            self._rename_stall_after_side_effects = False
            self._retire_stage()
            self._writeback_stage()
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
            for thread in self.threads:
                if thread.constable is not None:
                    self.stats.record_sld_updates(thread.constable.sld_updates_this_cycle)
            self.stepped_cycles += 1
            if (event_driven and before == self._progress_token()
                    and not self._rename_stall_after_side_effects):
                self._skip_idle_gap(max_cycles)
        self.stats.cycles = self.cycle
        return self._build_result()

    # ---------------------------------------------------------------- reporting

    def _power_events(self) -> Dict[str, int]:
        stats = self.stats
        hierarchy = self.hierarchy
        events: Dict[str, int] = {
            "uops_fetched": stats.uops_fetched,
            "uops_decoded": stats.uops_fetched,
            "uops_renamed": stats.uops_renamed,
            "branches_predicted": stats.branches_predicted,
            "rs_allocations": self.rs_pool.total_allocations,
            "rs_issues": stats.rs_issues,
            "rob_allocations": sum(t.rob_pool.total_allocations for t in self.threads),
            "retired": stats.instructions_retired,
            "alu_ops": stats.alu_ops,
            "mul_ops": stats.mul_ops,
            "div_ops": stats.div_ops,
            "agu_ops": stats.agu_ops,
            "l1d_accesses": hierarchy.l1d.stats.accesses,
            "dtlb_accesses": hierarchy.dtlb.accesses,
            "l2_accesses": hierarchy.l2.stats.accesses,
            "llc_accesses": hierarchy.llc.stats.accesses,
            "dram_accesses": hierarchy.dram.accesses(),
            "store_commits": stats.store_commits,
            "cycles": self.cycle,
        }
        if self.config.lvp is not None:
            events["lvp_accesses"] = stats.loads_renamed
        if self.config.enable_memory_renaming:
            events["mrn_accesses"] = stats.loads_renamed + stats.stores_renamed
        for thread in self.threads:
            if thread.constable is not None:
                engine = thread.constable
                # One SLD read per renamed load (rename-stage lookup), one write per
                # executed load (confidence update) plus the can_eliminate resets.
                events["sld_reads"] = events.get("sld_reads", 0) + stats.loads_renamed
                events["sld_writes"] = (events.get("sld_writes", 0)
                                        + stats.loads_executed
                                        + engine.stats.sld_update_events)
                events["rmt_accesses"] = (events.get("rmt_accesses", 0)
                                          + engine.rmt.insertions + engine.rmt.consumes)
                events["amt_accesses"] = (events.get("amt_accesses", 0)
                                          + engine.amt.insertions + engine.amt.consumes)
        return events

    def _build_result(self) -> SimulationResult:
        constable_stats = None
        engines = [t.constable for t in self.threads if t.constable is not None]
        if engines:
            constable_stats = {}
            for engine in engines:
                for key, value in engine.stats.as_dict().items():
                    constable_stats[key] = constable_stats.get(key, 0) + value
            constable_stats["elimination_coverage"] = (
                sum(e.stats.loads_eliminated for e in engines)
                / max(1, sum(e.stats.loads_seen for e in engines)))
            constable_stats["xprf_failure_rate"] = (
                sum(e.xprf.allocation_failures for e in engines)
                / max(1, sum(e.xprf.total_allocations + e.xprf.allocation_failures
                             for e in engines)))

        lvp_stats = None
        predictors = [t.lvp for t in self.threads if t.lvp is not None]
        if predictors:
            lvp_stats = {
                "coverage": (sum(p.predictions for p in predictors)
                             / max(1, sum(p.attempts for p in predictors))),
                "accuracy": (sum(p.correct for p in predictors)
                             / max(1, sum(p.predictions for p in predictors))),
                "predictions": sum(p.predictions for p in predictors),
            }

        per_thread = []
        for thread in self.threads:
            per_thread.append({
                "thread": thread.thread_id,
                "trace": thread.trace.name,
                "instructions": thread.retired_instructions,
                "finish_cycle": thread.finish_cycle or self.cycle,
                "ipc": thread.retired_instructions / max(1, thread.finish_cycle or self.cycle),
            })

        resource_stats = {
            "rs_allocations": self.rs_pool.total_allocations,
            "rs_allocation_stalls": self.rs_pool.allocation_stalls,
            "rob_allocations": sum(t.rob_pool.total_allocations for t in self.threads),
            "lb_allocations": sum(t.lb_pool.total_allocations for t in self.threads),
            "sb_allocations": sum(t.sb_pool.total_allocations for t in self.threads),
            "rs_peak_occupancy": self.rs_pool.peak_occupancy,
        }

        return SimulationResult(
            trace_name="+".join(t.trace.name for t in self.threads),
            config_name=self.name,
            cycles=self.cycle,
            instructions=self.stats.instructions_retired,
            stats=self.stats,
            power_events=self._power_events(),
            memory_stats=self.hierarchy.stats_summary(),
            constable_stats=constable_stats,
            lvp_stats=lvp_stats,
            resource_stats=resource_stats,
            per_thread=per_thread,
        )


class _NoPrediction:
    """Sentinel standing in for "no prediction made" when accounting LVP outcomes."""

    predicted = False
    value = 0
    component = ""


_NO_PREDICTION = _NoPrediction()


def simulate_trace(trace: Trace, config: Optional[CoreConfig] = None,
                   name: str = "baseline",
                   engine: Optional[str] = None) -> SimulationResult:
    """Convenience wrapper: simulate a single trace on a single hardware thread.

    ``engine`` selects the execution engine (``"event"`` cycle skipping or the
    ``"cycle"`` reference stepper); None defers to :func:`default_engine`.
    """
    config = config or CoreConfig()
    core = OutOfOrderCore(config, [trace], name=name, engine=engine)
    return core.run()
