"""Trace-driven, cycle-level out-of-order core model.

The model is occupancy- and port-accurate where it matters for Constable:
loads contend for reservation-station entries and load execution units, their
latency is set by the cache hierarchy, stores resolve addresses at execution
and can catch younger loads (including eliminated ones) violating memory
ordering, and the retire stage runs the golden check of paper §8.5 comparing
the value Constable supplied against the functional trace.

Functional correctness always comes from the trace; the simulator only decides
*when* things happen - except for eliminated / ideally-handled loads, whose
values come from Constable's structures and are therefore checked at retire.

Two execution engines drive the same stage pipeline:

* ``"cycle"`` — the reference stepper: every cycle runs every stage, idle or
  not.
* ``"event"`` (default) — pure-stage gating plus event-driven cycle skipping:
  each stepped cycle calls only the stages whose wake predicate holds, and
  when no stage **acted** — retired, popped, issued, renamed or fetched
  something, or performed a side-effecting stall the reference re-runs every
  cycle — the cycle was provably idle, so the core computes the next
  "interesting" cycle (minimum over the completion-heap head, each thread's
  front-end refill timer, and the next-ready timers of the memory hierarchy,
  execution ports and store queues) and advances ``self.cycle`` straight to
  it instead of ticking through the idle gap.  Long memory stalls collapse
  into one jump, and dense compute-bound phases — where the skip machinery
  rarely fires — pay only for the stages that actually have work.

The two engines are bit-identical by construction, resting on two pillars:

* **Pure-stage gating.**  A stage is gated off on a stepped cycle only when
  its full run would have been observably pure: retire when no ROB head is
  complete-and-mature (and no thread is newly drained), writeback when the
  heap head is still in the future, issue when the reservation station is
  quiescent (nothing issued last sweep and no wake event — completion pop,
  RS insertion, or flush — has happened since), rename when every non-empty
  IDQ head is blocked on an allocation-pool check that precedes all side
  effects, and fetch when every thread is blocked, redirected, or IDQ-full.
  Predicates are evaluated in stage order, so an earlier stage's effects are
  visible to later predicates exactly as the reference sweep would see them.
  Skipping a provable no-op cannot change machine state, so the stepped
  machine stays cycle-exact against the reference sweep.  The retire, rename
  and fetch predicates are *exact* — whenever one holds, its sweep acts; the
  rename predicate in particular keeps the one side-effecting stall shape
  stepping cycle by cycle (a load that finds the reservation station full
  after running its rename mechanisms — Constable SLD lookup, LVP predict,
  RFP prefetch — has allocatable pools, so rename re-runs, and re-applies
  those effects, every cycle, just like the reference).  The issue gate is
  conservative, so the sweep's own "issued anything" report decides whether
  the cycle counts as acted: a sweep that claimed no port changed nothing
  observable.
* **Exact skipping.**  A cycle in which no stage acted leaves the whole
  machine state untouched except for two per-cycle accounting counters (the
  port model's cycle count and the SLD-updates-per-cycle histogram's zero
  bucket), which the skip replays in bulk.  No stage can start acting
  *during* an idle gap except through one of the events the skip target
  minimises over: source operands only ever become ready at completion-heap
  pops, retire waits on the heap too, rename waits on resources freed by
  retire/flush, and fetch waits on the refill timer or a branch resolution
  (again the heap).  The per-resource timers (ports, store queues, memory
  hierarchy, DRAM) each mirror a completion the core also scheduled on its
  heap — see :meth:`OutOfOrderCore._next_event_cycle` for why that keeps the
  minimum exact.

On top of the two pillars the event engine adds one flattening of *where*
work happens without changing *what* happens: **exact dependence wakeup**.
Its issue sweep parks a dependence-blocked micro-op in the waiters list of
one still-unready producer instead of rescanning it every sweep; the
producer's completion pop moves the waiters back into the scan, which merges
them in reservation-station insertion order (``rs_slot``) — exactly the
order the reference's linear rescan would have visited them.  This is sound
because producer readiness can only change at a completion pop (every
readiness stamp uses the *current* cycle, so a producer captured as a
dependence is always unknown-ready until its pop), and flush-safe because a
consumer is always younger than its producer, so any flush that squashes a
parked op's producer squashes the parked op too.  The reference stepper
never parks — it re-derives readiness from scratch each cycle by definition,
and paying it no new per-cycle cost keeps the two engines' walls honestly
comparable.

The differential tests in ``tests/test_event_driven.py`` and the golden
fixtures pin this equivalence.
"""

from __future__ import annotations

import heapq
import operator
import os
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.dependence import MemoryDependencePredictor
from repro.backend.ports import ExecutionPorts, PortKind
from repro.backend.resources import ResourcePool
from repro.backend.store_queue import StoreQueue
from repro.core.constable import ConstableEngine
from repro.core.ideal import IdealMode, IdealOracle
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.instruction import DynamicInstruction, OpClass
from repro.lvp.eves import EvesPredictor
from repro.lvp.llvp import LipastiPredictor
from repro.memory.coherence import Directory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.stats import PipelineStats, SimulationResult
from repro.pipeline.uop import InflightOp
from repro.prior.elar import EarlyLoadAddressResolver
from repro.prior.rfp import RegisterFilePrefetcher
from repro.rename.memory_renaming import MemoryRenamer
from repro.rename.optimizations import OptimizationKind, RenameOptimizer
from repro.rename.rat import RegisterAliasTable
from repro.workloads.trace import Trace

#: The simulated core's identifier in the coherence directory.
OWN_CORE = 0

#: Environment variable selecting the default execution engine.
CORE_ENGINE_ENV = "REPRO_CORE_ENGINE"

#: Sort key restoring reservation-station age order when parked
#: dependence-blocked micro-ops are merged back into the issue scan.
_RS_SLOT = operator.attrgetter("rs_slot")

#: Supported execution engines: event-driven cycle skipping (default) and the
#: per-cycle reference stepper it is differentially tested against.
CORE_ENGINES = ("event", "cycle")


#: Unknown ``REPRO_CORE_ENGINE`` values already warned about in this process.
_WARNED_ENGINE_VALUES: Set[str] = set()


def default_engine() -> str:
    """The engine used when a core is built without an explicit choice.

    ``REPRO_CORE_ENGINE=cycle`` forces the per-cycle reference stepper
    process-wide (including pool workers, which inherit the environment) —
    the differential tests and the ``repro bench`` harness use this to run
    both engines over identical sweeps.  Unknown values fall back to the
    event-driven engine rather than failing an entire sweep over a typo, but
    warn once per process — a typo here would otherwise turn a differential
    run into a vacuous event-vs-event comparison.
    """
    raw = os.environ.get(CORE_ENGINE_ENV, "").strip().lower()
    if raw and raw not in CORE_ENGINES:
        if raw not in _WARNED_ENGINE_VALUES:
            _WARNED_ENGINE_VALUES.add(raw)
            warnings.warn(
                f"ignoring unknown {CORE_ENGINE_ENV}={raw!r}; using 'event' "
                f"(expected one of {CORE_ENGINES})",
                RuntimeWarning, stacklevel=2)
        return "event"
    return raw or "event"


class GoldenCheckError(AssertionError):
    """Raised when a retired load's value/address disagrees with the functional trace."""


class _ThreadState:
    """Per-hardware-thread front-end and window state."""

    def __init__(self, thread_id: int, trace: Trace, config: CoreConfig,
                 rob_capacity: int, lb_capacity: int, sb_capacity: int):
        self.thread_id = thread_id
        self.trace = trace
        self.instructions = trace.instructions
        # The trace's snoop sequence is an immutable tuple: share it and walk
        # it by index instead of copying it per hardware thread.
        self.snoops = trace.snoops
        self.snoop_index = 0
        self.fetch_index = 0
        self.fetch_blocked_until = 0
        self.pending_redirect_seq: Optional[int] = None
        self.idq: deque = deque()
        # Age-ordered window; a deque so per-instruction head retirement is
        # O(1) instead of shifting the whole window (flush-path index/slice
        # operations are rare and tolerate the deque's O(n)).
        self.rob: deque = deque()
        self.load_buffer: List[InflightOp] = []
        self.store_queue = StoreQueue()
        self.rat: RegisterAliasTable = RegisterAliasTable(config.num_registers)
        self.rob_pool = ResourcePool(f"ROB.t{thread_id}", rob_capacity)
        self.lb_pool = ResourcePool(f"LB.t{thread_id}", lb_capacity)
        self.sb_pool = ResourcePool(f"SB.t{thread_id}", sb_capacity)
        self.branch_history = 0
        self.constable: Optional[ConstableEngine] = None
        self.lvp = None
        self.mrn: Optional[MemoryRenamer] = None
        self.retired_instructions = 0
        self.finish_cycle: Optional[int] = None

    def fetch_done(self) -> bool:
        return self.fetch_index >= len(self.instructions)

    def done(self) -> bool:
        return self.fetch_done() and not self.rob and not self.idq


class OutOfOrderCore:
    """The simulated core: one or two hardware threads over shared execution resources."""

    def __init__(self, config: CoreConfig, traces: Sequence[Trace],
                 name: str = "baseline", engine: Optional[str] = None):
        if not traces:
            raise ValueError("at least one trace is required")
        if len(traces) > 2:
            raise ValueError("at most two hardware threads (2-way SMT) are supported")
        if engine is None:
            engine = default_engine()
        if engine not in CORE_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {CORE_ENGINES}")
        self.config = config
        self.name = name
        self.engine = engine
        self.smt = len(traces) > 1
        self.stats = PipelineStats()
        self.ports = ExecutionPorts(config.ports)
        self.hierarchy = MemoryHierarchy(config.memory)
        self.directory = Directory(num_cores=config.num_cores,
                                   line_size=config.memory.l1d.line_size)
        self.branch_predictor = BranchPredictor()
        self.dependence_predictor = MemoryDependencePredictor()
        self.rename_optimizer = RenameOptimizer(config.rename_optimizations)
        self.elar = EarlyLoadAddressResolver() if config.enable_elar else None
        self.rfp = RegisterFilePrefetcher() if config.enable_rfp else None
        self.rs_pool = ResourcePool("RS", config.sizes.rs)

        partition = 2 if self.smt else 1
        self.threads: List[_ThreadState] = []
        for thread_id, trace in enumerate(traces):
            thread = _ThreadState(
                thread_id, trace, config,
                rob_capacity=max(8, config.sizes.rob // partition),
                lb_capacity=max(4, config.sizes.load_buffer // partition),
                sb_capacity=max(4, config.sizes.store_buffer // partition),
            )
            if config.constable is not None:
                thread.constable = ConstableEngine(config.constable,
                                                   num_registers=config.num_registers)
            if config.lvp == "eves":
                thread.lvp = EvesPredictor()
            elif config.lvp == "llvp":
                thread.lvp = LipastiPredictor()
            if config.enable_memory_renaming:
                thread.mrn = MemoryRenamer()
            self.threads.append(thread)

        self.oracle: Optional[IdealOracle] = config.ideal_oracle
        if self.oracle is not None:
            self.oracle.reset_runtime_state()
        self.stats_oracle_pcs: Set[int] = set(config.stats_oracle_pcs or ())

        # Coherence bookkeeping: CV bits follow L1 fills and evictions.
        self.hierarchy.l1_fill_listeners.append(self._on_l1_fill)
        self.hierarchy.l1_eviction_listeners.append(self._on_l1_eviction)

        self.cycle = 0
        self._completion_heap: List[Tuple[int, int, InflightOp]] = []
        self._heap_counter = 0
        self._rs_waiting: List[InflightOp] = []
        self._denied_nonstable_load_this_cycle = False
        self._issued_loads_this_cycle: List[InflightOp] = []
        # True while nothing in the reservation station can possibly issue:
        # set when an issue sweep claims no port, cleared by every wake event
        # (completion-heap pop, RS insertion, flush).  Lets the event engine
        # gate the issue stage off on stepped cycles.
        self._issue_quiescent = False
        # Exact dependence wakeup (event engine only).  Producer readiness
        # changes *only* when the producer's completion pops (every
        # mark_value_ready call stamps the current cycle, so a producer
        # captured into depends_on is always unknown-ready until its
        # completion pops).  The event engine's issue sweep therefore parks
        # a dependence-blocked micro-op in the waiters list of one unready
        # producer; the producer's pop moves the dependents into _rs_woken,
        # and the next sweep merges them back in rs_slot age order.  The
        # reference stepper re-derives readiness from scratch every cycle by
        # definition, so it never parks.
        self._park_blocked = engine == "event"
        self._rs_woken: List[InflightOp] = []
        #: Monotone RS insertion counter backing InflightOp.rs_slot.
        self._rs_slot_counter = 0
        # Set by _rename_one when a stall itself had side effects (SLD-port
        # stall statistics, rename mechanisms re-run against a full RS);
        # _rename_stage folds it into its "acted" report.
        self._rename_stall_acted = False
        # Threads with a Constable engine attached (fixed after construction);
        # hoisted because both run loops touch it every cycle.
        self._constable_threads = [t for t in self.threads
                                   if t.constable is not None]
        # Precomputed per-opclass execution latencies for RS-bound non-load
        # micro-ops (PR 4 flattened static decode the same way): rename stamps
        # each uop's ``exec_latency`` once via identity checks (no enum
        # hashing), and the issue sweep reads one slot per uop instead of
        # chasing config attributes.
        self._alu_latency = config.alu_latency
        self._mul_latency = config.mul_latency
        self._div_latency = config.div_latency
        #: Idle cycles the event engine jumped over instead of stepping.
        self.skipped_idle_cycles = 0
        #: Cycles in which the stage pipeline actually ran.
        self.stepped_cycles = 0

    # ------------------------------------------------------------------ helpers

    def _on_l1_fill(self, line_address: int) -> None:
        self.directory.record_fill(line_address, OWN_CORE)

    def _on_l1_eviction(self, line_address: int) -> None:
        self.directory.record_eviction(line_address, OWN_CORE)
        for thread in self.threads:
            if thread.constable is not None:
                thread.constable.on_l1_eviction(line_address)

    def _schedule_completion(self, op: InflightOp, finish_cycle: int) -> None:
        self._heap_counter += 1
        op.finish_cycle = finish_cycle
        heapq.heappush(self._completion_heap, (finish_cycle, self._heap_counter, op))

    @staticmethod
    def _word(address: int) -> int:
        return address & ~0x7

    # ===================================================================== fetch

    def _deliver_snoops(self, thread: _ThreadState) -> None:
        """Deliver snoop events anchored before the next instruction to fetch."""
        if thread.snoop_index >= len(thread.snoops):
            return
        next_seq = (thread.instructions[thread.fetch_index].seq
                    if not thread.fetch_done() else None)
        while thread.snoop_index < len(thread.snoops):
            snoop = thread.snoops[thread.snoop_index]
            if next_seq is not None and snoop.after_seq > next_seq:
                break
            thread.snoop_index += 1
            if self.directory.snoop_reaches_core(snoop.address, OWN_CORE):
                self.hierarchy.invalidate_line(snoop.address)
                if thread.constable is not None:
                    thread.constable.on_snoop(snoop.address)

    def _apply_wrong_path_noise(self, thread: _ThreadState, pc: int) -> None:
        """Emulate wrong-path instructions updating Constable's RMT/SLD (Fig. 9b)."""
        constable = thread.constable
        if constable is None or not constable.config.wrong_path_updates:
            return
        # Deterministic pseudo-random register choices derived from the branch PC.
        registers = [(pc >> 3) % self.config.num_registers,
                     (pc >> 7) % self.config.num_registers]
        for register in registers:
            constable.on_register_write(register)

    def _fetch_thread(self, thread: _ThreadState, budget: int) -> int:
        # The block/redirect conditions cannot start holding mid-sweep (a
        # mispredict breaks out directly), so they are checked once up front;
        # the loop re-checks only the conditions fetching itself changes.
        if (self.cycle < thread.fetch_blocked_until
                or thread.pending_redirect_seq is not None):
            return 0
        fetched = 0
        instructions = thread.instructions
        total = len(instructions)
        idq = thread.idq
        idq_entries = self.config.idq_entries
        snoops_len = len(thread.snoops)
        while (fetched < budget and thread.fetch_index < total
               and len(idq) < idq_entries):
            if thread.snoop_index < snoops_len:
                self._deliver_snoops(thread)
            index = thread.fetch_index
            dyn = instructions[index]
            idq.append((dyn, index))
            thread.fetch_index = index + 1
            fetched += 1
            if dyn.is_branch:
                is_conditional = dyn.static.opclass is OpClass.BRANCH
                predicted = self.branch_predictor.predict_taken(dyn.pc, is_conditional)
                if is_conditional:
                    self.stats.branches_predicted += 1
                if predicted != dyn.branch_taken:
                    # Fetch must wait until the branch resolves (trace-driven model).
                    thread.pending_redirect_seq = dyn.seq
                    self.stats.branch_mispredictions += 1
                    self._apply_wrong_path_noise(thread, dyn.pc)
                    break
        self.stats.uops_fetched += fetched
        return fetched

    def _fetch_stage(self) -> bool:
        """Run the fetch sweep; True if any micro-op was fetched.

        A zero-fetch sweep never entered a loop body (every thread failed the
        entry conditions), so it was observably pure.
        """
        budget = self.config.fetch_width
        fetched = 0
        if self.smt:
            per_thread = max(1, budget // len(self.threads))
            for offset in range(len(self.threads)):
                thread = self.threads[(self.cycle + offset) % len(self.threads)]
                fetched += self._fetch_thread(thread, per_thread)
        else:
            fetched = self._fetch_thread(self.threads[0], budget)
        return fetched > 0

    # ==================================================================== rename

    def _producer_sources(self, thread: _ThreadState, dyn: DynamicInstruction,
                          op: InflightOp) -> None:
        # Inlined RegisterAliasTable.producer_of (the per-register lookup
        # statistic is batched; the mapping itself is a plain dict read).
        rat = thread.rat
        producers = rat._producer
        srcs = dyn.static.source_registers()
        rat.lookups += len(srcs)
        cycle = self.cycle
        depends = op.depends_on
        for register in srcs:
            producer = producers[register]
            if producer is not None and not producer.squashed:
                ready = producer.value_ready_cycle
                if ready is None or ready > cycle:
                    depends.append(producer)

    def _rename_load(self, thread: _ThreadState, op: InflightOp) -> None:
        dyn = op.dyn
        config = self.config
        mode = dyn.static.addressing_mode()
        op.oracle_stable = dyn.pc in self.stats_oracle_pcs
        if op.oracle_stable:
            self.stats.oracle_stable_loads_renamed += 1

        # Ideal oracle mechanisms (Fig. 7) take precedence over everything else.
        if self.oracle is not None and self.oracle.covers(dyn.pc):
            op.ideal_covered = True
            address, value = self.oracle.known_value(dyn.pc)
            op.ideal_address, op.ideal_value = address, value
            if self.oracle.mode is IdealMode.CONSTABLE:
                op.eliminated = True
                op.constable_address, op.constable_value = address, value
                op.needs_rs = False
                op.executed_at_rename = True
                op.mark_complete(self.cycle)
                op.value_obtained_cycle = self.cycle
                return
            # Both stable-LVP modes break the data dependence immediately.
            op.mark_value_ready(self.cycle)
            op.value_obtained_cycle = self.cycle
            return

        # Constable (the real mechanism).
        if thread.constable is not None:
            decision = thread.constable.on_load_rename(dyn.pc, mode)
            op.likely_stable = decision.likely_stable
            if decision.eliminate:
                op.eliminated = True
                op.constable_value = decision.value
                op.constable_address = decision.address
                op.needs_rs = False
                op.executed_at_rename = True
                op.mark_complete(self.cycle)
                op.value_obtained_cycle = self.cycle
                return

        # Load value prediction (EVES / LLVP).
        if thread.lvp is not None:
            prediction = thread.lvp.predict(dyn.pc, thread.branch_history)
            if prediction.predicted:
                op.lvp_prediction = prediction
                op.mark_value_ready(self.cycle)
                op.value_obtained_cycle = self.cycle
                self.stats.value_predicted_loads += 1

        # Memory renaming: break the data dependence if a paired store is in flight.
        if thread.mrn is not None and op.lvp_prediction is None:
            store_pc = thread.mrn.predicted_store_pc(dyn.pc)
            if store_pc is not None:
                for record in reversed(thread.store_queue.records()):
                    if record.pc == store_pc:
                        op.mrn_store = record
                        op.mrn_predicted = True
                        op.mark_value_ready(self.cycle)
                        break

        # ELAR / RFP.
        if self.elar is not None and self.elar.can_resolve_early(dyn):
            op.elar_early = True
        if self.rfp is not None:
            predicted_address = self.rfp.issue_prefetch(dyn.pc)
            if predicted_address is not None:
                op.rfp_address = predicted_address
                self.hierarchy.load_access(predicted_address, dyn.pc)

    def _rename_one(self, thread: _ThreadState, dyn: DynamicInstruction,
                    trace_index: int, loads_renamed_this_cycle: int) -> Optional[InflightOp]:
        """Rename a single micro-op; returns None if allocation must stall."""
        config = self.config

        # Per-cycle SLD read-port limit (§6.7.1): stall beyond three loads/cycle.
        if (thread.constable is not None and dyn.is_load
                and loads_renamed_this_cycle >= config.constable.sld_read_ports):
            self.stats.rename_stalls_sld_ports += 1
            self._rename_stall_acted = True
            return None
        if (thread.constable is not None
                and thread.constable.sld_updates_this_cycle > config.constable.sld_write_ports):
            self.stats.rename_stalls_sld_ports += 1
            self._rename_stall_acted = True
            return None

        op = InflightOp(dyn, thread.thread_id, trace_index, self.cycle)
        op.optimization = self.rename_optimizer.classify(dyn)

        # Resource checks (no partial allocation: check first, then claim).
        if not thread.rob_pool.can_allocate():
            return None
        if dyn.is_load and not thread.lb_pool.can_allocate():
            return None
        if dyn.is_store and not thread.sb_pool.can_allocate():
            return None

        # Producer capture happens only on the paths that can reach the
        # reservation station: a micro-op that completes at rename never has
        # its depends_on scanned (it never issues), so capturing sources for
        # it is dead work in both engines.
        if op.optimization is not OptimizationKind.NONE:
            # Folded/eliminated at rename: completes immediately, no RS, no port.
            op.needs_rs = False
            op.executed_at_rename = True
            op.mark_complete(self.cycle)
        elif dyn.is_load:
            self._producer_sources(thread, dyn, op)
            self._rename_load(thread, op)
        elif dyn.is_store:
            self._producer_sources(thread, dyn, op)
            op.port_kind = PortKind.STORE_ADDRESS
            op.exec_latency = config.agu_latency
        elif (dyn.is_branch
              or dyn.static.opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV,
                                        OpClass.MOVE_REG, OpClass.MOVE_IMM)):
            # Non-folded moves execute on an ALU port like any other integer op.
            self._producer_sources(thread, dyn, op)
            op.port_kind = PortKind.ALU
            opclass = dyn.static.opclass
            op.exec_latency = (self._mul_latency if opclass is OpClass.MUL
                               else self._div_latency if opclass is OpClass.DIV
                               else self._alu_latency)
        else:
            op.needs_rs = False
            op.executed_at_rename = True
            op.mark_complete(self.cycle)

        if dyn.is_load and not op.eliminated and op.optimization is OptimizationKind.NONE:
            op.port_kind = PortKind.LOAD

        needs_rs = op.needs_rs and not op.executed_at_rename
        if needs_rs and not self.rs_pool.can_allocate():
            # A load reaching this point already ran its rename-stage
            # mechanisms (Constable SLD lookup, LVP predict, RFP prefetch
            # into the real hierarchy), and the per-cycle reference re-runs
            # them on every stalled cycle.  Flagging the stall as an action
            # keeps the event engine stepping such cycles one by one, so the
            # mechanisms re-fire exactly as often as in the reference.
            self._rename_stall_acted = True
            return None

        # Claim resources (inlined ResourcePool.allocate: capacity was checked
        # above, so the claim is occupancy bookkeeping only).
        rob_pool = thread.rob_pool
        rob_pool.occupied += 1
        rob_pool.total_allocations += 1
        if rob_pool.occupied > rob_pool.peak_occupancy:
            rob_pool.peak_occupancy = rob_pool.occupied
        if dyn.is_load:
            lb_pool = thread.lb_pool
            lb_pool.occupied += 1
            lb_pool.total_allocations += 1
            if lb_pool.occupied > lb_pool.peak_occupancy:
                lb_pool.peak_occupancy = lb_pool.occupied
        if dyn.is_store:
            sb_pool = thread.sb_pool
            sb_pool.occupied += 1
            sb_pool.total_allocations += 1
            if sb_pool.occupied > sb_pool.peak_occupancy:
                sb_pool.peak_occupancy = sb_pool.occupied
            op.store_record = thread.store_queue.insert(dyn.seq, dyn.pc)
        if needs_rs:
            rs_pool = self.rs_pool
            rs_pool.occupied += 1
            rs_pool.total_allocations += 1
            if rs_pool.occupied > rs_pool.peak_occupancy:
                rs_pool.peak_occupancy = rs_pool.occupied
            op.in_rs = True
            op.rs_slot = self._rs_slot_counter
            self._rs_slot_counter += 1
            self._rs_waiting.append(op)
            self._issue_quiescent = False

        # Constable: every destination write is visible to the RMT (steps 7-8).
        if thread.constable is not None and dyn.static.dest is not None:
            thread.constable.on_register_write(dyn.static.dest)

        # Update the RAT and the window.
        if dyn.static.dest is not None:
            thread.rat.set_producer(dyn.static.dest, op)
        thread.rob.append(op)
        if dyn.is_load:
            thread.load_buffer.append(op)

        # Branch history for context-based value prediction.
        if dyn.is_branch:
            thread.branch_history = ((thread.branch_history << 1)
                                     | int(dyn.branch_taken)) & ((1 << 64) - 1)

        # Bookkeeping.
        self.stats.uops_renamed += 1
        if dyn.is_load:
            self.stats.loads_renamed += 1
        elif dyn.is_store:
            self.stats.stores_renamed += 1
        elif dyn.is_branch:
            self.stats.branches_renamed += 1
        return op

    def _rename_stage(self) -> bool:
        """Run the rename sweep; True if it acted.

        "Acted" means a micro-op was renamed or a *side-effecting* stall
        fired (an SLD-port stall statistic, or a load re-running its rename
        mechanisms against a full reservation station — both flagged by
        :meth:`_rename_one`).  A False sweep only probed allocation pools and
        invisible classifier scratch, so it was observably pure.
        """
        self._rename_stall_acted = False
        budget = self.config.rename_width
        thread_order = [self.threads[(self.cycle + i) % len(self.threads)]
                        for i in range(len(self.threads))]
        loads_this_cycle = {thread.thread_id: 0 for thread in self.threads}
        stalled = {thread.thread_id: False for thread in self.threads}
        renamed = 0
        while renamed < budget:
            progress = False
            for thread in thread_order:
                if renamed >= budget or stalled[thread.thread_id] or not thread.idq:
                    continue
                dyn, trace_index = thread.idq[0]
                op = self._rename_one(thread, dyn, trace_index,
                                      loads_this_cycle[thread.thread_id])
                if op is None:
                    stalled[thread.thread_id] = True
                    continue
                thread.idq.popleft()
                if dyn.is_load:
                    loads_this_cycle[thread.thread_id] += 1
                renamed += 1
                progress = True
            if not progress:
                break
        return renamed > 0 or self._rename_stall_acted

    # ===================================================================== issue

    def _load_latency(self, thread: _ThreadState, op: InflightOp) -> int:
        config = self.config
        dyn = op.dyn
        address = dyn.address

        # Register-file prefetching: a correct address prediction hides the access.
        if self.rfp is not None and op.rfp_address is not None:
            if self.rfp.verify(op.rfp_address, address):
                return config.agu_latency + 1

        # Store-to-load forwarding from the same thread's store queue.
        forwarding = thread.store_queue.forwarding_candidate(dyn.seq, address)
        if forwarding is not None and forwarding.data_ready:
            self.stats.loads_forwarded_from_store += 1
            latency = config.agu_latency + config.store_forward_latency
            hierarchy_access = False
        else:
            memory_latency, _ = self.hierarchy.load_access(address, dyn.pc)
            latency = config.agu_latency + memory_latency
            hierarchy_access = True

        if op.elar_early and self.elar is not None:
            latency = max(1, latency - self.elar.latency_savings())
        if hierarchy_access:
            # Tell the hierarchy when this access's data returns to the core;
            # it mirrors the completion the caller schedules on the heap.
            self.hierarchy.note_inflight(self.cycle + latency)
        return latency

    def _execute_store_address(self, thread: _ThreadState, op: InflightOp) -> None:
        """A store generated its address: AMT lookup, MRN training, ordering check."""
        dyn = op.dyn
        record = op.store_record
        record.address = dyn.address
        record.line_address = dyn.address - (dyn.address % self.config.memory.l1d.line_size)
        record.value = dyn.store_value
        record.address_ready = True
        record.data_ready = True

        if thread.constable is not None:
            thread.constable.on_store_address(dyn.address)
        if thread.mrn is not None:
            thread.mrn.observe_store(dyn.pc, dyn.address, dyn.seq)

        # Memory disambiguation (paper §6.5): younger loads that already obtained
        # a value for the same word must be squashed and re-executed.
        victim: Optional[InflightOp] = None
        store_word = self._word(dyn.address)
        for load in thread.load_buffer:
            if load.squashed or load.seq <= dyn.seq:
                continue
            load_address = load.constable_address if load.eliminated else load.dyn.address
            if self._word(load_address) != store_word:
                continue
            obtained = load.value_obtained_cycle
            if obtained is not None and obtained <= self.cycle:
                if victim is None or load.seq < victim.seq:
                    victim = load
        if victim is not None:
            self.stats.ordering_violation_flushes += 1
            self.dependence_predictor.train_violation(victim.pc)
            if victim.eliminated and thread.constable is not None:
                thread.constable.on_ordering_violation(victim.pc)
            self._flush_from(thread, victim, reason="ordering")

    def _issue_stage(self) -> bool:
        """Run the issue sweep; True if any micro-op claimed a port.

        A False sweep is observably pure: no port was claimed, so every
        waiting micro-op failed a condition (operand readiness, a
        store-ordering wait) that only a wake event can change.  The sweep
        records that by setting :attr:`_issue_quiescent`, which gates further
        sweeps off until a wake event clears it.
        """
        config = self.config
        cycle = self.cycle
        stats = self.stats
        ports = self.ports
        threads = self.threads
        rs_pool = self.rs_pool
        should_wait_for_stores = self.dependence_predictor.should_wait_for_stores
        self._denied_nonstable_load_this_cycle = False
        self._issued_loads_this_cycle = []
        issued_any = False
        still_waiting: List[InflightOp] = []
        waiting_append = still_waiting.append
        # Merge micro-ops woken by completed producers back into the scan at
        # their original age position (the reference's scan order is exactly
        # ascending rs_slot).
        scan = self._rs_waiting
        if self._rs_woken:
            scan = scan + self._rs_woken
            scan.sort(key=_RS_SLOT)
            self._rs_woken = []
        park = self._park_blocked
        for op in scan:
            if op.squashed:
                continue
            if op.issued:
                continue
            # Inlined InflightOp.sources_ready with the same pruning of
            # already-satisfied producers (readiness is monotone).  A micro-op
            # still dependence-blocked parks in one unready producer's
            # waiters list until that completion pops and re-wakes it.
            deps = op.depends_on
            if deps:
                keep = 0
                for producer in deps:
                    ready = producer.value_ready_cycle
                    if ready is None or ready > cycle:
                        deps[keep] = producer
                        keep += 1
                if keep:
                    del deps[keep:]
                    if park:
                        producer = deps[0]
                        w = producer.waiters
                        if w is None:
                            producer.waiters = [op]
                        else:
                            w.append(op)
                    else:
                        waiting_append(op)
                    continue
                del deps[:]
            thread = threads[op.thread]
            if (op.is_load
                    and should_wait_for_stores(op.pc)
                    and thread.store_queue.has_unresolved_older_store(op.seq)):
                waiting_append(op)
                continue
            kind = op.port_kind or PortKind.ALU
            if not ports.issue(kind):
                if op.is_load and not op.oracle_stable:
                    self._denied_nonstable_load_this_cycle = True
                waiting_append(op)
                continue

            op.issued = True
            op.issue_cycle = cycle
            rs_pool.occupied -= 1  # inlined release; every issuer holds an entry
            op.in_rs = False
            stats.rs_issues += 1
            issued_any = True

            if op.is_load:
                ideal_fetch_elim = (op.ideal_covered and self.oracle is not None
                                    and self.oracle.mode is IdealMode.STABLE_LVP_FETCH_ELIM)
                if ideal_fetch_elim:
                    latency = config.agu_latency
                else:
                    latency = self._load_latency(thread, op)
                stats.loads_executed += 1
                stats.agu_ops += 1
                self._issued_loads_this_cycle.append(op)
                if op.value_obtained_cycle is None:
                    op.value_obtained_cycle = cycle + latency
            else:
                latency = op.exec_latency
                if op.is_store:
                    stats.agu_ops += 1
                    # The store's address-generation slot: the queue's own
                    # next-release timer (mirrors the heap entry below).
                    op.store_record.resolve_cycle = cycle + latency
                else:
                    opclass = op.opclass
                    if opclass is OpClass.MUL:
                        stats.mul_ops += 1
                    elif opclass is OpClass.DIV:
                        stats.div_ops += 1
                    else:
                        stats.alu_ops += 1

            completion = cycle + latency
            self._schedule_completion(op, completion)
            ports.note_inflight(completion)

        self._rs_waiting = still_waiting
        # If nothing issued, no port was claimed either, so every waiting uop
        # failed a condition (operand readiness, store-ordering wait) that
        # only a wake event can change — the station is quiescent until then.
        self._issue_quiescent = not issued_any

        if self._issued_loads_this_cycle:
            self.stats.load_utilized_cycles += 1
            stable_issued = any(op.oracle_stable for op in self._issued_loads_this_cycle)
            if stable_issued and self._denied_nonstable_load_this_cycle:
                self.stats.load_utilized_cycles_stable_blocking += 1
            elif stable_issued:
                self.stats.load_utilized_cycles_stable_only += 1
        return issued_any

    # ================================================================= writeback

    def _writeback_load(self, thread: _ThreadState, op: InflightOp) -> None:
        dyn = op.dyn
        actual_value = dyn.load_value
        address = dyn.address

        if self.oracle is not None and self.oracle.is_stable(dyn.pc):
            self.oracle.observe_execution(dyn.pc, address, actual_value)

        # Value prediction verification and training.
        if thread.lvp is not None:
            if op.lvp_prediction is not None:
                correct = thread.lvp.record_outcome(op.lvp_prediction, actual_value)
                if correct:
                    self.stats.value_predictions_correct += 1
                else:
                    self.stats.lvp_misprediction_flushes += 1
                    self._flush_after(thread, op, reason="lvp")
            else:
                thread.lvp.record_outcome(op.lvp_prediction or _NO_PREDICTION, actual_value)
            thread.lvp.train(dyn.pc, actual_value, thread.branch_history)

        # Memory renaming verification and training.
        if thread.mrn is not None:
            if op.mrn_predicted and op.mrn_store is not None:
                correct = (not op.mrn_store.address_ready
                           or op.mrn_store.overlaps(address))
                thread.mrn.record_prediction(correct)
                if not correct:
                    self.stats.mrn_misprediction_flushes += 1
                    self._flush_after(thread, op, reason="mrn")
            thread.mrn.observe_load(dyn.pc, address, dyn.seq)

        # Register-file prefetcher training.
        if self.rfp is not None:
            self.rfp.train(dyn.pc, address)

        # Constable: confidence update and (for likely-stable loads) RMT/AMT insertion.
        if thread.constable is not None:
            pin = thread.constable.on_load_writeback(
                dyn.pc, address, actual_value,
                dyn.static.source_registers(), op.likely_stable)
            if pin:
                self.directory.pin(address, OWN_CORE)

        self.dependence_predictor.observe_safe_execution(dyn.pc)

    def _writeback_stage(self) -> bool:
        """Run the writeback sweep; True if any completion was popped.

        Popping a squashed completion is counted as acting even though it is
        unobservable — that is merely conservative (the cycle steps instead
        of being skipped).  A False sweep never entered the loop, so it was
        pure.
        """
        acted = False
        heap = self._completion_heap
        heappop = heapq.heappop
        cycle = self.cycle
        while heap and heap[0][0] <= cycle:
            _, _, op = heappop(heap)
            acted = True
            # A completion is a wake event for the issue stage: operands may
            # become ready, store addresses resolve, ordering waits clear.
            self._issue_quiescent = False
            if op.squashed:
                continue
            thread = self.threads[op.thread]
            op.mark_complete(self.cycle)
            waiters = op.waiters
            if waiters is not None:
                # Dependents parked on this producer re-enter the issue scan.
                op.waiters = None
                self._rs_woken.extend(waiters)
            if op.is_load:
                self._writeback_load(thread, op)
            elif op.is_store:
                self._execute_store_address(thread, op)
            elif op.dyn.is_branch:
                is_conditional = op.dyn.static.opclass is OpClass.BRANCH
                self.branch_predictor.resolve_at_writeback(
                    op.pc, is_conditional, op.dyn.branch_taken)
                if thread.pending_redirect_seq == op.seq:
                    thread.pending_redirect_seq = None
                    thread.fetch_blocked_until = self.cycle + self.config.frontend_refill_cycles
        return acted

    # ==================================================================== retire

    def _golden_check(self, op: InflightOp) -> None:
        dyn = op.dyn
        self.stats.golden_checks += 1
        if op.eliminated and not op.reexecuted:
            if op.constable_value != dyn.load_value or op.constable_address != dyn.address:
                raise GoldenCheckError(
                    f"eliminated load at pc={dyn.pc:#x} seq={dyn.seq} retired with "
                    f"value={op.constable_value:#x} addr={op.constable_address:#x}, "
                    f"functional value={dyn.load_value:#x} addr={dyn.address:#x}")
        if op.ideal_covered and op.constable_value == 0 and op.eliminated is False:
            # Ideal stable LVP modes execute the load, nothing extra to check.
            return

    def _retire_thread(self, thread: _ThreadState, budget: int) -> bool:
        """Retire up to ``budget`` micro-ops; True if the sweep acted.

        "Acted" means a micro-op retired or the thread just drained and had
        its finish cycle stamped.  A False sweep only inspected the ROB head,
        so it was observably pure.
        """
        retired = 0
        rob = thread.rob
        while retired < budget and rob:
            op = rob[0]
            if not op.complete or (op.complete_cycle is not None
                                   and op.complete_cycle > self.cycle):
                break
            rob.popleft()
            if op.is_load:
                self._golden_check(op)
                # Loads usually retire in buffer order, so the head is the
                # common case; fall back to a scan for out-of-order removal
                # (a load squashed out of the buffer is simply absent).
                load_buffer = thread.load_buffer
                if load_buffer and load_buffer[0] is op:
                    del load_buffer[0]
                elif op in load_buffer:
                    load_buffer.remove(op)
                thread.lb_pool.occupied -= 1
                if op.eliminated:
                    self.stats.eliminated_loads_retired += 1
                    if op.oracle_stable:
                        self.stats.eliminated_oracle_stable_loads += 1
                    else:
                        self.stats.eliminated_non_stable_loads += 1
                    if thread.constable is not None:
                        thread.constable.release_xprf()
            if op.is_store:
                self.hierarchy.store_access(op.dyn.address, op.pc)
                self.stats.store_commits += 1
                thread.store_queue.remove(op.seq)
                thread.sb_pool.occupied -= 1
            if op.dest is not None:
                thread.rat.clear_producer(op.dest, op)
            thread.rob_pool.occupied -= 1
            op.retired = True
            retired += 1
            thread.retired_instructions += 1
            self.stats.instructions_retired += 1
        acted = retired > 0
        if thread.finish_cycle is None and thread.done():
            thread.finish_cycle = self.cycle
            acted = True
        return acted

    def _retire_stage(self) -> bool:
        """Run the retire sweep; True if any thread's sweep acted."""
        budget = self.config.retire_width
        if self.smt:
            per_thread = max(1, budget // len(self.threads))
            acted = False
            for thread in self.threads:
                if self._retire_thread(thread, per_thread):
                    acted = True
            return acted
        return self._retire_thread(self.threads[0], budget)

    # ===================================================================== flush

    def _squash(self, thread: _ThreadState, op: InflightOp) -> None:
        op.squashed = True
        if op.in_rs:
            self.rs_pool.occupied -= 1  # inlined release
            op.in_rs = False
        if op.is_load:
            # Flushes squash the window youngest-first, so the victim is
            # usually the buffer tail.
            load_buffer = thread.load_buffer
            if load_buffer and load_buffer[-1] is op:
                load_buffer.pop()
            elif op in load_buffer:
                load_buffer.remove(op)
            thread.lb_pool.occupied -= 1
            if op.eliminated and thread.constable is not None:
                thread.constable.release_xprf()
        if op.is_store:
            thread.sb_pool.occupied -= 1
        if op.dest is not None:
            thread.rat.clear_producer(op.dest, op)
        thread.rob_pool.occupied -= 1
        self.stats.reexecuted_uops += 1

    def _flush_from(self, thread: _ThreadState, first_victim: InflightOp,
                    reason: str) -> None:
        """Squash ``first_victim`` and everything younger in its thread, then refetch."""
        self.stats.flushes += 1
        if first_victim.is_load:
            first_victim.reexecuted = True
        rob = thread.rob
        try:
            start = rob.index(first_victim)
        except ValueError:
            return
        # Pop the victims off the tail (squash order is unobservable: pool
        # releases are counts and the RAT is rebuilt below).
        while len(rob) > start:
            self._squash(thread, rob.pop())
        thread.store_queue.squash_younger_than(first_victim.seq - 1)
        self._rs_waiting = [op for op in self._rs_waiting if not op.squashed]
        self._issue_quiescent = False
        thread.rat.rebuild(thread.rob, lambda op: op.dest if not op.squashed else None)
        thread.idq.clear()
        thread.fetch_index = first_victim.trace_index
        thread.pending_redirect_seq = None
        thread.fetch_blocked_until = self.cycle + self.config.flush_penalty
        del reason

    def _flush_after(self, thread: _ThreadState, op: InflightOp, reason: str) -> None:
        """Squash everything younger than ``op`` (value-misprediction recovery)."""
        try:
            index = thread.rob.index(op)
        except ValueError:
            return
        if index + 1 < len(thread.rob):
            self._flush_from(thread, thread.rob[index + 1], reason)
        else:
            # Nothing younger in flight; only the front-end needs to restart.
            thread.idq.clear()
            thread.fetch_index = op.trace_index + 1
            thread.pending_redirect_seq = None
            thread.fetch_blocked_until = self.cycle + self.config.flush_penalty
            self.stats.flushes += 1

    # ======================================================================= run

    def _next_event_cycle(self) -> Optional[int]:
        """The next cycle at which an idle machine can make progress, or None.

        After a zero-progress cycle, every stage is blocked on a condition
        that only one of these events can change (see the module docstring's
        equivalence argument): the earliest scheduled completion, a thread's
        front-end refill timer, or a resource timer firing.  The resource
        models own genuine forward timers now: the execution ports and the
        memory hierarchy report the earliest in-flight completion the core
        announced to them at issue time (``note_inflight``), DRAM the
        earliest outstanding main-memory transaction, and each store queue
        the earliest unresolved store's address-resolution slot.  Every such
        timer mirrors a completion that is *also* on the completion heap, so
        folding them in can never move the minimum past a state change — and
        a hypothetical early timer would only make the engine step one extra
        provably-idle cycle, never miss work.  That containment is what keeps
        the skip exact while letting each resource answer for itself.
        """
        cycle = self.cycle
        candidates: List[int] = []
        if self._completion_heap:
            candidates.append(self._completion_heap[0][0])
        for thread in self.threads:
            if not thread.fetch_done() and thread.fetch_blocked_until > cycle:
                candidates.append(thread.fetch_blocked_until)
        timer = self.hierarchy.next_ready_cycle(cycle)
        if timer is not None:
            candidates.append(timer)
        timer = self.ports.next_release_cycle(cycle)
        if timer is not None:
            candidates.append(timer)
        for thread in self.threads:
            timer = thread.store_queue.next_release_cycle(cycle)
            if timer is not None:
                candidates.append(timer)
        if not candidates:
            return None
        return min(candidates)

    def _skip_idle_gap(self, max_cycles: int) -> None:
        """Jump over the idle cycles between now and the next event.

        Replays, in bulk, the only two things the per-cycle reference mutates
        during an idle cycle: the port model's cycle counter and (per
        Constable-equipped thread) a zero entry in the SLD-updates-per-cycle
        histogram.  The jump lands one cycle *before* the event so the main
        loop's increment and runaway guard see exactly the cycle values the
        reference stepper would.
        """
        target = self._next_event_cycle()
        if target is None:
            # Genuine deadlock: no scheduled completion, front-end refill
            # timer, or resource timer can ever unblock a stage.  Jump to the
            # runaway guard so both engines raise the identical diagnostic.
            self.cycle = max_cycles
            return
        resume = min(target, max_cycles + 1)
        skipped = resume - self.cycle - 1
        if skipped <= 0:
            return
        self.ports.skip_idle_cycles(skipped)
        if self._constable_threads:
            self.stats.record_sld_updates(
                0, cycles=skipped * len(self._constable_threads))
        self.skipped_idle_cycles += skipped
        self.cycle = resume - 1

    # ------------------------------------------------------ stage wake predicates

    def _retire_can_act(self) -> bool:
        """True unless a retire sweep would provably be a no-op.

        Mirrors :meth:`_retire_thread`'s loop entry and drain check: the
        stage only does work when some ROB head is complete and mature
        (``complete_cycle <= now``) or a thread has just drained and needs
        its finish cycle stamped.  The predicate is exact: whenever it holds,
        the sweep retires at least one micro-op or stamps a finish cycle.
        """
        cycle = self.cycle
        for thread in self.threads:
            rob = thread.rob
            if rob:
                head = rob[0]
                if head.complete and (head.complete_cycle is None
                                      or head.complete_cycle <= cycle):
                    return True
            elif thread.finish_cycle is None and thread.done():
                return True
        return False

    def _rename_must_run(self) -> bool:
        """True unless a rename sweep would provably be a no-op.

        For each thread with a non-empty IDQ the head's rename attempt is
        observably pure only when it bails at the allocation-pool checks —
        everything before them (the SLD port checks aside) mutates nothing
        the result records.  The SLD port checks *do* bump a stall statistic
        and sit in front of the pool checks, so any state in which they could
        fire forces the sweep to run.  A load head stalled on a full
        reservation station also keeps this predicate True (its pools are
        allocatable), which is exactly what the reference needs: that stall
        re-runs side-effecting mechanisms (Constable SLD lookup, LVP predict,
        RFP prefetch) every cycle, so those cycles must step one by one.
        Whenever the predicate holds the sweep acts — it renames the head or
        fires one of those side-effecting stalls (both of which
        :meth:`_rename_stage` would report as actions).
        """
        constable_config = self.config.constable
        for thread in self.threads:
            idq = thread.idq
            if not idq:
                continue
            head = idq[0][0]
            constable = thread.constable
            if constable is not None:
                if (constable.sld_updates_this_cycle
                        > constable_config.sld_write_ports):
                    return True
                if head.is_load and constable_config.sld_read_ports <= 0:
                    return True
            rob_pool = thread.rob_pool
            if rob_pool.occupied >= rob_pool.capacity:
                continue
            if head.is_load:
                lb_pool = thread.lb_pool
                if lb_pool.occupied >= lb_pool.capacity:
                    continue
            elif head.is_store:
                sb_pool = thread.sb_pool
                if sb_pool.occupied >= sb_pool.capacity:
                    continue
            return True
        return False

    def _fetch_can_act(self) -> bool:
        """True unless a fetch sweep would provably be a no-op (mirrors
        :meth:`_fetch_thread`'s loop entry conditions exactly, so whenever it
        holds the sweep fetches at least one micro-op)."""
        cycle = self.cycle
        idq_entries = self.config.idq_entries
        for thread in self.threads:
            if (thread.fetch_index < len(thread.instructions)
                    and len(thread.idq) < idq_entries
                    and cycle >= thread.fetch_blocked_until
                    and thread.pending_redirect_seq is None):
                return True
        return False

    # --------------------------------------------------------------- run loops

    def _run_cycle_engine(self, max_cycles: int) -> None:
        """The reference stepper: every cycle runs every stage, idle or not."""
        threads = self.threads
        constable_threads = self._constable_threads
        stats = self.stats
        while not all(thread.done() for thread in threads):
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles; likely a deadlock")
            self.ports.new_cycle()
            for thread in constable_threads:
                thread.constable.begin_cycle()
            self._retire_stage()
            self._writeback_stage()
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
            for thread in constable_threads:
                stats.record_sld_updates(thread.constable.sld_updates_this_cycle)
            self.stepped_cycles += 1

    def _run_event_engine(self, max_cycles: int) -> None:
        """Event-driven stepping: gate pure stages, skip provably idle gaps.

        Per stepped cycle each stage runs only if its wake predicate holds,
        evaluated in stage order so an earlier stage's effects (a completion
        pop waking the issue stage, retirement freeing rename's pools) are
        visible to later predicates exactly as they are to the reference's
        unconditional sweep.  The retire, rename and fetch predicates are
        exact (predicate holds ⇔ the sweep acts), so passing one marks the
        cycle as acted; the issue gate is conservative — the station may hold
        ready-looking work that still claims no port — so the sweep's own
        "issued anything" report decides.  When nothing acted, the cycle was
        provably idle — every gated-off stage's full run would have been a
        no-op — and no stage can start acting before the next scheduled event
        (see the module docstring's equivalence argument), so the engine
        jumps straight to that event.  All three refinements eliminate no-ops
        only; the machine trajectory is exactly the reference stepper's.
        """
        threads = self.threads
        constable_threads = self._constable_threads
        stats = self.stats
        heap = self._completion_heap
        while not all(thread.done() for thread in threads):
            self.cycle += 1
            cycle = self.cycle
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles; likely a deadlock")
            self.ports.new_cycle()
            for thread in constable_threads:
                thread.constable.begin_cycle()
            acted = False
            if self._retire_can_act():
                self._retire_stage()
                acted = True
            if heap and heap[0][0] <= cycle:
                self._writeback_stage()
                acted = True
            if ((self._rs_waiting or self._rs_woken)
                    and not self._issue_quiescent):
                if self._issue_stage():
                    acted = True
            if self._rename_must_run():
                self._rename_stage()
                acted = True
            if self._fetch_can_act():
                self._fetch_stage()
                acted = True
            for thread in constable_threads:
                stats.record_sld_updates(thread.constable.sld_updates_this_cycle)
            self.stepped_cycles += 1
            if not acted:
                self._skip_idle_gap(max_cycles)

    def run(self) -> SimulationResult:
        """Simulate until every thread has drained; returns the result record."""
        total_instructions = sum(len(t.instructions) for t in self.threads)
        max_cycles = total_instructions * self.config.max_cycles_per_instruction + 10_000
        if self.engine == "event":
            self._run_event_engine(max_cycles)
        else:
            self._run_cycle_engine(max_cycles)
        self.stats.cycles = self.cycle
        return self._build_result()

    # ---------------------------------------------------------------- reporting

    def _power_events(self) -> Dict[str, int]:
        stats = self.stats
        hierarchy = self.hierarchy
        events: Dict[str, int] = {
            "uops_fetched": stats.uops_fetched,
            "uops_decoded": stats.uops_fetched,
            "uops_renamed": stats.uops_renamed,
            "branches_predicted": stats.branches_predicted,
            "rs_allocations": self.rs_pool.total_allocations,
            "rs_issues": stats.rs_issues,
            "rob_allocations": sum(t.rob_pool.total_allocations for t in self.threads),
            "retired": stats.instructions_retired,
            "alu_ops": stats.alu_ops,
            "mul_ops": stats.mul_ops,
            "div_ops": stats.div_ops,
            "agu_ops": stats.agu_ops,
            "l1d_accesses": hierarchy.l1d.stats.accesses,
            "dtlb_accesses": hierarchy.dtlb.accesses,
            "l2_accesses": hierarchy.l2.stats.accesses,
            "llc_accesses": hierarchy.llc.stats.accesses,
            "dram_accesses": hierarchy.dram.accesses(),
            "store_commits": stats.store_commits,
            "cycles": self.cycle,
        }
        if self.config.lvp is not None:
            events["lvp_accesses"] = stats.loads_renamed
        if self.config.enable_memory_renaming:
            events["mrn_accesses"] = stats.loads_renamed + stats.stores_renamed
        for thread in self.threads:
            if thread.constable is not None:
                engine = thread.constable
                # One SLD read per renamed load (rename-stage lookup), one write per
                # executed load (confidence update) plus the can_eliminate resets.
                events["sld_reads"] = events.get("sld_reads", 0) + stats.loads_renamed
                events["sld_writes"] = (events.get("sld_writes", 0)
                                        + stats.loads_executed
                                        + engine.stats.sld_update_events)
                events["rmt_accesses"] = (events.get("rmt_accesses", 0)
                                          + engine.rmt.insertions + engine.rmt.consumes)
                events["amt_accesses"] = (events.get("amt_accesses", 0)
                                          + engine.amt.insertions + engine.amt.consumes)
        return events

    def _build_result(self) -> SimulationResult:
        constable_stats = None
        engines = [t.constable for t in self.threads if t.constable is not None]
        if engines:
            constable_stats = {}
            for engine in engines:
                for key, value in engine.stats.as_dict().items():
                    constable_stats[key] = constable_stats.get(key, 0) + value
            constable_stats["elimination_coverage"] = (
                sum(e.stats.loads_eliminated for e in engines)
                / max(1, sum(e.stats.loads_seen for e in engines)))
            constable_stats["xprf_failure_rate"] = (
                sum(e.xprf.allocation_failures for e in engines)
                / max(1, sum(e.xprf.total_allocations + e.xprf.allocation_failures
                             for e in engines)))

        lvp_stats = None
        predictors = [t.lvp for t in self.threads if t.lvp is not None]
        if predictors:
            lvp_stats = {
                "coverage": (sum(p.predictions for p in predictors)
                             / max(1, sum(p.attempts for p in predictors))),
                "accuracy": (sum(p.correct for p in predictors)
                             / max(1, sum(p.predictions for p in predictors))),
                "predictions": sum(p.predictions for p in predictors),
            }

        per_thread = []
        for thread in self.threads:
            per_thread.append({
                "thread": thread.thread_id,
                "trace": thread.trace.name,
                "instructions": thread.retired_instructions,
                "finish_cycle": thread.finish_cycle or self.cycle,
                "ipc": thread.retired_instructions / max(1, thread.finish_cycle or self.cycle),
            })

        resource_stats = {
            "rs_allocations": self.rs_pool.total_allocations,
            "rs_allocation_stalls": self.rs_pool.allocation_stalls,
            "rob_allocations": sum(t.rob_pool.total_allocations for t in self.threads),
            "lb_allocations": sum(t.lb_pool.total_allocations for t in self.threads),
            "sb_allocations": sum(t.sb_pool.total_allocations for t in self.threads),
            "rs_peak_occupancy": self.rs_pool.peak_occupancy,
        }

        return SimulationResult(
            trace_name="+".join(t.trace.name for t in self.threads),
            config_name=self.name,
            cycles=self.cycle,
            instructions=self.stats.instructions_retired,
            stats=self.stats,
            power_events=self._power_events(),
            memory_stats=self.hierarchy.stats_summary(),
            constable_stats=constable_stats,
            lvp_stats=lvp_stats,
            resource_stats=resource_stats,
            per_thread=per_thread,
        )


class _NoPrediction:
    """Sentinel standing in for "no prediction made" when accounting LVP outcomes."""

    predicted = False
    value = 0
    component = ""


_NO_PREDICTION = _NoPrediction()


def simulate_trace(trace: Trace, config: Optional[CoreConfig] = None,
                   name: str = "baseline",
                   engine: Optional[str] = None) -> SimulationResult:
    """Convenience wrapper: simulate a single trace on a single hardware thread.

    ``engine`` selects the execution engine (``"event"`` cycle skipping or the
    ``"cycle"`` reference stepper); None defers to :func:`default_engine`.
    """
    config = config or CoreConfig()
    core = OutOfOrderCore(config, [trace], name=name, engine=engine)
    return core.run()
