"""2-way simultaneous multithreading support (paper §8.1, §9.1.2).

In the SMT2 configuration two hardware threads share the fetch/rename/issue
bandwidth, the reservation station and the execution ports, while the ROB,
load buffer and store buffer are statically partitioned - following the
paper's description of resources being "statically-partitioned or
dynamically-shared".  Each thread gets its own Constable/LVP/MRN instances.

The helper here runs a pair of traces on one SMT core and reports both raw and
per-thread figures; the experiments layer computes speedups against the
SMT baseline run of the same pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import OutOfOrderCore
from repro.pipeline.stats import SimulationResult
from repro.workloads.trace import Trace

#: Code base address of the second SMT thread.  The second trace is generated
#: at a different base PC so the two threads never alias in the PC-indexed
#: predictors; executors regenerating the trace (serial runner, pool workers,
#: cache keys) must all agree on this value for results to be comparable.
SMT_SECOND_THREAD_BASE_PC = 0x800000


@dataclass
class SmtResult:
    """Result of one SMT2 simulation."""

    result: SimulationResult
    per_thread_ipc: List[float] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Cycles of the co-scheduled run."""
        return self.result.cycles

    @property
    def total_instructions(self) -> int:
        """Instructions retired across both hardware threads."""
        return self.result.instructions

    def throughput(self) -> float:
        """Aggregate instructions per cycle across both threads."""
        if self.result.cycles == 0:
            return 0.0
        return self.result.instructions / self.result.cycles

    def weighted_speedup_over(self, baseline: "SmtResult") -> float:
        """Per-thread-IPC weighted speedup against another SMT run of the same pair."""
        if not baseline.per_thread_ipc or len(baseline.per_thread_ipc) != len(self.per_thread_ipc):
            raise ValueError("baseline must come from the same thread pairing")
        ratios = []
        for mine, base in zip(self.per_thread_ipc, baseline.per_thread_ipc):
            if base > 0:
                ratios.append(mine / base)
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding the full SMT result.

        The round-trip is lossless (every pipeline counter, power event and
        per-thread record included), so SMT results can be persisted in the
        on-disk experiment cache and shipped across process boundaries exactly
        like single-thread :class:`SimulationResult` records.
        """
        return {
            "result": self.result.to_dict(),
            "per_thread_ipc": list(self.per_thread_ipc),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SmtResult":
        """Rebuild an SMT result from :meth:`to_dict` output."""
        return cls(
            result=SimulationResult.from_dict(data["result"]),
            per_thread_ipc=[float(value) for value in data.get("per_thread_ipc", [])],
        )


def simulate_smt_pair(trace_a: Trace, trace_b: Trace,
                      config: Optional[CoreConfig] = None,
                      name: str = "smt2",
                      engine: Optional[str] = None) -> SmtResult:
    """Run two traces on one 2-way SMT core.

    ``engine`` selects the execution engine (``"event"`` cycle skipping or the
    ``"cycle"`` reference stepper); None defers to the process default.
    """
    config = config or CoreConfig()
    core = OutOfOrderCore(config, [trace_a, trace_b], name=name, engine=engine)
    result = core.run()
    per_thread_ipc = [entry["ipc"] for entry in result.per_thread]
    return SmtResult(result=result, per_thread_ipc=per_thread_ipc)
