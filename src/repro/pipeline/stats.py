"""Simulation statistics and the result record returned by the core model.

Both records round-trip losslessly through plain dictionaries
(:meth:`to_dict` / :meth:`from_dict`) so results can be stored in the on-disk
experiment cache and shipped across process boundaries as JSON.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PipelineStats:
    """Raw event counters accumulated during one simulation."""

    cycles: int = 0
    instructions_retired: int = 0
    uops_fetched: int = 0
    uops_renamed: int = 0
    loads_renamed: int = 0
    stores_renamed: int = 0
    branches_renamed: int = 0

    # Execution events.
    rs_issues: int = 0
    alu_ops: int = 0
    mul_ops: int = 0
    div_ops: int = 0
    agu_ops: int = 0
    loads_executed: int = 0
    loads_forwarded_from_store: int = 0
    store_commits: int = 0

    # Front-end events.
    branches_predicted: int = 0
    branch_mispredictions: int = 0

    # Recovery events.
    flushes: int = 0
    ordering_violation_flushes: int = 0
    lvp_misprediction_flushes: int = 0
    mrn_misprediction_flushes: int = 0
    reexecuted_uops: int = 0

    # Load-port utilisation (Fig. 6).
    load_utilized_cycles: int = 0
    load_utilized_cycles_stable_blocking: int = 0
    load_utilized_cycles_stable_only: int = 0

    # Constable-specific pipeline-level events.
    eliminated_loads_retired: int = 0
    oracle_stable_loads_renamed: int = 0
    eliminated_oracle_stable_loads: int = 0
    eliminated_non_stable_loads: int = 0
    golden_checks: int = 0
    sld_update_cycles_histogram: Dict[int, int] = field(default_factory=dict)
    rename_stalls_sld_ports: int = 0

    # Value prediction.
    value_predicted_loads: int = 0
    value_predictions_correct: int = 0

    def ipc(self) -> float:
        """Retired instructions per cycle (0.0 before any cycle)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions_retired / self.cycles

    def record_sld_updates(self, updates: int, cycles: int = 1) -> None:
        """Record ``cycles`` thread-cycles that performed ``updates`` SLD writes.

        ``cycles > 1`` is how the event-driven core accounts a skipped idle
        gap in bulk: every skipped cycle would have recorded zero updates, so
        the histogram stays bit-identical to the per-cycle reference stepper.
        """
        self.sld_update_cycles_histogram[updates] = (
            self.sld_update_cycles_histogram.get(updates, 0) + cycles)

    def average_sld_updates_per_cycle(self) -> float:
        """Mean SLD updates per cycle from the update histogram."""
        total_cycles = sum(self.sld_update_cycles_histogram.values())
        if total_cycles == 0:
            return 0.0
        total_updates = sum(updates * count
                            for updates, count in self.sld_update_cycles_histogram.items())
        return total_updates / total_cycles

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding every counter."""
        data = dataclasses.asdict(self)
        # JSON objects have string keys; the histogram is keyed by int.
        data["sld_update_cycles_histogram"] = {
            str(updates): count
            for updates, count in sorted(self.sld_update_cycles_histogram.items())}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PipelineStats":
        """Rebuild stats from :meth:`to_dict` output (unknown keys are ignored)."""
        known = {f.name for f in dataclasses.fields(cls)}
        fields = {key: value for key, value in data.items() if key in known}
        histogram = fields.get("sld_update_cycles_histogram", {})
        fields["sld_update_cycles_histogram"] = {
            int(updates): int(count) for updates, count in histogram.items()}
        return cls(**fields)


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    trace_name: str
    config_name: str
    cycles: int
    instructions: int
    stats: PipelineStats
    power_events: Dict[str, int] = field(default_factory=dict)
    memory_stats: Dict[str, object] = field(default_factory=dict)
    constable_stats: Optional[Dict[str, float]] = None
    lvp_stats: Optional[Dict[str, float]] = None
    resource_stats: Dict[str, int] = field(default_factory=dict)
    per_thread: List[Dict[str, float]] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0.0 for an empty run)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Cycles-based speedup of this run over ``baseline`` (same work assumed)."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def summary(self) -> Dict[str, object]:
        """The headline numbers of one run as a flat dictionary."""
        return {
            "trace": self.trace_name,
            "config": self.config_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "rs_allocations": self.resource_stats.get("rs_allocations", 0),
            "l1d_accesses": self.power_events.get("l1d_accesses", 0),
            "eliminated_loads": (self.constable_stats or {}).get("loads_eliminated", 0),
        }

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding the full result."""
        return {
            "trace_name": self.trace_name,
            "config_name": self.config_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stats": self.stats.to_dict(),
            "power_events": dict(self.power_events),
            "memory_stats": copy.deepcopy(self.memory_stats),
            "constable_stats": (dict(self.constable_stats)
                                if self.constable_stats is not None else None),
            "lvp_stats": dict(self.lvp_stats) if self.lvp_stats is not None else None,
            "resource_stats": dict(self.resource_stats),
            "per_thread": [dict(entry) for entry in self.per_thread],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            trace_name=data["trace_name"],
            config_name=data["config_name"],
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            stats=PipelineStats.from_dict(data["stats"]),
            power_events=dict(data.get("power_events", {})),
            memory_stats=copy.deepcopy(data.get("memory_stats", {})),
            constable_stats=(dict(data["constable_stats"])
                             if data.get("constable_stats") is not None else None),
            lvp_stats=(dict(data["lvp_stats"])
                       if data.get("lvp_stats") is not None else None),
            resource_stats=dict(data.get("resource_stats", {})),
            per_thread=[dict(entry) for entry in data.get("per_thread", [])],
        )
