"""In-flight micro-op record used by the out-of-order core."""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instruction import DynamicInstruction


class InflightOp:
    """One micro-op travelling through the out-of-order window."""

    __slots__ = (
        "dyn", "thread", "trace_index", "rename_cycle",
        "seq", "pc", "opclass", "dest",
        "depends_on", "needs_rs", "port_kind", "exec_latency",
        "complete", "complete_cycle", "value_ready_cycle",
        "issued", "issue_cycle", "finish_cycle",
        "squashed", "in_rs", "rs_slot", "waiters",
        # loads
        "is_load", "is_store",
        "eliminated", "likely_stable", "constable_value", "constable_address",
        "ideal_covered", "ideal_value", "ideal_address",
        "lvp_prediction", "mrn_store", "mrn_predicted",
        "rfp_address", "elar_early",
        "oracle_stable", "reexecuted", "value_obtained_cycle",
        "executed_at_rename", "optimization",
        # stores
        "store_record",
        "retired",
    )

    def __init__(self, dyn: DynamicInstruction, thread: int, trace_index: int,
                 rename_cycle: int):
        self.dyn = dyn
        self.thread = thread
        self.trace_index = trace_index
        self.rename_cycle = rename_cycle
        # Flattened static decode: the retire/issue loops touch these every
        # cycle, so they are plain slots instead of ``dyn.static.*`` chases.
        self.seq = dyn.seq
        self.pc = dyn.pc
        self.opclass = dyn.opclass
        self.dest = dyn.static.dest
        self.depends_on: List["InflightOp"] = []
        self.needs_rs = True
        self.port_kind = None
        # Issue-time execution latency, precomputed at rename for non-load
        # RS-bound uops (loads derive theirs from the memory hierarchy).
        self.exec_latency = 0
        self.complete = False
        self.complete_cycle: Optional[int] = None
        self.value_ready_cycle: Optional[int] = None
        self.issued = False
        self.issue_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.squashed = False
        self.in_rs = False
        # Reservation-station insertion order (monotone across the whole
        # run); the issue stage's scan order is exactly ascending rs_slot,
        # so parked dependence-blocked micro-ops can be merged back into the
        # scan list at their original age position.
        self.rs_slot = 0
        # Dependence-blocked micro-ops parked on this producer by the event
        # engine's issue scan (None when empty).  When this op's completion
        # pops, the core moves them back into the scan list; a parked op
        # lives in exactly one producer's waiters list.
        self.waiters: Optional[List["InflightOp"]] = None
        self.is_load = dyn.is_load
        self.is_store = dyn.is_store
        self.eliminated = False
        self.likely_stable = False
        self.constable_value = 0
        self.constable_address = 0
        self.ideal_covered = False
        self.ideal_value = 0
        self.ideal_address = 0
        self.lvp_prediction = None
        self.mrn_store = None
        self.mrn_predicted = False
        self.rfp_address: Optional[int] = None
        self.elar_early = False
        self.oracle_stable = False
        self.reexecuted = False
        self.value_obtained_cycle: Optional[int] = None
        self.executed_at_rename = False
        self.optimization = None
        self.store_record = None
        self.retired = False

    # ------------------------------------------------------------------ queries

    def sources_ready(self, cycle: int) -> bool:
        """True if every producer has made its value available by ``cycle``.

        Producers whose value is already available are pruned from
        ``depends_on`` as a side effect: readiness is monotone (a value never
        becomes un-ready), so dropping satisfied producers cannot change any
        later answer, and it keeps the issue stage's repeated rescans of
        long-waiting micro-ops from re-checking the whole producer list.
        """
        deps = self.depends_on
        if not deps:
            return True
        keep = 0
        for producer in deps:
            ready = producer.value_ready_cycle
            if ready is None or ready > cycle:
                deps[keep] = producer
                keep += 1
        if keep:
            del deps[keep:]
            return False
        del deps[:]
        return True

    def mark_value_ready(self, cycle: int) -> None:
        """Record the earliest cycle at which dependents may consume the value."""
        if self.value_ready_cycle is None or cycle < self.value_ready_cycle:
            self.value_ready_cycle = cycle

    def mark_complete(self, cycle: int) -> None:
        """Record execution completion (retirement eligibility)."""
        self.complete = True
        self.complete_cycle = cycle
        self.mark_value_ready(cycle)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = []
        if self.eliminated:
            flags.append("elim")
        if self.complete:
            flags.append("done")
        if self.squashed:
            flags.append("squashed")
        return (f"InflightOp(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.opclass.value}{', ' + ','.join(flags) if flags else ''})")
