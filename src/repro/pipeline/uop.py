"""In-flight micro-op record used by the out-of-order core."""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instruction import DynamicInstruction


class InflightOp:
    """One micro-op travelling through the out-of-order window."""

    __slots__ = (
        "dyn", "thread", "trace_index", "rename_cycle",
        "seq", "pc", "opclass", "dest",
        "depends_on", "needs_rs", "port_kind",
        "complete", "complete_cycle", "value_ready_cycle",
        "issued", "issue_cycle", "finish_cycle",
        "squashed", "in_rs",
        # loads
        "is_load", "is_store",
        "eliminated", "likely_stable", "constable_value", "constable_address",
        "ideal_covered", "ideal_value", "ideal_address",
        "lvp_prediction", "mrn_store", "mrn_predicted",
        "rfp_address", "elar_early",
        "oracle_stable", "reexecuted", "value_obtained_cycle",
        "executed_at_rename", "optimization",
        # stores
        "store_record",
        "retired",
    )

    def __init__(self, dyn: DynamicInstruction, thread: int, trace_index: int,
                 rename_cycle: int):
        self.dyn = dyn
        self.thread = thread
        self.trace_index = trace_index
        self.rename_cycle = rename_cycle
        # Flattened static decode: the retire/issue loops touch these every
        # cycle, so they are plain slots instead of ``dyn.static.*`` chases.
        self.seq = dyn.seq
        self.pc = dyn.pc
        self.opclass = dyn.opclass
        self.dest = dyn.static.dest
        self.depends_on: List["InflightOp"] = []
        self.needs_rs = True
        self.port_kind = None
        self.complete = False
        self.complete_cycle: Optional[int] = None
        self.value_ready_cycle: Optional[int] = None
        self.issued = False
        self.issue_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.squashed = False
        self.in_rs = False
        self.is_load = dyn.is_load
        self.is_store = dyn.is_store
        self.eliminated = False
        self.likely_stable = False
        self.constable_value = 0
        self.constable_address = 0
        self.ideal_covered = False
        self.ideal_value = 0
        self.ideal_address = 0
        self.lvp_prediction = None
        self.mrn_store = None
        self.mrn_predicted = False
        self.rfp_address: Optional[int] = None
        self.elar_early = False
        self.oracle_stable = False
        self.reexecuted = False
        self.value_obtained_cycle: Optional[int] = None
        self.executed_at_rename = False
        self.optimization = None
        self.store_record = None
        self.retired = False

    # ------------------------------------------------------------------ queries

    def sources_ready(self, cycle: int) -> bool:
        """True if every producer has made its value available by ``cycle``."""
        for producer in self.depends_on:
            ready = producer.value_ready_cycle
            if ready is None or ready > cycle:
                return False
        return True

    def mark_value_ready(self, cycle: int) -> None:
        """Record the earliest cycle at which dependents may consume the value."""
        if self.value_ready_cycle is None or cycle < self.value_ready_cycle:
            self.value_ready_cycle = cycle

    def mark_complete(self, cycle: int) -> None:
        """Record execution completion (retirement eligibility)."""
        self.complete = True
        self.complete_cycle = cycle
        self.mark_value_ready(cycle)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = []
        if self.eliminated:
            flags.append("elim")
        if self.complete:
            flags.append("done")
        if self.squashed:
            flags.append("squashed")
        return (f"InflightOp(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.opclass.value}{', ' + ','.join(flags) if flags else ''})")
