"""Power modelling: CACTI-like structure estimates and the event-based core power model."""

from repro.power.cacti import StructureEstimate, cacti_estimate, TABLE3_ESTIMATES
from repro.power.power_model import (
    EnergyTable,
    PowerBreakdown,
    CorePowerModel,
)

__all__ = [
    "StructureEstimate",
    "cacti_estimate",
    "TABLE3_ESTIMATES",
    "EnergyTable",
    "PowerBreakdown",
    "CorePowerModel",
]
