"""CACTI-like per-structure energy/leakage/area estimates (paper §8.2, Table 3).

The paper runs CACTI 7.0 at 22 nm and scales to 14 nm.  Without CACTI, two
things are provided here:

* :data:`TABLE3_ESTIMATES` - the paper's published numbers for SLD/RMT/AMT,
  used as the calibration points and reproduced verbatim by the Table 3 bench.
* :func:`cacti_estimate` - a simple parametric SRAM model (energy grows with
  capacity and port count) fitted against those calibration points, used for
  any other structure geometry (e.g. sensitivity studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class StructureEstimate:
    """Access energy (pJ), leakage (mW) and area (mm^2) of one SRAM structure."""

    name: str
    size_kb: float
    read_ports: int
    write_ports: int
    read_energy_pj: float
    write_energy_pj: float
    leakage_mw: float
    area_mm2: float


#: Paper Table 3 (14 nm technology).
TABLE3_ESTIMATES: Dict[str, StructureEstimate] = {
    "sld": StructureEstimate("SLD", 7.9, 3, 2, 10.76, 16.70, 1.02, 0.211),
    "rmt": StructureEstimate("RMT", 0.4, 2, 6, 0.15, 0.20, 0.31, 0.004),
    "amt": StructureEstimate("AMT", 4.0, 1, 1, 1.58, 4.22, 0.74, 0.017),
}

# Parametric model coefficients, fitted (coarsely) to the Table 3 points.
_READ_COEFF = 0.55
_WRITE_COEFF = 0.95
_PORT_FACTOR = 0.45
_LEAKAGE_COEFF = 0.13
_AREA_COEFF = 0.011
_SIZE_EXPONENT = 1.05


def cacti_estimate(name: str, size_kb: float, read_ports: int = 1,
                   write_ports: int = 1) -> StructureEstimate:
    """Parametric SRAM estimate for an arbitrary structure geometry."""
    if size_kb <= 0:
        raise ValueError("size_kb must be positive")
    if read_ports <= 0 or write_ports <= 0:
        raise ValueError("port counts must be positive")
    size_term = size_kb ** _SIZE_EXPONENT
    port_term_read = 1.0 + _PORT_FACTOR * (read_ports - 1)
    port_term_write = 1.0 + _PORT_FACTOR * (write_ports - 1)
    read_energy = _READ_COEFF * size_term * port_term_read
    write_energy = _WRITE_COEFF * size_term * port_term_write
    total_ports = read_ports + write_ports
    leakage = _LEAKAGE_COEFF * size_kb * (1.0 + 0.2 * (total_ports - 2))
    area = _AREA_COEFF * size_kb * (1.0 + 0.3 * (total_ports - 2))
    return StructureEstimate(
        name=name, size_kb=size_kb, read_ports=read_ports, write_ports=write_ports,
        read_energy_pj=read_energy, write_energy_pj=write_energy,
        leakage_mw=leakage, area_mm2=area,
    )


def constable_structure_estimates(use_calibrated: bool = True) -> Dict[str, StructureEstimate]:
    """Estimates for Constable's three structures.

    With ``use_calibrated=True`` (default) the paper's Table 3 values are
    returned; otherwise the parametric model is applied to the same geometries.
    """
    if use_calibrated:
        return dict(TABLE3_ESTIMATES)
    return {
        key: cacti_estimate(est.name, est.size_kb, est.read_ports, est.write_ports)
        for key, est in TABLE3_ESTIMATES.items()
    }
