"""Event-driven core dynamic power model (paper §8.2, Fig. 19).

The paper's RTL-validated power model is proprietary; what its results depend
on, however, are *event count* differences between configurations - fewer RS
allocations, fewer L1-D accesses, plus the energy of Constable's own tables.
This model charges a per-event energy to every pipeline event and groups the
totals into the same units the paper reports: front end (FE), out-of-order
engine (OOO = RS + RAT + ROB), non-memory execution (EU) and the memory
execution unit (MEU = L1-D + DTLB), with Constable's SLD/RMT charged to the
RAT and the AMT charged to the L1-D component, exactly as §8.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.power.cacti import TABLE3_ESTIMATES


@dataclass
class EnergyTable:
    """Per-event energies in picojoules."""

    uop_fetch: float = 12.0
    uop_decode: float = 10.0
    branch_predict: float = 6.0
    uop_rename: float = 14.0
    rs_allocation: float = 18.0
    rs_issue: float = 12.0
    rob_allocation: float = 8.0
    rob_retire: float = 6.0
    alu_op: float = 15.0
    mul_op: float = 30.0
    div_op: float = 80.0
    agu_op: float = 10.0
    l1d_access: float = 120.0
    dtlb_access: float = 8.0
    store_commit: float = 30.0
    l2_access: float = 150.0
    llc_access: float = 300.0
    dram_access: float = 1000.0
    lvp_access: float = 6.0
    mrn_access: float = 4.0
    cycle_overhead: float = 45.0   # clock tree + always-on structures, per cycle
    sld_read: float = TABLE3_ESTIMATES["sld"].read_energy_pj
    sld_write: float = TABLE3_ESTIMATES["sld"].write_energy_pj
    rmt_access: float = TABLE3_ESTIMATES["rmt"].read_energy_pj + TABLE3_ESTIMATES["rmt"].write_energy_pj
    amt_access: float = TABLE3_ESTIMATES["amt"].read_energy_pj + TABLE3_ESTIMATES["amt"].write_energy_pj


@dataclass
class PowerBreakdown:
    """Energy totals (pJ) per core unit plus selected sub-units."""

    units: Dict[str, float] = field(default_factory=dict)
    sub_units: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of all unit powers."""
        return sum(self.units.values())

    def fraction(self, unit: str) -> float:
        """One unit's share of the total power (0.0 when total is zero)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.units.get(unit, 0.0) / total

    def relative_to(self, baseline: "PowerBreakdown") -> float:
        """This configuration's total energy relative to a baseline (1.0 = equal)."""
        if baseline.total == 0:
            return 0.0
        return self.total / baseline.total

    def sub_unit_relative_to(self, baseline: "PowerBreakdown", name: str) -> float:
        """One sub-unit's power relative to the same sub-unit in ``baseline``."""
        base = baseline.sub_units.get(name, 0.0)
        if base == 0:
            return 0.0
        return self.sub_units.get(name, 0.0) / base

    def as_dict(self) -> Dict[str, object]:
        """Units, sub-units and total as a plain dictionary."""
        return {"units": dict(self.units), "sub_units": dict(self.sub_units),
                "total": self.total}


class CorePowerModel:
    """Computes the FE/OOO/EU/MEU/Others dynamic-energy breakdown from event counts."""

    def __init__(self, energy: Optional[EnergyTable] = None):
        self.energy = energy or EnergyTable()

    def evaluate(self, counts: Mapping[str, int]) -> PowerBreakdown:
        """Evaluate the breakdown for a dictionary of event counts.

        Unknown keys are ignored; missing keys count as zero, so the caller can
        supply whatever subset of events its configuration produces.
        """
        e = self.energy
        get = lambda key: counts.get(key, 0)

        fe = (get("uops_fetched") * e.uop_fetch
              + get("uops_decoded") * e.uop_decode
              + get("branches_predicted") * e.branch_predict)

        rat = (get("uops_renamed") * e.uop_rename
               + get("sld_reads") * e.sld_read
               + get("sld_writes") * e.sld_write
               + get("rmt_accesses") * e.rmt_access
               + get("mrn_accesses") * e.mrn_access)
        rs = get("rs_allocations") * e.rs_allocation + get("rs_issues") * e.rs_issue
        rob = get("rob_allocations") * e.rob_allocation + get("retired") * e.rob_retire
        ooo = rat + rs + rob

        eu = (get("alu_ops") * e.alu_op
              + get("mul_ops") * e.mul_op
              + get("div_ops") * e.div_op
              + get("agu_ops") * e.agu_op
              + get("lvp_accesses") * e.lvp_access)

        l1d = (get("l1d_accesses") * e.l1d_access
               + get("store_commits") * e.store_commit
               + get("amt_accesses") * e.amt_access)
        dtlb = get("dtlb_accesses") * e.dtlb_access
        meu = l1d + dtlb

        others = (get("l2_accesses") * e.l2_access
                  + get("llc_accesses") * e.llc_access
                  + get("dram_accesses") * e.dram_access
                  + get("cycles") * e.cycle_overhead)

        return PowerBreakdown(
            units={"FE": fe, "OOO": ooo, "EU": eu, "MEU": meu, "Others": others},
            sub_units={"RAT": rat, "RS": rs, "ROB": rob, "L1D": l1d, "DTLB": dtlb},
        )
