"""Prior works compared against Constable: ELAR and Register File Prefetching."""

from repro.prior.elar import EarlyLoadAddressResolver, ElarConfig
from repro.prior.rfp import RegisterFilePrefetcher, RfpConfig

__all__ = [
    "EarlyLoadAddressResolver",
    "ElarConfig",
    "RegisterFilePrefetcher",
    "RfpConfig",
]
