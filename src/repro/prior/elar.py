"""Early Load Address Resolution (ELAR, Bekerman et al., ISCA 2000).

ELAR tracks the stack-pointer value with a small adder in the decode stage,
so the effective address of most stack loads is known non-speculatively before
rename.  The load can start its memory access early, hiding the address
generation latency - but it still performs the memory access and still
occupies the load execution resources, which is why the paper finds it adds
little on a baseline that already folds RSP updates (§9.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.isa.instruction import AddressingMode, DynamicInstruction
from repro.isa.registers import RBP, RSP


@dataclass
class ElarConfig:
    """ELAR behaviour knobs."""

    #: Cycles of load latency hidden when the address is resolved early
    #: (address generation + issue-to-execute latency).
    early_cycles: int = 3
    #: Track RBP-based frame accesses as well as RSP-based ones.
    track_frame_pointer: bool = True


class EarlyLoadAddressResolver:
    """Classifies loads whose address is resolvable in the decode stage."""

    def __init__(self, config: ElarConfig = ElarConfig()):
        self.config = config
        self._trackable: Set[int] = {RSP}
        if config.track_frame_pointer:
            self._trackable.add(RBP)
        self.resolved_loads = 0
        self.total_loads = 0

    def can_resolve_early(self, dyn: DynamicInstruction) -> bool:
        """True if this load's address is available right after decode."""
        if not dyn.is_load:
            return False
        self.total_loads += 1
        mem = dyn.static.mem
        regs = mem.address_registers()
        if dyn.static.addressing_mode() is AddressingMode.PC_RELATIVE:
            self.resolved_loads += 1
            return True
        if regs and all(r in self._trackable for r in regs):
            self.resolved_loads += 1
            return True
        return False

    def latency_savings(self) -> int:
        """Cycles of load latency hidden for an early-resolved load."""
        return self.config.early_cycles

    def coverage(self) -> float:
        """Fraction of loads whose address resolved early."""
        if self.total_loads == 0:
            return 0.0
        return self.resolved_loads / self.total_loads
