"""Register File Prefetching (RFP, Shukla et al., ISCA 2022).

RFP predicts a load's address at rename (stride-style, PC-indexed) and
prefetches the data into the register file.  If the predicted address matches
when the load executes, the memory latency is already paid and the load
completes as soon as it issues; otherwise the load executes normally.  Either
way, the load still consumes an RS entry, an AGU port and a load port - so RFP
mitigates data dependence but not resource dependence (paper §7, §9.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class RfpConfig:
    """RFP prefetch-table geometry (paper Table 2: 2K-entry prefetch table)."""

    prefetch_table_entries: int = 2048
    confidence_threshold: int = 2
    confidence_max: int = 7
    inflight_limit: int = 128


class _RfpEntry:
    __slots__ = ("last_address", "stride", "confidence")

    def __init__(self, last_address: int):
        self.last_address = last_address
        self.stride = 0
        self.confidence = 0


class RegisterFilePrefetcher:
    """PC-indexed address predictor driving register-file prefetches."""

    def __init__(self, config: Optional[RfpConfig] = None):
        self.config = config or RfpConfig()
        self._table: Dict[int, _RfpEntry] = {}
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        self.prefetches_wasted = 0

    def predict_address(self, pc: int) -> Optional[int]:
        """Predicted effective address for the next instance of the load at ``pc``."""
        entry = self._table.get(pc)
        if entry is not None and entry.confidence >= self.config.confidence_threshold:
            return entry.last_address + entry.stride
        return None

    def issue_prefetch(self, pc: int) -> Optional[int]:
        """Issue a register-file prefetch at rename; returns the prefetched address."""
        address = self.predict_address(pc)
        if address is not None:
            self.prefetches_issued += 1
        return address

    def verify(self, prefetched_address: Optional[int], actual_address: int) -> bool:
        """Check the prefetch against the executed load's address."""
        if prefetched_address is None:
            return False
        if prefetched_address == actual_address:
            self.prefetches_useful += 1
            return True
        self.prefetches_wasted += 1
        return False

    def train(self, pc: int, actual_address: int) -> None:
        """Train the address predictor with the executed load's address."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.config.prefetch_table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _RfpEntry(actual_address)
            return
        stride = actual_address - entry.last_address
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.config.confidence_max)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = actual_address

    def accuracy(self) -> float:
        """Useful prefetches as a fraction of prefetches issued."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued
