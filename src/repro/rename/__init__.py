"""Rename-stage machinery: register alias table, dynamic instruction optimizations
(move/zero elimination, constant and branch folding) and Memory Renaming (MRN)."""

from repro.rename.rat import RegisterAliasTable
from repro.rename.optimizations import RenameOptimizer, RenameOptimizationConfig, OptimizationKind
from repro.rename.memory_renaming import MemoryRenamer, MemoryRenamingConfig

__all__ = [
    "RegisterAliasTable",
    "RenameOptimizer",
    "RenameOptimizationConfig",
    "OptimizationKind",
    "MemoryRenamer",
    "MemoryRenamingConfig",
]
