"""Memory Renaming (MRN): store-to-load dependence prediction at rename.

MRN (Tyson & Austin; Moshovos & Sohi) learns stable store->load communication
pairs.  When a load with a confident pairing is renamed while the paired store
is in flight, the load's data dependence is broken immediately: its dependents
are fed from the store's data instead of waiting for the load to execute.  The
load still executes to verify the forwarding - which is exactly the resource
dependence Constable removes and MRN does not (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class MemoryRenamingConfig:
    """MRN table geometry and confidence thresholds."""

    table_entries: int = 1024
    confidence_threshold: int = 4
    confidence_max: int = 15
    store_window: int = 4096   # how far back (in instructions) a store may be paired


@dataclass
class _PairEntry:
    store_pc: int
    confidence: int = 0


class MemoryRenamer:
    """Learns load-PC -> store-PC communication pairs with confidence."""

    def __init__(self, config: Optional[MemoryRenamingConfig] = None):
        self.config = config or MemoryRenamingConfig()
        self._pairs: Dict[int, _PairEntry] = {}
        # Most recent store seen for each word address: (store_pc, seq).
        self._recent_stores: Dict[int, Tuple[int, int]] = {}
        self.predictions = 0
        self.correct_predictions = 0
        self.mispredictions = 0

    # ---------------------------------------------------------------- training

    def observe_store(self, store_pc: int, address: int, seq: int) -> None:
        """Record an executed store so later loads can learn the pairing."""
        self._recent_stores[address & ~0x7] = (store_pc, seq)

    def observe_load(self, load_pc: int, address: int, seq: int) -> None:
        """Train the pairing table when a load reads a recently stored word."""
        recent = self._recent_stores.get(address & ~0x7)
        entry = self._pairs.get(load_pc)
        if recent is not None and seq - recent[1] <= self.config.store_window:
            store_pc = recent[0]
            if entry is None:
                if len(self._pairs) >= self.config.table_entries:
                    self._pairs.pop(next(iter(self._pairs)))
                self._pairs[load_pc] = _PairEntry(store_pc=store_pc, confidence=1)
            elif entry.store_pc == store_pc:
                entry.confidence = min(entry.confidence + 1, self.config.confidence_max)
            else:
                entry.confidence -= 1
                if entry.confidence <= 0:
                    self._pairs[load_pc] = _PairEntry(store_pc=store_pc, confidence=1)
        elif entry is not None:
            entry.confidence = max(entry.confidence - 1, 0)

    # -------------------------------------------------------------- prediction

    def predicted_store_pc(self, load_pc: int) -> Optional[int]:
        """The store PC predicted to forward to this load, if confident."""
        entry = self._pairs.get(load_pc)
        if entry is not None and entry.confidence >= self.config.confidence_threshold:
            return entry.store_pc
        return None

    def record_prediction(self, correct: bool) -> None:
        """Account a rename-time forwarding prediction outcome."""
        self.predictions += 1
        if correct:
            self.correct_predictions += 1
        else:
            self.mispredictions += 1

    def accuracy(self) -> float:
        """Correct forwarding predictions as a fraction of all predictions."""
        if self.predictions == 0:
            return 0.0
        return self.correct_predictions / self.predictions
