"""Rename-stage dynamic instruction optimizations of the baseline core.

The paper's baseline already performs move elimination, zero elimination,
constant folding and branch folding at rename (Table 2, bold entries); these
remove the execution of many non-memory micro-ops, which is precisely why the
remaining load resource dependence matters.  The optimizer classifies each
micro-op: an optimized micro-op completes at rename, consumes no reservation
station entry and no execution port.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.instruction import DynamicInstruction, OpClass


class OptimizationKind(enum.Enum):
    """Which rename-stage optimization (if any) applies to a micro-op."""

    NONE = "none"
    MOVE_ELIMINATION = "move_elimination"
    ZERO_ELIMINATION = "zero_elimination"
    CONSTANT_FOLDING = "constant_folding"
    BRANCH_FOLDING = "branch_folding"
    NOP_ELIMINATION = "nop_elimination"


@dataclass
class RenameOptimizationConfig:
    """Enable/disable individual baseline optimizations."""

    move_elimination: bool = True
    zero_elimination: bool = True
    constant_folding: bool = True
    branch_folding: bool = True

    def all_disabled(self) -> "RenameOptimizationConfig":
        """A copy of the config with every rename optimization turned off."""
        return RenameOptimizationConfig(False, False, False, False)


#: Dense per-kind counter index (classify runs per renamed micro-op, where
#: enum hashing is measurable; a list increment is not).
_KIND_INDEX: Dict[OptimizationKind, int] = {
    kind: index for index, kind in enumerate(OptimizationKind)}


class RenameOptimizer:
    """Classifies micro-ops for rename-stage elimination/folding."""

    def __init__(self, config: Optional[RenameOptimizationConfig] = None):
        self.config = config or RenameOptimizationConfig()
        self._counts = [0] * len(OptimizationKind)
        # The classification is a pure function of the *static* instruction
        # (opclass, immediate, source list — all final after construction)
        # and the fixed config, so it is memoised per static object.  Keying
        # by identity rather than PC matters under SMT: co-scheduled traces
        # have independent address spaces, so one PC can name two different
        # static instructions.  The dict key is the static object itself
        # (identity hash), which also keeps it alive so the entry can never
        # be aliased by a recycled allocation.
        self._by_static: Dict[object, tuple] = {}

    @property
    def counts(self) -> Dict[OptimizationKind, int]:
        """Per-kind classification counts (reporting view)."""
        return {kind: self._counts[index]
                for kind, index in _KIND_INDEX.items()}

    def classify(self, dyn: DynamicInstruction) -> OptimizationKind:
        """Return the optimization applied to ``dyn`` (NONE if it must execute)."""
        entry = self._by_static.get(dyn.static)
        if entry is None:
            kind = self._classify(dyn)
            entry = (kind, _KIND_INDEX[kind])
            self._by_static[dyn.static] = entry
        self._counts[entry[1]] += 1
        return entry[0]

    def _classify(self, dyn: DynamicInstruction) -> OptimizationKind:
        cfg = self.config
        opclass = dyn.static.opclass
        if opclass is OpClass.NOP:
            return OptimizationKind.NOP_ELIMINATION
        if opclass is OpClass.MOVE_REG and cfg.move_elimination:
            # reg-reg moves are eliminated by remapping in the RAT.
            return OptimizationKind.MOVE_ELIMINATION
        if opclass is OpClass.MOVE_IMM:
            if dyn.static.imm == 0 and cfg.zero_elimination:
                return OptimizationKind.ZERO_ELIMINATION
            if cfg.constant_folding:
                return OptimizationKind.CONSTANT_FOLDING
        if opclass is OpClass.ALU and cfg.constant_folding and not dyn.static.srcs:
            # Immediate-only ALU results are known at rename.
            return OptimizationKind.CONSTANT_FOLDING
        if opclass is OpClass.JUMP and cfg.branch_folding:
            # Unconditional direct jumps are folded in the front end.
            return OptimizationKind.BRANCH_FOLDING
        return OptimizationKind.NONE

    def optimized_count(self) -> int:
        """Total micro-ops removed from the execution stream."""
        return sum(count for kind, count in self.counts.items()
                   if kind is not OptimizationKind.NONE)
