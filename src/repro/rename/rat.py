"""Register alias table: architectural-register to producer mapping.

The timing model does not need explicit physical registers for correctness
(functional values come from the trace); what it needs is the *dependence*
structure: which in-flight micro-op produces the value of each architectural
register.  The RAT keeps that mapping and supports checkpoint-free recovery by
rebuilding from the surviving window after a flush.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, Optional, TypeVar

ProducerT = TypeVar("ProducerT")


class RegisterAliasTable(Generic[ProducerT]):
    """Maps architectural registers to their most recent in-flight producer."""

    def __init__(self, num_registers: int):
        if num_registers <= 0:
            raise ValueError("num_registers must be positive")
        self.num_registers = num_registers
        self._producer: Dict[int, Optional[ProducerT]] = {r: None for r in range(num_registers)}
        self.lookups = 0
        self.updates = 0

    def producer_of(self, register: int) -> Optional[ProducerT]:
        """The in-flight producer of ``register`` (None if the value is architectural)."""
        self.lookups += 1
        return self._producer[register]

    def set_producer(self, register: int, producer: Optional[ProducerT]) -> None:
        """Record ``producer`` as the newest writer of ``register``."""
        self.updates += 1
        self._producer[register] = producer

    def clear_producer(self, register: int, producer: ProducerT) -> None:
        """Clear the mapping if ``producer`` is still the newest writer (at retire)."""
        if self._producer[register] is producer:
            self._producer[register] = None

    def clear_all(self) -> None:
        """Reset every mapping (full pipeline flush)."""
        for register in self._producer:
            self._producer[register] = None

    def rebuild(self, producers: Iterable[ProducerT], dest_of) -> None:
        """Rebuild the table from the surviving in-flight micro-ops, oldest first.

        ``dest_of`` maps a producer to its destination architectural register
        (or None).  Used after a mid-window flush.
        """
        self.clear_all()
        for producer in producers:
            dest = dest_of(producer)
            if dest is not None:
                self._producer[dest] = producer
