"""Synthetic workload generation.

The paper evaluates 90 proprietary traces drawn from SPEC CPU 2017, Client,
Enterprise and Server suites.  This package replaces them with synthetic
workloads: small "assembly" programs composed from kernels that reproduce the
empirically observed sources of global-stable loads (runtime constants,
inlined-function arguments, tight loops over read-only data) and of non-stable
memory traffic (streaming, pointer chasing, random access, store-heavy phases).

A functional VM executes the composed program to produce the dynamic
instruction trace consumed by the timing model; the same functional values
back the golden check at retirement.
"""

from repro.workloads.trace import Trace
from repro.workloads.vm import FunctionalVM
from repro.workloads.generator import generate_trace, generate_suite
from repro.workloads.suites import (
    WorkloadSpec,
    SUITE_NAMES,
    all_workload_specs,
    workload_specs_for_suite,
    get_workload_spec,
)

__all__ = [
    "Trace",
    "FunctionalVM",
    "generate_trace",
    "generate_suite",
    "WorkloadSpec",
    "SUITE_NAMES",
    "all_workload_specs",
    "workload_specs_for_suite",
    "get_workload_spec",
]
