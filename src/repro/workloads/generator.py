"""Workload generation: compose kernels into a program, run the VM, emit a trace.

A workload is: a preamble (stack setup + kernel setup code), an outer loop
whose body concatenates every kernel's body, and an effectively unbounded
outer-loop counter.  The functional VM executes the program for the requested
instruction budget; cross-core writes to the shared region are interleaved
while the VM runs so the functional load values stay consistent with the
snoop events delivered by the timing model.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynamicInstruction, SnoopEvent
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import ARCH_REGISTER_COUNT, RBP, RSP
from repro.workloads.kernels import (
    KernelContext,
    STACK_TOP,
    create_kernel,
)
from repro.workloads.trace import Trace
from repro.workloads.vm import FunctionalVM, SparseMemory

#: Default code base address of a generated workload; SMT second threads use a
#: different base so two threads never alias in the PC-indexed predictors.
DEFAULT_BASE_PC = 0x400000

#: Register used as the outer-loop counter in every generated workload.
OUTER_COUNTER_REGISTER = 15

#: Outer-loop trip count; large enough that the loop never exits within any
#: realistic instruction budget.
_OUTER_TRIP_COUNT = 1 << 30


def build_workload_program(kernel_recipes: Sequence[Tuple[str, Dict[str, object]]],
                           num_registers: int = ARCH_REGISTER_COUNT,
                           seed: int = 0,
                           base_pc: int = DEFAULT_BASE_PC) -> Tuple[Program, KernelContext]:
    """Assemble a workload program from ``(kernel_name, params)`` recipes.

    Returns the program and the kernel context (which records, among other
    things, the shared-region addresses eligible for external writes).
    """
    if not kernel_recipes:
        raise ValueError("a workload needs at least one kernel")
    rng = random.Random(seed)
    ctx = KernelContext(num_registers=num_registers)
    builder = ProgramBuilder(base_pc=base_pc)

    # Stack setup: rbp at the top of the stack region, rsp one page below.
    builder.movi(RBP, STACK_TOP)
    builder.movi(RSP, STACK_TOP - 0x1000)
    builder.movi(OUTER_COUNTER_REGISTER, _OUTER_TRIP_COUNT)

    kernels = [create_kernel(name, ctx, rng, **dict(params))
               for name, params in kernel_recipes]
    for kernel in kernels:
        kernel.setup(builder)

    outer_top = builder.here("outer_loop")
    for kernel in kernels:
        kernel.body(builder)
    builder.addi(OUTER_COUNTER_REGISTER, OUTER_COUNTER_REGISTER, -1)
    builder.jnz(OUTER_COUNTER_REGISTER, outer_top)

    return builder.build(), ctx


def _run_with_external_writes(vm: FunctionalVM,
                              num_instructions: int,
                              shared_addresses: Sequence[int],
                              external_write_interval: int,
                              silent: bool,
                              rng: random.Random) -> Tuple[List[DynamicInstruction], List[SnoopEvent]]:
    """Run the VM, interleaving cross-core writes every ``external_write_interval`` instructions."""
    instructions: List[DynamicInstruction] = []
    snoops: List[SnoopEvent] = []
    next_write_at = external_write_interval if external_write_interval else None
    while len(instructions) < num_instructions and not vm.halted:
        if (next_write_at is not None and shared_addresses
                and vm.instruction_count >= next_write_at):
            address = rng.choice(list(shared_addresses))
            if silent:
                value = vm.memory.read(address)
            else:
                value = rng.randrange(1, 1 << 40)
            vm.apply_external_write(address, value)
            snoops.append(SnoopEvent(after_seq=vm.instruction_count, address=address))
            next_write_at += external_write_interval
        instructions.append(vm.step())
    return instructions, snoops


def generate_trace(spec, num_instructions: int = 50_000,
                   num_registers: Optional[int] = None,
                   base_pc: int = DEFAULT_BASE_PC) -> Trace:
    """Generate the dynamic trace for a :class:`~repro.workloads.suites.WorkloadSpec`."""
    if num_instructions <= 0:
        raise ValueError("num_instructions must be positive")
    registers = num_registers if num_registers is not None else spec.num_registers
    kernel_recipes = spec.kernel_recipes(num_registers=registers)
    program, ctx = build_workload_program(
        kernel_recipes, num_registers=registers, seed=spec.seed, base_pc=base_pc,
    )
    memory = SparseMemory(initial=ctx.initial_memory)
    vm = FunctionalVM(program, num_registers=registers, memory=memory)
    rng = random.Random(spec.seed ^ 0xBEEF)
    instructions, snoops = _run_with_external_writes(
        vm, num_instructions, ctx.shared_addresses,
        spec.external_write_interval, spec.external_writes_silent, rng,
    )
    metadata = {
        "seed": spec.seed,
        "kernels": [name for name, _ in kernel_recipes],
        "external_write_interval": spec.external_write_interval,
        "shared_addresses": list(ctx.shared_addresses),
    }
    return Trace(
        name=spec.name, category=spec.suite, instructions=instructions,
        snoops=snoops, program=program, num_registers=registers, metadata=metadata,
    )


def trace_signature(trace: Trace) -> str:
    """SHA-256 digest of a trace's complete dynamic content.

    Two traces are bit-identical exactly when their signatures match: the
    digest covers every dynamic instruction (sequence number, PC, effective
    address, load/store values, branch outcome, next PC, thread), every snoop
    event, and the trace-level parameters.  The differential determinism tests
    and the committed golden fixtures use this to pin trace generation without
    storing traces.
    """
    hasher = hashlib.sha256()
    hasher.update(repr((trace.name, trace.category, trace.num_registers,
                        len(trace.instructions))).encode("utf-8"))
    for dyn in trace.instructions:
        hasher.update(repr((dyn.seq, dyn.pc, dyn.opclass.value, dyn.address,
                            dyn.load_value, dyn.store_value, dyn.branch_taken,
                            dyn.next_pc, dyn.thread_id)).encode("utf-8"))
    for snoop in trace.snoops:
        hasher.update(repr((snoop.after_seq, snoop.address,
                            snoop.writer_core)).encode("utf-8"))
    return hasher.hexdigest()


def generate_suite(suite: str, num_instructions: int = 50_000,
                   num_registers: Optional[int] = None,
                   limit: Optional[int] = None) -> List[Trace]:
    """Generate traces for every workload in ``suite`` (optionally the first ``limit``)."""
    from repro.workloads.suites import workload_specs_for_suite

    specs = workload_specs_for_suite(suite)
    if limit is not None:
        specs = specs[:limit]
    return [generate_trace(spec, num_instructions=num_instructions,
                           num_registers=num_registers) for spec in specs]
