"""Workload kernels: reusable program fragments with known load-stability behaviour.

Each kernel emits a *setup* section (run once, before the workload's outer
loop) and a *body* section (run every outer-loop iteration).  Kernels are the
knobs that let suites reproduce the paper's workload characterisation (Fig. 3):

* ``RuntimeConstantKernel``   - PC-relative global-stable loads of runtime
  constants (the ``541.leela_r`` ``s_rng`` pattern) plus a dependent
  pointer-relative load whose source register is rewritten every occurrence
  (a global-stable load Constable cannot eliminate, Fig. 17).
* ``InlinedArgsKernel``       - stack-relative global-stable loads of inlined
  function arguments (the ``557.xz_r`` pattern), short reuse distance.
* ``TightLoopReadOnlyKernel`` - register-relative global-stable loads off a
  pinned base register, short reuse distance, mixed with an indexed
  (non-stable) load from the same table.
* ``GlobalCounterKernel``     - PC-relative loads with long reuse distance;
  optionally one global that is periodically stored to (losing stability).
* ``StreamingKernel``         - monotonically advancing loads/stores
  (non-stable, high load-port and cache pressure).
* ``PointerChaseKernel``      - serially dependent loads (non-stable).
* ``RandomAccessKernel``      - LCG-indexed loads (non-stable, cache misses).
* ``StoreHeavyKernel``        - store traffic; optionally silent or value-changing
  stores to designated "victim" globals.
* ``BranchyKernel``           - data-dependent branches causing mispredictions.
* ``SharedDataKernel``        - loads from a region also written by another core
  (generates snoop traffic through the workload generator).
* ``StackChurnKernel``        - call-like stack writes followed by reloads
  (non-stable stack loads).
* ``MatrixKernel``            - FP-SPEC-like nested array traversal with stable
  bound/argument loads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Type  # noqa: F401 (Optional used by subclasses)

from repro.isa.program import ProgramBuilder
from repro.isa.registers import RBP, RSP

# Fixed memory-region bases used by the workload generator.
GLOBALS_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
READONLY_BASE = 0x3000_0000
STREAM_BASE = 0x4000_0000
SHARED_BASE = 0x5000_0000
STACK_TOP = 0x7FFF_F000

_WORD = 8


class KernelContext:
    """Shared resource allocator handed to every kernel of one workload.

    Pinned registers are written exactly once (in kernel setup code) and then
    only read, so loads whose address sources are pinned registers can stay
    eliminable for the whole trace.  Scratch registers are shared freely.
    """

    def __init__(self, num_registers: int = 16):
        self.num_registers = num_registers
        # r15 is the outer-loop counter, rsp/rbp are the stack registers.
        reserved = {RSP, RBP, 15}
        pinned_pool = [8, 9, 10, 11, 12, 13, 14] + list(range(16, num_registers))
        self._pinned_free = [r for r in pinned_pool if r not in reserved]
        self.scratch = [r for r in range(num_registers)
                        if r not in reserved and r not in self._pinned_free]
        self._globals_next = GLOBALS_BASE
        self._heap_next = HEAP_BASE
        self._readonly_next = READONLY_BASE
        self._stream_next = STREAM_BASE
        self._shared_next = SHARED_BASE
        self._stack_next_disp = -0x10
        #: Shared-region addresses that the generator should target with
        #: external (cross-core) writes.
        self.shared_addresses: List[int] = []
        #: Memory contents installed before execution starts (e.g. linked-list
        #: rings), so that large data structures do not cost setup instructions.
        self.initial_memory: Dict[int, int] = {}

    # ------------------------------------------------------------ register pool

    def alloc_pinned(self) -> Optional[int]:
        """Allocate a register that will be written once and never reused."""
        if self._pinned_free:
            return self._pinned_free.pop(0)
        return None

    # ------------------------------------------------------------- memory pools

    def alloc_globals(self, words: int) -> int:
        """Reserve ``words`` 64-bit words in the global-variable region."""
        address = self._globals_next
        self._globals_next += words * _WORD
        return address

    def alloc_heap(self, words: int) -> int:
        """Reserve ``words`` 64-bit words in the heap region."""
        address = self._heap_next
        self._heap_next += words * _WORD
        return address

    def alloc_readonly(self, words: int) -> int:
        """Reserve ``words`` 64-bit words in the read-only data region."""
        address = self._readonly_next
        self._readonly_next += words * _WORD
        return address

    def alloc_stream(self, words: int) -> int:
        """Reserve ``words`` 64-bit words in the streaming-buffer region."""
        address = self._stream_next
        self._stream_next += words * _WORD
        return address

    def alloc_shared(self, words: int) -> int:
        """Reserve ``words`` 64-bit words in the shared (cross-thread) region."""
        address = self._shared_next
        self._shared_next += words * _WORD
        return address

    def alloc_stack_slot(self) -> int:
        """Reserve one stack slot; returns its displacement from ``rbp``."""
        disp = self._stack_next_disp
        self._stack_next_disp -= _WORD
        return disp


class Kernel:
    """Base class for workload kernels."""

    name = "kernel"

    def __init__(self, ctx: KernelContext, rng: random.Random, **params):
        self.ctx = ctx
        self.rng = rng
        self.params = params

    def setup(self, b: ProgramBuilder) -> None:
        """Emit one-time initialisation code (before the workload outer loop)."""

    def body(self, b: ProgramBuilder) -> None:
        """Emit per-outer-iteration code."""
        raise NotImplementedError


class RuntimeConstantKernel(Kernel):
    """PC-relative load of a pointer initialised once (a runtime constant)."""

    name = "runtime_constant"

    def setup(self, b: ProgramBuilder) -> None:
        """Initialise the runtime-constant pointer slot once."""
        ctx = self.ctx
        self.global_ptr_addr = ctx.alloc_globals(1)
        self.object_addr = ctx.alloc_heap(8)
        scratch = ctx.scratch[0]
        # s_rng = new Random;  (initialise the global pointer exactly once)
        b.movi(scratch, self.object_addr)
        b.store_global(scratch, self.global_ptr_addr)

    def body(self, b: ProgramBuilder) -> None:
        """Emit the PC-relative stable load and a short use of its value."""
        ctx = self.ctx
        ptr, tmp = ctx.scratch[0], ctx.scratch[1]
        skip = b.label(f"{self.name}_skip_{self.global_ptr_addr:x}")
        # rax = [s_rng]  -- PC-relative, global-stable.
        b.load_global(ptr, self.global_ptr_addr)
        # if (s_rng != 0) skip allocation -- always taken, well predicted.
        b.jnz(ptr, skip)
        b.movi(ptr, self.object_addr)
        b.place(skip)
        # Dependent load off the freshly written pointer register: global-stable
        # by value, but its source register is rewritten every occurrence, so
        # Constable must not eliminate it (feeds the Fig. 17 "source register
        # written" breakdown).
        b.load(tmp, base=ptr, disp=0x10)
        b.alu(tmp, (tmp,), op="add", imm=3)


class InlinedArgsKernel(Kernel):
    """Stack-relative loads of function arguments that never change (xz pattern).

    ``args_in_registers=True`` emulates an APX-style compilation where the
    arguments live in (pinned) registers and the stack loads disappear.
    """

    name = "inlined_args"

    def setup(self, b: ProgramBuilder) -> None:
        """Spill the never-changing arguments (to stack or registers)."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 12))
        self.args_in_registers = bool(self.params.get("args_in_registers", False))
        self.arg_slots = [ctx.alloc_stack_slot() for _ in range(3)]
        self.out_base = ctx.alloc_heap(4096)
        self.out_reg = ctx.alloc_pinned()
        scratch = ctx.scratch[0]
        # The third "argument" is the loop-continuation mask: all-ones, so that
        # ``counter & mask`` keeps the trip count while making the loop branch
        # depend on the stable argument load.
        arg_values = [self.rng.randrange(1, 1 << 20) for _ in range(2)] + [(1 << 32) - 1]
        if self.args_in_registers:
            self.arg_regs = []
            for value in arg_values:
                reg = ctx.alloc_pinned()
                if reg is None:
                    # Out of pinned registers: fall back to the stack.
                    self.args_in_registers = False
                    break
                b.movi(reg, value)
                self.arg_regs.append(reg)
        if not self.args_in_registers:
            for disp, value in zip(self.arg_slots, arg_values):
                b.movi(scratch, value)
                b.store(scratch, base=RBP, disp=disp)
        if self.out_reg is not None:
            b.movi(self.out_reg, self.out_base)

    def body(self, b: ProgramBuilder) -> None:
        """Reload the arguments each iteration and consume them."""
        ctx = self.ctx
        counter, a0, a1, acc = ctx.scratch[0], ctx.scratch[1], ctx.scratch[2], ctx.scratch[3]
        idx = ctx.scratch[4]
        top = b.label(f"{self.name}_top_{self.arg_slots[0] & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.movi(idx, 0)
        b.place(top)
        if self.args_in_registers:
            b.movr(a0, self.arg_regs[0])
            b.movr(a1, self.arg_regs[1])
        else:
            # rc->cache / out_pos style argument reloads: stack-relative, stable.
            b.load(a0, base=RBP, disp=self.arg_slots[0])
            b.load(a1, base=RBP, disp=self.arg_slots[1])
        b.alu(acc, (a0, a1), op="add")
        if self.out_reg is not None:
            b.store(acc, base=self.out_reg, index=idx, scale=8, disp=0)
        b.addi(idx, idx, 1)
        b.alu(idx, (idx,), op="and", imm=0x1FF)
        b.addi(counter, counter, -1)
        # Loop-exit test through a reloaded argument, like xz's
        # ``cmp QWORD PTR [rsp+0x8],rdi; jne``: the branch resolution waits on a
        # stable stack load.
        if self.args_in_registers:
            b.alu(a0, (counter, self.arg_regs[2]), op="and")
        else:
            b.load(a0, base=RBP, disp=self.arg_slots[2])
            b.alu(a0, (counter, a0), op="and")
        b.jnz(a0, top)


class TightLoopReadOnlyKernel(Kernel):
    """Register-relative loads off a pinned base into a read-only table."""

    name = "tight_loop_readonly"

    def setup(self, b: ProgramBuilder) -> None:
        """Fill the read-only table and pin its base register."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 16))
        self.table_words = int(self.params.get("table_words", 64))
        self.fixed_loads = int(self.params.get("fixed_loads", 2))
        self.table_base = ctx.alloc_readonly(self.table_words)
        self.base_reg = ctx.alloc_pinned()
        if self.base_reg is None:
            self.base_reg = ctx.scratch[-1]
        b.movi(self.base_reg, self.table_base)

    def body(self, b: ProgramBuilder) -> None:
        """Emit register-relative loads off the pinned base."""
        ctx = self.ctx
        counter, idx, v0, v1 = ctx.scratch[0], ctx.scratch[4], ctx.scratch[1], ctx.scratch[2]
        top = b.label(f"{self.name}_top_{self.table_base & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        # Fixed-offset loads off a pinned register: register-relative, stable,
        # short inter-occurrence distance.
        for slot in range(self.fixed_loads):
            b.load(v0, base=self.base_reg, disp=slot * 8)
        # Indexed load from the same table: same PC, changing address (not stable).
        b.alu(idx, (counter,), op="and", imm=(self.table_words - 1))
        b.load(v1, base=self.base_reg, index=idx, scale=8, disp=0)
        b.alu(v0, (v0, v1), op="xor")
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class GlobalCounterKernel(Kernel):
    """PC-relative loads of global variables with long reuse distance."""

    name = "global_counters"

    def setup(self, b: ProgramBuilder) -> None:
        """Initialise the counter globals."""
        ctx = self.ctx
        self.num_globals = int(self.params.get("num_globals", 4))
        self.store_period = int(self.params.get("store_period", 0))
        self.globals = [ctx.alloc_globals(1) for _ in range(self.num_globals)]
        self.mutable_global = ctx.alloc_globals(1)
        scratch = ctx.scratch[0]
        for address in self.globals + [self.mutable_global]:
            b.movi(scratch, self.rng.randrange(1, 1 << 30))
            b.store_global(scratch, address)
        if self.store_period:
            self.phase_reg = ctx.alloc_pinned()
            if self.phase_reg is not None:
                b.movi(self.phase_reg, self.store_period)

    def body(self, b: ProgramBuilder) -> None:
        """Load, update and store the globals with long reuse distance."""
        ctx = self.ctx
        acc, tmp = ctx.scratch[1], ctx.scratch[2]
        b.movi(acc, 0)
        for address in self.globals:
            # Read-only global configuration values: PC-relative, stable,
            # long inter-occurrence distance (once per outer iteration).
            b.load(tmp, base=None, disp=address)
            b.alu(acc, (acc, tmp), op="add")
        if self.store_period:
            # A global that is periodically rewritten: its loads lose stability.
            b.load(tmp, base=None, disp=self.mutable_global)
            b.addi(tmp, tmp, 1)
            b.store_global(tmp, self.mutable_global)
        else:
            b.load(tmp, base=None, disp=self.mutable_global)
            b.alu(acc, (acc, tmp), op="add")


class StreamingKernel(Kernel):
    """Monotonically advancing loads and stores (non-stable, port pressure)."""

    name = "streaming"

    def setup(self, b: ProgramBuilder) -> None:
        """Initialise the streaming buffer cursor."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 16))
        self.region_words = int(self.params.get("region_words", 1 << 16))
        self.in_base = ctx.alloc_stream(self.region_words)
        self.out_base = ctx.alloc_stream(self.region_words)
        self.cursor_reg = ctx.alloc_pinned()
        if self.cursor_reg is None:
            self.cursor_reg = ctx.scratch[-1]
        b.movi(self.cursor_reg, 0)

    def body(self, b: ProgramBuilder) -> None:
        """Advance through the buffer with fresh loads and stores."""
        ctx = self.ctx
        counter, v0, v1, cur = ctx.scratch[0], ctx.scratch[1], ctx.scratch[2], ctx.scratch[3]
        top = b.label(f"{self.name}_top_{self.in_base & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        b.movr(cur, self.cursor_reg)
        b.alu(cur, (cur,), op="and", imm=(self.region_words - 1))
        b.load(v0, base=cur, scale=1, disp=self.in_base)
        b.load(v1, base=cur, scale=1, disp=self.in_base + 8)
        b.alu(v0, (v0, v1), op="add")
        b.store(v0, base=cur, scale=1, disp=self.out_base)
        b.addi(self.cursor_reg, self.cursor_reg, 64)
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class PointerChaseKernel(Kernel):
    """Serially dependent loads walking a linked ring (non-stable)."""

    name = "pointer_chase"

    def setup(self, b: ProgramBuilder) -> None:
        """Build the linked ring in the heap region."""
        ctx = self.ctx
        self.ring_nodes = int(self.params.get("ring_nodes", 256))
        self.inner_iterations = int(self.params.get("inner_iterations", 8))
        self.ring_base = ctx.alloc_heap(self.ring_nodes * 2)
        self.head_global = ctx.alloc_globals(1)
        # The ring lives in the initial memory image (building it with stores
        # would dominate short traces).  node[i].next = node[order[i+1]].
        order = list(range(self.ring_nodes))
        self.rng.shuffle(order)
        for position, node in enumerate(order):
            next_node = order[(position + 1) % self.ring_nodes]
            ctx.initial_memory[self.ring_base + node * 16] = self.ring_base + next_node * 16
        # The data-structure base behaves like a runtime constant held in a
        # global (paper Fig. 5a): a PC-relative global-stable load gates every walk.
        ctx.initial_memory[self.head_global] = self.ring_base
        self.offset_reg = ctx.alloc_pinned()
        if self.offset_reg is None:
            self.offset_reg = ctx.scratch[-1]
        b.movi(self.offset_reg, 0)

    def body(self, b: ProgramBuilder) -> None:
        """Walk the ring with serially dependent loads."""
        ctx = self.ctx
        counter, cursor, base = ctx.scratch[0], ctx.scratch[5], ctx.scratch[1]
        top = b.label(f"{self.name}_top_{self.ring_base & 0xffff:x}")
        # base = *structure_ptr  -- global-stable, and the whole walk depends on it.
        b.load(base, base=None, disp=self.head_global)
        # Start each outer iteration at a fresh node so large rings really miss.
        b.alu(self.offset_reg, (self.offset_reg,), op="add", imm=7 * 16)
        b.alu(self.offset_reg, (self.offset_reg,), op="and",
              imm=(self.ring_nodes * 16 - 1) & ~0xF)
        b.alu(cursor, (base, self.offset_reg), op="add")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        # cursor = [cursor]: the source register changes every occurrence.
        b.load(cursor, base=cursor, disp=0)
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class RandomAccessKernel(Kernel):
    """LCG-indexed loads over a large region (non-stable, cache-miss heavy)."""

    name = "random_access"

    def setup(self, b: ProgramBuilder) -> None:
        """Seed the LCG state and reserve the target region."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 8))
        #: Footprint of the randomly accessed region, in bytes.
        self.region_bytes = int(self.params.get("region_words", 1 << 14)) * 8
        self.region_base = ctx.alloc_heap(self.region_bytes // 8)
        # The table base pointer is a runtime constant held in a global: the
        # address of every (cache-missing) random access depends on a
        # PC-relative global-stable load, like ``arr = *table_ptr; arr[i]``.
        self.table_ptr_global = ctx.alloc_globals(1)
        ctx.initial_memory[self.table_ptr_global] = self.region_base
        self.seed_reg = ctx.alloc_pinned()
        if self.seed_reg is None:
            self.seed_reg = ctx.scratch[-1]
        b.movi(self.seed_reg, self.rng.randrange(1, 1 << 40))

    def body(self, b: ProgramBuilder) -> None:
        """Emit LCG-indexed loads scattered over the region."""
        ctx = self.ctx
        counter, table, idx, val = (ctx.scratch[0], ctx.scratch[1],
                                    ctx.scratch[2], ctx.scratch[3])
        top = b.label(f"{self.name}_top_{self.region_base & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        # table = *table_ptr  -- global-stable load gating the random access.
        b.load(table, base=None, disp=self.table_ptr_global)
        # The LCG state lives in a persistent register, so addresses keep
        # changing across outer iterations and the footprint is really touched.
        b.alu(self.seed_reg, (self.seed_reg,), op="lcg")
        b.alu(idx, (self.seed_reg,), op="shr", imm=13)
        b.alu(idx, (idx,), op="and", imm=(self.region_bytes - 1) & ~0x7)
        b.load(val, base=table, index=idx, scale=1, disp=0)
        b.alu(val, (val,), op="add", imm=1)
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class StoreHeavyKernel(Kernel):
    """Store traffic; optionally silent or value-changing stores to victim globals."""

    name = "store_heavy"

    def setup(self, b: ProgramBuilder) -> None:
        """Reserve the victim globals and store buffers."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 8))
        self.silent_stores = bool(self.params.get("silent_stores", False))
        self.victim_global = ctx.alloc_globals(1)
        self.buffer_base = ctx.alloc_heap(1024)
        self.victim_value = self.rng.randrange(1, 1 << 20)
        scratch = ctx.scratch[0]
        b.movi(scratch, self.victim_value)
        b.store_global(scratch, self.victim_global)

    def body(self, b: ProgramBuilder) -> None:
        """Emit the store traffic (optionally silent) at the victim globals."""
        ctx = self.ctx
        counter, val, idx, vict = (ctx.scratch[0], ctx.scratch[1],
                                   ctx.scratch[2], ctx.scratch[3])
        top = b.label(f"{self.name}_top_{self.victim_global & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.movi(idx, 0)
        b.place(top)
        b.alu(val, (counter, idx), op="add", imm=7)
        b.store(val, base=idx, scale=8, disp=self.buffer_base)
        b.addi(idx, idx, 1)
        b.alu(idx, (idx,), op="and", imm=0x7F)
        b.addi(counter, counter, -1)
        b.jnz(counter, top)
        # One load of the victim global per outer iteration, plus a store that
        # either rewrites the same value (silent store) or a changing value.
        b.load(vict, base=None, disp=self.victim_global)
        if self.silent_stores:
            b.store(vict, base=None, disp=self.victim_global)
        else:
            b.addi(vict, vict, 1)
            b.store(vict, base=None, disp=self.victim_global)


class BranchyKernel(Kernel):
    """Data-dependent branches that mispredict, plus a couple of stable stack loads."""

    name = "branchy"

    def setup(self, b: ProgramBuilder) -> None:
        """Initialise branch-feeding data and the stable stack slots."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 12))
        self.arg_slot = ctx.alloc_stack_slot()
        self.seed_reg = ctx.alloc_pinned()
        if self.seed_reg is None:
            self.seed_reg = ctx.scratch[-1]
        scratch = ctx.scratch[0]
        b.movi(scratch, self.rng.randrange(1, 1 << 16))
        b.store(scratch, base=RBP, disp=self.arg_slot)
        b.movi(self.seed_reg, self.rng.randrange(1, 1 << 40))

    def body(self, b: ProgramBuilder) -> None:
        """Emit data-dependent branches plus the stable stack reloads."""
        ctx = self.ctx
        counter, seed, bit, arg, acc = (ctx.scratch[0], ctx.scratch[1], ctx.scratch[2],
                                        ctx.scratch[3], ctx.scratch[4])
        top = b.label(f"{self.name}_top_{self.arg_slot & 0xffff:x}")
        skip = b.label(f"{self.name}_skip_{self.arg_slot & 0xffff:x}")
        del seed  # the LCG state lives in the persistent seed register
        b.movi(counter, self.inner_iterations)
        b.place(top)
        b.load(arg, base=RBP, disp=self.arg_slot)
        b.alu(self.seed_reg, (self.seed_reg,), op="lcg")
        b.alu(bit, (self.seed_reg, arg), op="xor")
        b.alu(bit, (bit,), op="shr", imm=37)
        b.alu(bit, (bit,), op="and", imm=1)
        # The data-dependent branch resolves only after the (stable) argument
        # load completes, so eliminating the load shortens misprediction recovery.
        b.jz(bit, skip)
        b.alu(acc, (arg,), op="add", imm=5)
        b.place(skip)
        b.alu(acc, (arg, bit), op="xor")
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class SharedDataKernel(Kernel):
    """Loads from a region that another core writes to (generates snoop traffic)."""

    name = "shared_data"

    def setup(self, b: ProgramBuilder) -> None:
        """Reserve the cross-thread shared region."""
        ctx = self.ctx
        self.num_shared = int(self.params.get("num_shared", 4))
        self.addresses = [ctx.alloc_shared(1) for _ in range(self.num_shared)]
        ctx.shared_addresses.extend(self.addresses)
        scratch = ctx.scratch[0]
        for address in self.addresses:
            b.movi(scratch, self.rng.randrange(1, 1 << 20))
            b.store_global(scratch, address)

    def body(self, b: ProgramBuilder) -> None:
        """Load from the shared region the external writer mutates."""
        ctx = self.ctx
        acc, tmp = ctx.scratch[1], ctx.scratch[2]
        b.movi(acc, 0)
        for address in self.addresses:
            b.load(tmp, base=None, disp=address)
            b.alu(acc, (acc, tmp), op="add")


class StackChurnKernel(Kernel):
    """Call-like stack writes followed by reloads: non-stable stack loads."""

    name = "stack_churn"

    def setup(self, b: ProgramBuilder) -> None:
        """Reserve the churned stack slots."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 6))
        self.slots = [ctx.alloc_stack_slot() for _ in range(2)]

    def body(self, b: ProgramBuilder) -> None:
        """Emit call-like stack writes followed by reloads."""
        ctx = self.ctx
        counter, a, c0, c1 = ctx.scratch[0], ctx.scratch[1], ctx.scratch[2], ctx.scratch[3]
        top = b.label(f"{self.name}_top_{self.slots[0] & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        # "Call" with fresh argument values every iteration.
        b.alu(a, (counter,), op="add", imm=11)
        b.store(a, base=RSP, disp=self.slots[0])
        b.alu(a, (counter,), op="xor", imm=3)
        b.store(a, base=RSP, disp=self.slots[1])
        # "Callee" reloads them: stack-relative but not stable.
        b.load(c0, base=RSP, disp=self.slots[0])
        b.load(c1, base=RSP, disp=self.slots[1])
        b.alu(c0, (c0, c1), op="add")
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


class ChainedDerefKernel(Kernel):
    """Serial dereference chains through runtime-constant pointers.

    Object-oriented and interpreter-style code dereferences chains like
    ``this->config->table->entry`` where every pointer is initialised once and
    never changes.  All levels are global-stable; only the first level (whose
    address sources never change: a PC-relative load) is eliminable by
    Constable, while a value predictor can speculate the whole chain - the
    pattern behind the paper's Client/Enterprise results and the
    EVES-vs-Constable per-workload differences (Fig. 12).
    """

    name = "chained_deref"

    def setup(self, b: ProgramBuilder) -> None:
        """Build the pointer chain rooted at a runtime constant."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 10))
        self.depth = max(2, int(self.params.get("depth", 3)))
        self.root_global = ctx.alloc_globals(1)
        # Build the object graph in the initial memory image:
        # root -> node0 -> node1 -> ... each node holds the next pointer at +8
        # and a payload at +16.
        nodes = [ctx.alloc_heap(4) for _ in range(self.depth)]
        ctx.initial_memory[self.root_global] = nodes[0]
        for level, node in enumerate(nodes):
            if level + 1 < self.depth:
                ctx.initial_memory[node + 8] = nodes[level + 1]
            ctx.initial_memory[node + 16] = self.rng.randrange(1, 1 << 30)
        self.bound_slot = ctx.alloc_stack_slot()
        scratch = ctx.scratch[0]
        b.movi(scratch, (1 << 32) - 1)
        b.store(scratch, base=RBP, disp=self.bound_slot)

    def body(self, b: ProgramBuilder) -> None:
        """Dereference the chain serially from the stable root."""
        ctx = self.ctx
        counter, ptr, val, mask = (ctx.scratch[0], ctx.scratch[1],
                                   ctx.scratch[2], ctx.scratch[3])
        top = b.label(f"{self.name}_top_{self.root_global & 0xffff:x}")
        b.movi(counter, self.inner_iterations)
        b.place(top)
        # ptr = *root (PC-relative, global-stable, eliminable).
        b.load(ptr, base=None, disp=self.root_global)
        # Walk the chain: every level is global-stable but its source register
        # was just written, so Constable must leave it to the value predictor.
        for _ in range(self.depth - 1):
            b.load(ptr, base=ptr, disp=8)
        b.load(val, base=ptr, disp=16)
        b.alu(val, (val, counter), op="add")
        # Loop test through a stable stack load (the xz pattern).
        b.load(mask, base=RBP, disp=self.bound_slot)
        b.addi(counter, counter, -1)
        b.alu(mask, (counter, mask), op="and")
        b.jnz(mask, top)


class MatrixKernel(Kernel):
    """FP-SPEC-like strided array traversal with stable bound/argument loads."""

    name = "matrix"

    def setup(self, b: ProgramBuilder) -> None:
        """Initialise the array region and the bound/argument slots."""
        ctx = self.ctx
        self.inner_iterations = int(self.params.get("inner_iterations", 16))
        self.rows = int(self.params.get("rows", 64))
        self.matrix_base = ctx.alloc_heap(self.rows * 8)
        self.bound_slot = ctx.alloc_stack_slot()
        self.base_reg = ctx.alloc_pinned()
        if self.base_reg is None:
            self.base_reg = ctx.scratch[-1]
        scratch = ctx.scratch[0]
        b.movi(scratch, self.rows)
        b.store(scratch, base=RBP, disp=self.bound_slot)
        b.movi(self.base_reg, self.matrix_base)

    def body(self, b: ProgramBuilder) -> None:
        """Emit the strided traversal with its stable bound reloads."""
        ctx = self.ctx
        counter, bound, idx, v0, acc = (ctx.scratch[0], ctx.scratch[1], ctx.scratch[2],
                                        ctx.scratch[3], ctx.scratch[4])
        top = b.label(f"{self.name}_top_{self.matrix_base & 0xffff:x}")
        # Loop bound reloaded from the stack every outer iteration: stable.
        b.load(bound, base=RBP, disp=self.bound_slot)
        b.movi(counter, self.inner_iterations)
        b.movi(idx, 0)
        b.movi(acc, 0)
        b.place(top)
        b.load(v0, base=self.base_reg, index=idx, scale=8, disp=0)
        b.mul(v0, (v0, bound))
        b.alu(acc, (acc, v0), op="add")
        b.addi(idx, idx, 1)
        b.alu(idx, (idx,), op="and", imm=(self.rows - 1))
        b.addi(counter, counter, -1)
        b.jnz(counter, top)


#: Registry of kernel classes, keyed by their ``name`` attribute.
KERNEL_REGISTRY: Dict[str, Type[Kernel]] = {
    cls.name: cls
    for cls in (
        RuntimeConstantKernel, InlinedArgsKernel, TightLoopReadOnlyKernel,
        GlobalCounterKernel, StreamingKernel, PointerChaseKernel,
        RandomAccessKernel, StoreHeavyKernel, BranchyKernel,
        SharedDataKernel, StackChurnKernel, ChainedDerefKernel, MatrixKernel,
    )
}


def create_kernel(name: str, ctx: KernelContext, rng: random.Random, **params) -> Kernel:
    """Instantiate a kernel by registry name."""
    if name not in KERNEL_REGISTRY:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(KERNEL_REGISTRY)}")
    return KERNEL_REGISTRY[name](ctx, rng, **params)
