"""Workload suite definitions: 90 synthetic workloads across the paper's five suites.

Table 4 of the paper lists 90 traces: Client (22), Enterprise (14), FSPEC17 (29),
ISPEC17 (11) and Server (14).  Each suite here is a family of kernel mixes whose
global-stable-load fraction, addressing-mode breakdown and reuse-distance
distribution are tuned to follow the paper's characterisation (Fig. 3): Client,
Enterprise and Server are rich in stable loads; the SPEC-like suites less so.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.isa.registers import ARCH_REGISTER_COUNT

KernelRecipe = Tuple[str, Dict[str, object]]

#: Suite names in the paper's presentation order.
SUITE_NAMES: Tuple[str, ...] = ("Client", "Enterprise", "FSPEC17", "ISPEC17", "Server")

#: Number of traces per suite (paper Table 4).
SUITE_TRACE_COUNTS: Dict[str, int] = {
    "Client": 22,
    "Enterprise": 14,
    "FSPEC17": 29,
    "ISPEC17": 11,
    "Server": 14,
}


@dataclass
class WorkloadSpec:
    """A named workload: a kernel mix plus generation parameters."""

    name: str
    suite: str
    kernels: List[KernelRecipe]
    seed: int = 0
    external_write_interval: int = 0
    external_writes_silent: bool = False
    num_registers: int = ARCH_REGISTER_COUNT
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def kernel_recipes(self, num_registers: int) -> List[KernelRecipe]:
        """Kernel recipes adjusted for the architectural register budget.

        With an APX-sized register file (>= 24 registers) the inlined-argument
        kernel keeps its arguments in registers instead of the stack, mirroring
        the compiler behaviour studied in the paper's appendix B.
        """
        recipes: List[KernelRecipe] = []
        for name, params in self.kernels:
            adjusted = dict(params)
            if name == "inlined_args" and num_registers >= 24:
                adjusted["args_in_registers"] = True
            recipes.append((name, adjusted))
        return recipes

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dictionary holding the full spec."""
        return {
            "name": self.name,
            "suite": self.suite,
            "kernels": [[kernel, dict(params)] for kernel, params in self.kernels],
            "seed": self.seed,
            "external_write_interval": self.external_write_interval,
            "external_writes_silent": self.external_writes_silent,
            "num_registers": self.num_registers,
            "description": self.description,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            suite=data["suite"],
            kernels=[(kernel, dict(params)) for kernel, params in data["kernels"]],
            seed=int(data.get("seed", 0)),
            external_write_interval=int(data.get("external_write_interval", 0)),
            external_writes_silent=bool(data.get("external_writes_silent", False)),
            num_registers=int(data.get("num_registers", ARCH_REGISTER_COUNT)),
            description=data.get("description", ""),
            metadata=dict(data.get("metadata", {})),
        )


# --------------------------------------------------------------------------- #
# Suite recipe templates.  Each template is a list of (kernel, params) entries;
# per-workload variation comes from the seed-driven parameter jitter below.
# --------------------------------------------------------------------------- #

_CLIENT_TEMPLATES: Sequence[List[KernelRecipe]] = (
    [("runtime_constant", {}), ("chained_deref", {"inner_iterations": 10, "depth": 3}),
     ("inlined_args", {"inner_iterations": 8}),
     ("global_counters", {"num_globals": 3}), ("tight_loop_readonly", {"inner_iterations": 8}),
     ("branchy", {"inner_iterations": 6}), ("streaming", {"inner_iterations": 10, "region_words": 1 << 16}),
     ("random_access", {"inner_iterations": 6, "region_words": 1 << 15}), ("stack_churn", {"inner_iterations": 5})],
    [("runtime_constant", {}), ("tight_loop_readonly", {"inner_iterations": 10}),
     ("chained_deref", {"inner_iterations": 12, "depth": 4}),
     ("inlined_args", {"inner_iterations": 7}), ("streaming", {"inner_iterations": 12, "region_words": 1 << 17}),
     ("pointer_chase", {"inner_iterations": 6, "ring_nodes": 512}), ("global_counters", {"num_globals": 2}),
     ("stack_churn", {"inner_iterations": 6})],
    [("inlined_args", {"inner_iterations": 9}), ("global_counters", {"num_globals": 4}),
     ("chained_deref", {"inner_iterations": 9, "depth": 3}),
     ("branchy", {"inner_iterations": 6}), ("tight_loop_readonly", {"inner_iterations": 7}),
     ("random_access", {"inner_iterations": 6, "region_words": 1 << 15}), ("streaming", {"inner_iterations": 8, "region_words": 1 << 16}),
     ("store_heavy", {"inner_iterations": 6})],
    [("runtime_constant", {}), ("inlined_args", {"inner_iterations": 8}),
     ("chained_deref", {"inner_iterations": 11, "depth": 3}),
     ("tight_loop_readonly", {"inner_iterations": 9}), ("random_access", {"inner_iterations": 6, "region_words": 1 << 15}),
     ("streaming", {"inner_iterations": 9, "region_words": 1 << 16}), ("stack_churn", {"inner_iterations": 5})],
)

_ENTERPRISE_TEMPLATES: Sequence[List[KernelRecipe]] = (
    [("inlined_args", {"inner_iterations": 9}), ("shared_data", {"num_shared": 4}),
     ("chained_deref", {"inner_iterations": 10, "depth": 4}),
     ("global_counters", {"num_globals": 4}), ("tight_loop_readonly", {"inner_iterations": 8}),
     ("store_heavy", {"inner_iterations": 7}), ("random_access", {"inner_iterations": 6, "region_words": 1 << 15}),
     ("pointer_chase", {"inner_iterations": 6, "ring_nodes": 512})],
    [("runtime_constant", {}), ("shared_data", {"num_shared": 5}),
     ("chained_deref", {"inner_iterations": 12, "depth": 3}),
     ("inlined_args", {"inner_iterations": 8}), ("branchy", {"inner_iterations": 6}),
     ("tight_loop_readonly", {"inner_iterations": 9}), ("streaming", {"inner_iterations": 10, "region_words": 1 << 16}),
     ("stack_churn", {"inner_iterations": 6})],
    [("global_counters", {"num_globals": 5}), ("tight_loop_readonly", {"inner_iterations": 9}),
     ("chained_deref", {"inner_iterations": 10, "depth": 4}),
     ("store_heavy", {"inner_iterations": 7, "silent_stores": True}),
     ("pointer_chase", {"inner_iterations": 6, "ring_nodes": 512}), ("inlined_args", {"inner_iterations": 8}),
     ("random_access", {"inner_iterations": 6, "region_words": 1 << 15})],
)

_FSPEC_TEMPLATES: Sequence[List[KernelRecipe]] = (
    [("matrix", {"inner_iterations": 18, "rows": 4096}), ("streaming", {"inner_iterations": 14, "region_words": 1 << 17}),
     ("inlined_args", {"inner_iterations": 6}), ("tight_loop_readonly",
                                                 {"inner_iterations": 7, "fixed_loads": 2})],
    [("matrix", {"inner_iterations": 20, "rows": 8192}), ("tight_loop_readonly",
                                            {"inner_iterations": 6, "fixed_loads": 1}),
     ("streaming", {"inner_iterations": 14, "region_words": 1 << 17}), ("random_access", {"inner_iterations": 8, "region_words": 1 << 16})],
    [("streaming", {"inner_iterations": 18, "region_words": 1 << 17}), ("matrix", {"inner_iterations": 14, "rows": 2048}),
     ("random_access", {"inner_iterations": 8, "region_words": 1 << 16}), ("global_counters", {"num_globals": 2}),
     ("inlined_args", {"inner_iterations": 4})],
    [("matrix", {"inner_iterations": 16, "rows": 4096}), ("store_heavy", {"inner_iterations": 10}),
     ("inlined_args", {"inner_iterations": 5}), ("streaming", {"inner_iterations": 12, "region_words": 1 << 17}),
     ("pointer_chase", {"inner_iterations": 6})],
)

_ISPEC_TEMPLATES: Sequence[List[KernelRecipe]] = (
    [("branchy", {"inner_iterations": 7}), ("pointer_chase", {"inner_iterations": 12, "ring_nodes": 1536}),
     ("runtime_constant", {}), ("stack_churn", {"inner_iterations": 8}),
     ("random_access", {"inner_iterations": 8, "region_words": 1 << 16}), ("streaming", {"inner_iterations": 8, "region_words": 1 << 16})],
    [("random_access", {"inner_iterations": 8, "region_words": 1 << 16}), ("branchy", {"inner_iterations": 7}),
     ("inlined_args", {"inner_iterations": 5}), ("stack_churn", {"inner_iterations": 8}),
     ("pointer_chase", {"inner_iterations": 8, "ring_nodes": 768}), ("streaming", {"inner_iterations": 8, "region_words": 1 << 16})],
    [("pointer_chase", {"inner_iterations": 12, "ring_nodes": 1536}), ("random_access", {"inner_iterations": 10, "region_words": 1 << 17}),
     ("global_counters", {"num_globals": 2, "store_period": 1}),
     ("branchy", {"inner_iterations": 7}), ("stack_churn", {"inner_iterations": 7}),
     ("tight_loop_readonly", {"inner_iterations": 4, "fixed_loads": 1})],
)

_SERVER_TEMPLATES: Sequence[List[KernelRecipe]] = (
    [("shared_data", {"num_shared": 5}), ("global_counters", {"num_globals": 5}),
     ("chained_deref", {"inner_iterations": 10, "depth": 3}),
     ("inlined_args", {"inner_iterations": 9}), ("tight_loop_readonly", {"inner_iterations": 9}),
     ("random_access", {"inner_iterations": 7, "region_words": 1 << 15}), ("store_heavy", {"inner_iterations": 8}),
     ("pointer_chase", {"inner_iterations": 6, "ring_nodes": 512})],
    [("shared_data", {"num_shared": 4}), ("runtime_constant", {}),
     ("chained_deref", {"inner_iterations": 11, "depth": 4}),
     ("inlined_args", {"inner_iterations": 10}), ("store_heavy", {"inner_iterations": 6}),
     ("tight_loop_readonly", {"inner_iterations": 8}), ("streaming", {"inner_iterations": 10, "region_words": 1 << 16}),
     ("random_access", {"inner_iterations": 6, "region_words": 1 << 15})],
    [("global_counters", {"num_globals": 6}), ("shared_data", {"num_shared": 4}),
     ("tight_loop_readonly", {"inner_iterations": 10}), ("pointer_chase", {"inner_iterations": 6}),
     ("inlined_args", {"inner_iterations": 8}), ("random_access", {"inner_iterations": 11, "region_words": 1 << 17}),
     ("stack_churn", {"inner_iterations": 6})],
)

_SUITE_TEMPLATES: Dict[str, Sequence[List[KernelRecipe]]] = {
    "Client": _CLIENT_TEMPLATES,
    "Enterprise": _ENTERPRISE_TEMPLATES,
    "FSPEC17": _FSPEC_TEMPLATES,
    "ISPEC17": _ISPEC_TEMPLATES,
    "Server": _SERVER_TEMPLATES,
}

#: External-write interval (in instructions) per suite; 0 disables snoop traffic.
_SUITE_SNOOP_INTERVAL: Dict[str, int] = {
    "Client": 0,
    "Enterprise": 4_000,
    "FSPEC17": 0,
    "ISPEC17": 0,
    "Server": 2_500,
}

_SUITE_NAME_PREFIX: Dict[str, str] = {
    "Client": "client",
    "Enterprise": "enterprise",
    "FSPEC17": "fspec",
    "ISPEC17": "ispec",
    "Server": "server",
}


def _jitter_params(recipes: List[KernelRecipe], rng: random.Random) -> List[KernelRecipe]:
    """Apply seeded per-workload variation to inner-iteration counts."""
    adjusted: List[KernelRecipe] = []
    for name, params in recipes:
        params = dict(params)
        if "inner_iterations" in params:
            base = int(params["inner_iterations"])
            params["inner_iterations"] = max(2, base + rng.randint(-3, 3))
        if "num_globals" in params:
            base = int(params["num_globals"])
            params["num_globals"] = max(1, base + rng.randint(-1, 1))
        adjusted.append((name, params))
    return adjusted


def _build_suite_specs(suite: str) -> List[WorkloadSpec]:
    templates = _SUITE_TEMPLATES[suite]
    count = SUITE_TRACE_COUNTS[suite]
    prefix = _SUITE_NAME_PREFIX[suite]
    specs: List[WorkloadSpec] = []
    suite_index = SUITE_NAMES.index(suite)
    for index in range(count):
        template = templates[index % len(templates)]
        # Deterministic across processes (unlike hash() on strings).
        seed = ((suite_index * 1_000 + index) * 2_654_435_761) & 0x7FFFFFFF
        rng = random.Random(seed)
        kernels = _jitter_params([(k, dict(p)) for k, p in template], rng)
        interval = _SUITE_SNOOP_INTERVAL[suite]
        specs.append(WorkloadSpec(
            name=f"{prefix}_{index:02d}",
            suite=suite,
            kernels=kernels,
            seed=seed,
            external_write_interval=interval,
            external_writes_silent=(index % 3 == 0),
            description=f"{suite} workload built from template {index % len(templates)}",
        ))
    return specs


_ALL_SPECS: Dict[str, List[WorkloadSpec]] = {}


def _ensure_specs() -> None:
    if not _ALL_SPECS:
        for suite in SUITE_NAMES:
            _ALL_SPECS[suite] = _build_suite_specs(suite)


def workload_specs_for_suite(suite: str) -> List[WorkloadSpec]:
    """All workload specs belonging to ``suite``."""
    _ensure_specs()
    if suite not in _ALL_SPECS:
        raise KeyError(f"unknown suite {suite!r}; known: {SUITE_NAMES}")
    return list(_ALL_SPECS[suite])


def all_workload_specs() -> List[WorkloadSpec]:
    """All 90 workload specs, grouped by suite in presentation order."""
    _ensure_specs()
    specs: List[WorkloadSpec] = []
    for suite in SUITE_NAMES:
        specs.extend(_ALL_SPECS[suite])
    return specs


def get_workload_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by name."""
    for spec in all_workload_specs():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload {name!r}")


def round_robin_specs(specs: Sequence[WorkloadSpec]) -> List[WorkloadSpec]:
    """Interleave specs across suites: every suite's first spec, then every
    suite's second, and so on (suites in first-appearance order, within-suite
    order preserved).

    The interleaving is *prefix-stable*: raising a uniform ``per_suite`` cut
    only appends layers to the result, it never reshuffles the existing
    prefix.  The experiment runner builds its SMT pairings from this order, so
    pairings stay pinned as the workload set scales.
    """
    by_suite: Dict[str, List[WorkloadSpec]] = {}
    for spec in specs:
        by_suite.setdefault(spec.suite, []).append(spec)
    interleaved: List[WorkloadSpec] = []
    index = 0
    while True:
        layer = [suite_specs[index] for suite_specs in by_suite.values()
                 if index < len(suite_specs)]
        if not layer:
            return interleaved
        interleaved.extend(layer)
        index += 1


def representative_specs(per_suite: int = 3) -> List[WorkloadSpec]:
    """A reduced, suite-balanced workload set for quick experiments and benchmarks."""
    if per_suite <= 0:
        raise ValueError("per_suite must be positive")
    specs: List[WorkloadSpec] = []
    for suite in SUITE_NAMES:
        suite_specs = workload_specs_for_suite(suite)
        step = max(1, len(suite_specs) // per_suite)
        specs.extend(suite_specs[::step][:per_suite])
    return specs
