"""Trace container: the dynamic instruction stream plus cross-core snoop events."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.isa.instruction import DynamicInstruction, SnoopEvent
from repro.isa.program import Program


class Trace:
    """A workload trace: dynamic instructions, snoop events and metadata.

    The trace is the interface between the functional world (the VM that
    produced it) and the timing world (the out-of-order core model).  Every
    dynamic instruction carries the functionally correct effective address and
    load value, which the golden check uses at retirement (paper §8.5).
    """

    def __init__(self, name: str, category: str,
                 instructions: List[DynamicInstruction],
                 snoops: Optional[List[SnoopEvent]] = None,
                 program: Optional[Program] = None,
                 num_registers: int = 16,
                 metadata: Optional[Dict[str, object]] = None):
        if not instructions:
            raise ValueError("a trace must contain at least one instruction")
        self.name = name
        self.category = category
        self.instructions = instructions
        # Stored as an immutable tuple: every hardware thread simulating this
        # trace shares the sequence (indexing into it) instead of copying it.
        self.snoops = tuple(sorted(snoops or (), key=lambda s: s.after_seq))
        self.program = program
        self.num_registers = num_registers
        self.metadata = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterable[DynamicInstruction]:
        return iter(self.instructions)

    # ------------------------------------------------------------------ queries

    def loads(self) -> List[DynamicInstruction]:
        """All dynamic load instructions."""
        return [d for d in self.instructions if d.is_load]

    def stores(self) -> List[DynamicInstruction]:
        """All dynamic store instructions."""
        return [d for d in self.instructions if d.is_store]

    def branches(self) -> List[DynamicInstruction]:
        """All dynamic branch/jump instructions."""
        return [d for d in self.instructions if d.is_branch]

    def load_fraction(self) -> float:
        """Fraction of dynamic instructions that are loads."""
        return len(self.loads()) / len(self.instructions)

    def static_load_pcs(self) -> List[int]:
        """Distinct PCs of load instructions, in first-occurrence order."""
        seen = {}
        for d in self.instructions:
            if d.is_load and d.pc not in seen:
                seen[d.pc] = True
        return list(seen.keys())

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace over instruction indices ``[start, stop)``."""
        sub = self.instructions[start:stop]
        if not sub:
            raise ValueError("empty trace slice")
        lo, hi = sub[0].seq, sub[-1].seq
        snoops = [s for s in self.snoops if lo <= s.after_seq <= hi]
        return Trace(
            name=f"{self.name}[{start}:{stop}]", category=self.category,
            instructions=sub, snoops=snoops, program=self.program,
            num_registers=self.num_registers, metadata=dict(self.metadata),
        )

    def summary(self) -> Dict[str, object]:
        """A small dictionary of headline trace statistics."""
        n_loads = len(self.loads())
        n_stores = len(self.stores())
        n_branches = len(self.branches())
        return {
            "name": self.name,
            "category": self.category,
            "instructions": len(self.instructions),
            "loads": n_loads,
            "stores": n_stores,
            "branches": n_branches,
            "load_fraction": n_loads / len(self.instructions),
            "snoops": len(self.snoops),
            "static_loads": len(self.static_load_pcs()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Trace(name={self.name!r}, category={self.category!r}, "
                f"instructions={len(self.instructions)})")
