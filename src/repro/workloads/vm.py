"""Functional VM executing synthetic programs to produce dynamic traces.

The VM is architecturally simple: a flat 64-bit register file, a sparse
8-byte-granular memory, and straightforward semantics for the small micro-op
ISA.  Untouched memory reads a deterministic pseudo-random value derived from
the address, so traces are reproducible without an explicit memory image.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.instruction import DynamicInstruction, OpClass, StaticInstruction
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.isa.registers import ARCH_REGISTER_COUNT, RegisterFile

_MASK64 = (1 << 64) - 1

#: Multiplier/increment of the default-value hash for untouched memory.
_ADDR_HASH_MUL = 0x9E3779B97F4A7C15
_ADDR_HASH_ADD = 0x2545F4914F6CDD1D


def default_memory_value(address: int) -> int:
    """Deterministic value returned when reading memory never written before."""
    x = (address * _ADDR_HASH_MUL + _ADDR_HASH_ADD) & _MASK64
    x ^= x >> 29
    return x & _MASK64


class SparseMemory:
    """A sparse 64-bit-word memory with deterministic default contents."""

    __slots__ = ("_words",)

    def __init__(self, initial: Optional[Dict[int, int]] = None):
        self._words: Dict[int, int] = {}
        if initial:
            for addr, value in initial.items():
                self.write(addr, value)

    @staticmethod
    def _align(address: int) -> int:
        return address & ~0x7

    def read(self, address: int) -> int:
        """Read the 64-bit word containing ``address``."""
        key = self._align(address)
        if key in self._words:
            return self._words[key]
        return default_memory_value(key)

    def write(self, address: int, value: int) -> None:
        """Write ``value`` into the 64-bit word containing ``address``."""
        self._words[self._align(address)] = value & _MASK64

    def is_written(self, address: int) -> bool:
        """True if the word containing ``address`` has ever been written."""
        return self._align(address) in self._words

    def written_words(self) -> Dict[int, int]:
        """A copy of all explicitly written words."""
        return dict(self._words)


class FunctionalVM:
    """Executes a :class:`~repro.isa.program.Program` and records the dynamic trace."""

    def __init__(self, program: Program,
                 registers: Optional[RegisterFile] = None,
                 memory: Optional[SparseMemory] = None,
                 num_registers: int = ARCH_REGISTER_COUNT,
                 thread_id: int = 0):
        self.program = program
        self.registers = registers if registers is not None else RegisterFile(num_registers)
        self.memory = memory if memory is not None else SparseMemory()
        self.pc = program.entry_pc
        self.thread_id = thread_id
        self.instruction_count = 0
        self.halted = False

    # ------------------------------------------------------------------ helpers

    def _effective_address(self, inst: StaticInstruction) -> int:
        mem = inst.mem
        address = mem.disp
        if mem.base is not None:
            address += self.registers.read(mem.base)
        if mem.index is not None:
            address += self.registers.read(mem.index) * mem.scale
        return address & _MASK64

    def _alu_result(self, inst: StaticInstruction) -> int:
        values = [self.registers.read(r) for r in inst.srcs]
        op = inst.alu_op
        imm = inst.imm
        if op == "add":
            result = sum(values) + imm
        elif op == "sub":
            if len(values) >= 2:
                result = values[0] - values[1] - imm
            elif values:
                result = values[0] - imm
            else:
                result = -imm
        elif op == "xor":
            result = imm
            for v in values:
                result ^= v
        elif op == "and":
            result = values[0] if values else imm
            for v in values[1:]:
                result &= v
            if imm:
                result &= imm
        elif op == "or":
            result = imm
            for v in values:
                result |= v
        elif op == "mul":
            result = 1
            for v in values:
                result *= v
            if imm:
                result *= imm
        elif op == "div":
            numerator = values[0] if values else imm
            denominator = values[1] if len(values) > 1 else (imm or 1)
            result = numerator // denominator if denominator else 0
        elif op == "shl":
            result = (values[0] if values else 0) << (imm & 63)
        elif op == "shr":
            result = (values[0] if values else 0) >> (imm & 63)
        elif op == "lcg":
            # Linear congruential step: handy for generating pseudo-random indices.
            seed = values[0] if values else imm
            result = seed * 6364136223846793005 + 1442695040888963407
        elif op == "mov":
            result = values[0] if values else imm
        else:
            raise ValueError(f"unknown ALU operation {op!r}")
        return result & _MASK64

    def _branch_taken(self, inst: StaticInstruction) -> bool:
        if inst.opclass is OpClass.JUMP:
            return True
        value = self.registers.read(inst.srcs[0]) if inst.srcs else 0
        if inst.cond == "nz":
            return value != 0
        if inst.cond == "z":
            return value == 0
        raise ValueError(f"unknown branch condition {inst.cond!r}")

    # --------------------------------------------------------------------- step

    def step(self) -> DynamicInstruction:
        """Execute one instruction and return its dynamic record."""
        if self.halted:
            raise RuntimeError("VM has halted (fell off the end of the program)")
        inst = self.program.fetch(self.pc)
        seq = self.instruction_count
        address = 0
        load_value = 0
        store_value = 0
        branch_taken = False
        next_pc = self.pc + INSTRUCTION_SIZE

        opclass = inst.opclass
        if opclass is OpClass.LOAD:
            address = self._effective_address(inst)
            load_value = self.memory.read(address)
            if inst.dest is not None:
                self.registers.write(inst.dest, load_value)
        elif opclass is OpClass.STORE:
            address = self._effective_address(inst)
            store_value = self.registers.read(inst.srcs[0]) if inst.srcs else inst.imm
            self.memory.write(address, store_value)
        elif opclass in (OpClass.BRANCH, OpClass.JUMP):
            branch_taken = self._branch_taken(inst)
            if branch_taken:
                next_pc = inst.branch_target
        elif opclass is OpClass.MOVE_IMM:
            self.registers.write(inst.dest, inst.imm)
        elif opclass is OpClass.MOVE_REG:
            self.registers.write(inst.dest, self.registers.read(inst.srcs[0]))
        elif opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            if inst.dest is not None:
                self.registers.write(inst.dest, self._alu_result(inst))
        elif opclass is OpClass.NOP:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled opclass {opclass}")

        record = DynamicInstruction(
            seq=seq, static=inst, address=address, load_value=load_value,
            store_value=store_value, branch_taken=branch_taken, next_pc=next_pc,
            thread_id=self.thread_id,
        )
        self.instruction_count += 1
        self.pc = next_pc
        if self.pc not in self.program:
            self.halted = True
        return record

    def run(self, max_instructions: int) -> List[DynamicInstruction]:
        """Execute up to ``max_instructions`` instructions and return the trace."""
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        trace: List[DynamicInstruction] = []
        while len(trace) < max_instructions and not self.halted:
            trace.append(self.step())
        return trace

    def apply_external_write(self, address: int, value: int) -> None:
        """Apply a write performed by another core (used to generate snoop traffic)."""
        self.memory.write(address, value)
