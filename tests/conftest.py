"""Shared fixtures: small traces and configurations sized for fast tests."""

from __future__ import annotations

import pytest

from repro.core import ConstableConfig
from repro.pipeline import CoreConfig, simulate_trace
from repro.workloads import generate_trace, workload_specs_for_suite
from repro.workloads.suites import WorkloadSpec

#: Trace length used by integration tests: long enough for Constable to train,
#: short enough to keep the whole suite fast.
TEST_TRACE_INSTRUCTIONS = 3000


@pytest.fixture(scope="session")
def client_trace():
    """A Client-suite trace (rich in stable loads)."""
    spec = workload_specs_for_suite("Client")[0]
    return generate_trace(spec, num_instructions=TEST_TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def server_trace():
    """A Server-suite trace (includes snoop traffic)."""
    spec = workload_specs_for_suite("Server")[0]
    return generate_trace(spec, num_instructions=TEST_TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def ispec_trace():
    """An ISPEC-like trace (branchy, pointer chasing)."""
    spec = workload_specs_for_suite("ISPEC17")[0]
    return generate_trace(spec, num_instructions=TEST_TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def tiny_spec():
    """A purpose-built workload spec exercising stable and unstable loads."""
    return WorkloadSpec(
        name="tiny_mixed",
        suite="Client",
        kernels=[
            ("runtime_constant", {}),
            ("inlined_args", {"inner_iterations": 6}),
            ("tight_loop_readonly", {"inner_iterations": 6}),
            ("store_heavy", {"inner_iterations": 4}),
        ],
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_trace(tiny_spec):
    return generate_trace(tiny_spec, num_instructions=2000)


@pytest.fixture(scope="session")
def constable_test_config():
    """Constable configuration with a trace-length-appropriate confidence threshold."""
    return ConstableConfig(confidence_threshold=6)


@pytest.fixture(scope="session")
def baseline_result(client_trace):
    """Baseline simulation of the Client trace (shared across tests)."""
    return simulate_trace(client_trace, CoreConfig(), name="baseline")


@pytest.fixture(scope="session")
def constable_result(client_trace, constable_test_config):
    """Constable simulation of the Client trace (shared across tests)."""
    return simulate_trace(client_trace, CoreConfig(constable=constable_test_config),
                          name="constable")
