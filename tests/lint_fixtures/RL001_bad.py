"""Seeded-bad fixture for RL001: every banned determinism hazard, marked."""

import random
import time


def jittered_latency(base: int) -> float:
    return base + time.time()  # expect[RL001]


def random_stride() -> int:
    return random.randint(1, 64)  # expect[RL001]


def unseeded_generator():
    return random.Random()  # expect[RL001]


def visit_ports():
    total = 0
    for port in {"p0", "p1", "p5"}:  # expect[RL001]
        total += len(port)
    return total


def visit_lines(lines):
    return [line for line in {line * 64 for line in lines}]  # expect[RL001]
