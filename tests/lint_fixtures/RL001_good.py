"""Good twin for RL001: deterministic idioms the rule must not flag."""

import random


def seeded_stride(seed: int) -> int:
    rng = random.Random(seed)
    return rng.randint(1, 64)


def derived_rng(spec_seed: int) -> random.Random:
    return random.Random(spec_seed ^ 0xBEEF)


def visit_ports() -> int:
    total = 0
    for port in sorted({"p0", "p1", "p5"}):
        total += len(port)
    return total


def visit_lines(lines):
    unique = sorted({line * 64 for line in lines})
    return [line for line in unique]
