"""Seeded-bad fixture for RL002: impure cache-key material, marked.

Covers the direct case (a key function reading the environment), the
depth-one callgraph case (a non-seed helper the key function calls), the
engine-leak case (an ``engine``-named attribute inside fingerprint code),
and the supervision-leak case (a retry knob inside identity material).
"""

import hashlib
import json
import os


def _salt_blob(payload: dict) -> str:
    return os.getenv("HOSTNAME", "") + json.dumps(payload)  # expect[RL002]


class ResultCache:
    def key_for(self, config, spec, instructions: int) -> str:
        if os.environ.get("FAST_KEYS"):  # expect[RL002]
            instructions = 0
        blob = _salt_blob({"spec": spec, "instructions": instructions})
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_fingerprint(config) -> dict:
    return {"engine": config.engine, "width": config.width}  # expect[RL002]


def _sim_identity(job) -> str:
    return f"{job.workload}:{job.retry_budget}"  # expect[RL002]
