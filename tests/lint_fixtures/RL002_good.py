"""Good twin for RL002: pure cache-key material the rule must not flag."""

import hashlib
import json
import os


def _blob(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class ResultCache:
    def key_for(self, config, spec, instructions: int) -> str:
        blob = _blob({
            "config": config.to_dict(),
            "spec": spec.name,
            "instructions": instructions,
        })
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_fingerprint(config) -> dict:
    return {"width": config.width, "rob": config.rob_size}


def cache_dir() -> str:
    # Environment reads are fine OUTSIDE key functions: where the cache
    # lives on disk is allowed to vary per host, what it is keyed by is not.
    return os.environ.get("XDG_CACHE_HOME", "/tmp")


def supervisor_defaults(max_retries: int = 2, job_timeout=None) -> dict:
    # Fault/retry/timeout knobs are likewise fine OUTSIDE key functions:
    # how a job is supervised may vary per run, what it computes may not.
    return {"max_retries": max_retries, "job_timeout": job_timeout}
