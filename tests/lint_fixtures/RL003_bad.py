"""Seeded-bad fixture for RL003: to_dict key drift without a schema bump.

Relative to the good twin, ``retired`` was renamed to ``committed`` — a
shape change that would make old cache entries decode wrongly — while the
schema versions stayed put.
"""


class StageCounters:  # expect[RL003]
    def __init__(self) -> None:
        self.fetched = 0
        self.committed = 0

    def to_dict(self) -> dict:
        return {
            "fetched": self.fetched,
            "committed": self.committed,
            "schema": "stage-counters",
        }
