"""Good twin for RL003: a serialized type matching the committed manifest.

The test materializes this file, refreshes the manifest from it, and then
swaps in the bad twin — which renames a key without a schema bump.
"""


class StageCounters:
    def __init__(self) -> None:
        self.fetched = 0
        self.retired = 0

    def to_dict(self) -> dict:
        return {
            "fetched": self.fetched,
            "retired": self.retired,
            "schema": "stage-counters",
        }
