"""Seeded-bad fixture for RL003's warehouse gate: row drift without a bump.

Relative to the good twin, the warehouse row grew an ``mpki`` column — a
shape change that would desynchronise existing segments from fresh appends
— while ``WAREHOUSE_SCHEMA_VERSION`` stayed put.
"""

WAREHOUSE_SCHEMA_VERSION = 1


class WarehouseRow:  # expect[RL003]
    def __init__(self) -> None:
        self.workload = ""
        self.ipc = 0.0
        self.mpki = 0.0

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "schema": WAREHOUSE_SCHEMA_VERSION,
        }
