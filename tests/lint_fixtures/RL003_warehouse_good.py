"""Good twin for RL003's warehouse gate: row shape matches the manifest.

The test materializes this file at ``src/repro/experiments/warehouse.py``
(a module both :data:`SERIALIZED_MODULES` and the
``warehouse_schema_version`` entry of :data:`VERSION_SOURCES` point at),
refreshes the manifest from it, then swaps in the bad twin — which adds a
``to_dict`` key while ``WAREHOUSE_SCHEMA_VERSION`` stays put.
"""

WAREHOUSE_SCHEMA_VERSION = 1


class WarehouseRow:
    def __init__(self) -> None:
        self.workload = ""
        self.ipc = 0.0

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "ipc": self.ipc,
            "schema": WAREHOUSE_SCHEMA_VERSION,
        }
