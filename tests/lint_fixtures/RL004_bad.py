"""Seeded-bad fixture for RL004: an undocumented REPRO_* knob read, marked.

The test tree's ``docs/ENVIRONMENT.md`` documents only ``REPRO_FIXTURE_KNOB``.
"""

import os


def documented_knob() -> str:
    return os.environ.get("REPRO_FIXTURE_KNOB", "off")


def undocumented_knob() -> str:
    return os.environ.get("REPRO_UNDOCUMENTED_KNOB", "off")  # expect[RL004]
