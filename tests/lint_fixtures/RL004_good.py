"""Good twin for RL004: every REPRO_* read has a registry row in the test tree."""

import os


def documented_knob() -> str:
    return os.environ.get("REPRO_FIXTURE_KNOB", "off")
