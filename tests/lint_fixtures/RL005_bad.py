"""Seeded-bad fixture for RL005: event-guarded stores to shared state, marked."""

import heapq


class OutOfOrderCore:
    def __init__(self, engine: str) -> None:
        self.engine = engine
        self.retired_total = 0
        self._completion_heap = []

    def advance(self) -> None:
        if self.engine == "event":
            self.retired_total += 1  # expect[RL005]
            self._wakeup_cache = {}  # expect[RL005]
            heapq.heappush(self._completion_heap, 0)
        else:
            self.retired_total += 1

    def drain(self) -> None:
        if self.engine != "event":
            self.retired_total += 1
        else:
            self.cycle = 0  # expect[RL005]
