"""Good twin for RL005: event-guarded stores confined to allowlisted state."""

import heapq


class OutOfOrderCore:
    def __init__(self, engine: str) -> None:
        self.engine = engine
        self.retired_total = 0
        self._completion_heap = []
        self._issue_quiescent = False
        self.stepped_cycles = 0

    def advance(self) -> None:
        if self.engine == "event":
            self._issue_quiescent = True
            self.stepped_cycles += 1
            heapq.heappush(self._completion_heap, 0)
        else:
            self.retired_total += 1

    def drain(self) -> None:
        if self.engine != "event":
            self.retired_total += 1
        else:
            self._completion_heap = []
