"""Seeded-bad fixture for RL006: silent exception swallows, marked."""


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except:  # noqa: E722  # expect[RL006]
        pass


def probe(cache):
    try:
        return cache.stats()
    except Exception:  # expect[RL006]
        pass


def poke(cache):
    try:
        cache.evict()
    except (OSError, Exception):  # expect[RL006]
        ...
