"""Good twin for RL006: narrow or handled exception idioms the rule allows."""

import logging

log = logging.getLogger(__name__)


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        # Narrow, deliberate best-effort swallow: legal.
        return None


def probe(cache):
    try:
        return cache.stats()
    except Exception:
        # Broad catch is fine when the failure is surfaced, not eaten.
        log.exception("cache stats probe failed")
        raise


def poke(cache):
    try:
        cache.evict()
    except (OSError, ValueError):
        pass
