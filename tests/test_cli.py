"""Tests for the ``repro`` console entry point and the shard-aware sweep pipeline.

Covers the cache subcommands (stats/gc/clear/verify round-trip, corrupt- and
orphan-entry detection), shard parsing and partition invariants, the headline
distribution guarantee — ``sweep --shard 1/2`` + ``--shard 2/2`` into one
cache directory merge to results bit-identical to a serial unsharded run with
zero re-simulation — and the warm-figures contract behind ``--expect-warm``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.cache import ResultCache
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.runner import ExperimentRunner, Shard
from repro.pipeline.cpu import OutOfOrderCore

SUITES = ("Client", "Server")
INSTRUCTIONS = 800


def _runner_args(cache_dir) -> list:
    return ["--cache-dir", str(cache_dir), "--per-suite", "1",
            "--instructions", str(INSTRUCTIONS), "--suites", ",".join(SUITES)]


def _make_runner(cache_dir=None) -> ExperimentRunner:
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=cache)


@pytest.fixture()
def simulation_counter(monkeypatch):
    calls = {"count": 0}
    original = OutOfOrderCore.run

    def counted(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(OutOfOrderCore, "run", counted)
    return calls


# -------------------------------------------------------------------- sharding

def test_shard_parse_round_trip():
    shard = Shard.parse("2/3")
    assert (shard.index, shard.count) == (2, 3)


@pytest.mark.parametrize("text", ["", "3", "0/2", "3/2", "a/b", "1/0", "-1/2", "1/2/3"])
def test_shard_parse_rejects_malformed_specs(text):
    with pytest.raises(ValueError):
        Shard.parse(text)


@pytest.mark.parametrize("count", [1, 2, 3, 5, 9])
def test_shard_select_partitions_disjointly(count):
    items = [f"wl{i:02d}" for i in range(7)]
    slices = [Shard(index=k, count=count).select(items) for k in range(1, count + 1)]
    flattened = [item for part in slices for item in part]
    assert sorted(flattened) == sorted(items), "shards must union to the full set"
    assert len(flattened) == len(set(flattened)), "shards must be disjoint"


def test_shard_selection_ignores_residual_plan_state(simulation_counter, tmp_path):
    """Membership depends on the canonical workload list, not on what a host's
    cache already holds — otherwise two hosts could double- or zero-cover a
    workload once their warm states diverge."""
    warm = _make_runner(tmp_path)
    shard_one = set(warm.run_config("baseline", baseline_config(),
                                    shard=Shard(1, 2)))
    # A second sharded call on the same runner plans a residual (empty) job
    # list; the returned coverage must still be exactly shard one's workloads.
    again = set(warm.run_config("baseline", baseline_config(), shard=Shard(1, 2)))
    assert again == shard_one
    shard_two = set(warm.run_config("baseline", baseline_config(),
                                    shard=Shard(2, 2)))
    assert shard_one | shard_two == set(warm.workloads())
    assert not shard_one & shard_two


# ------------------------------------------------------- sweep: merge identity

def test_sharded_sweep_union_is_bit_identical_to_serial(tmp_path, simulation_counter):
    sweep_args = _runner_args(tmp_path) + ["--configs", "baseline,constable",
                                           "--smt-configs", "baseline",
                                           "--max-pairs", "1"]
    assert main(["sweep", "--shard", "1/2"] + sweep_args) == 0
    assert main(["sweep", "--shard", "2/2"] + sweep_args) == 0
    sharded_sims = simulation_counter["count"]
    assert sharded_sims == 2 * 2 + 1  # two configs x two workloads + one SMT pair

    # Folding the shards: a warm unsharded runner must simulate nothing and
    # reproduce the serial no-cache reference bit-for-bit.
    merged = _make_runner(tmp_path)
    merged_results = {name: merged.run_config(name, config)
                      for name, config in (("baseline", baseline_config()),
                                           ("constable", constable_config()))}
    merged_smt = merged.run_smt_config("baseline", baseline_config(), max_pairs=1)
    assert simulation_counter["count"] == sharded_sims, \
        "merging shard results must not re-simulate"

    reference = _make_runner()
    for name, results in merged_results.items():
        config = baseline_config() if name == "baseline" else constable_config()
        assert reference.run_config(name, config) == results
    assert reference.run_smt_config("baseline", baseline_config(), max_pairs=1) \
        == merged_smt


def test_sweep_rejects_malformed_shard(tmp_path, capsys):
    args = _runner_args(tmp_path) + ["--configs", "none", "--smt-configs", "none"]
    assert main(["sweep", "--shard", "3/2"] + args) == 2
    assert "shard" in capsys.readouterr().err


def test_sweep_rejects_unknown_config(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "no-such-config"] + _runner_args(tmp_path))


def test_sweep_merge_with_shard_is_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--merge", "--shard", "1/2"] + _runner_args(tmp_path))


# ----------------------------------------------------------- cache subcommands

def test_cache_stats_gc_clear_round_trip(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == len(SUITES) * 2  # one result + one report each
    assert stats["by_kind"] == {"result": 2, "report": 2}
    assert stats["total_bytes"] > 0

    cache = ResultCache(tmp_path)
    cap_mb = (cache.total_bytes() - 1) / (1024 * 1024)
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", str(cap_mb)]) == 0
    assert "evicted 1" in capsys.readouterr().out
    assert len(cache) == len(SUITES) * 2 - 1

    assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2, \
        "gc without any cap configured is a usage error"
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", "-1"]) == 2, \
        "a non-positive cap is a usage error, not a traceback"
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", "nan"]) == 2
    capsys.readouterr()

    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert len(cache) == 0


def test_cache_verify_flags_corrupt_and_orphan_entries(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0

    cache = ResultCache(tmp_path)
    corrupt = next(cache.directory.glob("*/*.json"))
    corrupt.write_text("{not json", encoding="utf-8")
    orphan = cache.directory / "ab"
    orphan.mkdir(exist_ok=True)
    orphan_tmp = orphan / ".deadbeef.tmp"
    orphan_tmp.write_text("partial", encoding="utf-8")
    capsys.readouterr()

    # A fresh temp file belongs to a (possibly live) writer mid-store: it must
    # not be flagged, and therefore must never be purged out from under it.
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt"] == [str(corrupt)]
    assert report["orphan_temp"] == []

    aged = ResultCache.ORPHAN_TEMP_AGE_SECONDS + 60
    os.utime(orphan_tmp, (orphan_tmp.stat().st_mtime - aged,) * 2)
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["orphan_temp"] == [str(orphan_tmp)]

    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--purge"]) == 0
    assert not corrupt.exists() and not orphan_tmp.exists()
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0


def test_cache_verify_flags_stale_schema_without_failing(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    entry = next(ResultCache(tmp_path).directory.glob("*/*.json"))
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["schema"] = -1
    entry.write_text(json.dumps(payload), encoding="utf-8")
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["stale_schema"] == [str(entry)]


# --------------------------------------------------- persisted hit/miss ledger

def test_cache_stats_reports_cross_run_hit_rates(tmp_path, capsys):
    """Counters from separate sweep runs accumulate in the directory ledger."""
    sweep = ["sweep", "--configs", "baseline", "--smt-configs", "none"] \
        + _runner_args(tmp_path)
    assert main(sweep) == 0          # cold: stores, no hits
    assert main(sweep) == 0          # warm: pure hits
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    counters = stats["persisted_counters"]
    assert counters["ledgers"] >= 2, "each run must flush its own ledger"
    assert counters["total"]["stores"] == len(SUITES) * 2
    assert counters["total"]["hits"] >= len(SUITES) * 2, \
        "the warm rerun's hits must be visible to a later process"
    # Orchestrated sweeps also stream their wave's dedup stats in, and the
    # supervisor flushes its health counters alongside them.
    assert set(counters["by_cache"]) == {"ResultCache", "ReportCache",
                                         "SweepOrchestrator", "SweepSupervisor"}
    assert counters["dedup"]["waves"] == 2
    # Only the cold run supervised jobs; the warm rerun's delta is all-zero
    # and deliberately not flushed.
    assert counters["health"]["runs"] == 1
    assert counters["health"]["jobs"] > 0

    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    assert "hit rate" in capsys.readouterr().out


def test_cache_gc_compacts_ledgers_losslessly(tmp_path, capsys):
    """`cache gc` folds per-run ledger files without changing the aggregate."""
    from repro.experiments.cache import persisted_cache_stats

    sweep = ["sweep", "--configs", "baseline", "--smt-configs", "none"] \
        + _runner_args(tmp_path)
    assert main(sweep) == 0
    assert main(sweep) == 0
    before = persisted_cache_stats(tmp_path)
    assert before["ledgers"] >= 4  # two runs x (result + report cache)
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", "1024"]) == 0
    capsys.readouterr()
    after = persisted_cache_stats(tmp_path)
    assert after["total"] == before["total"], "compaction must not change sums"
    assert after["by_cache"] == before["by_cache"]
    assert after["ledgers"] == len(after["by_cache"]), \
        "ledger count must collapse to one file per cache class"


def test_compaction_lock_serialises_concurrent_compactors(tmp_path):
    """A second compactor racing the first is a no-op; stale locks get broken."""
    import json as json_module
    import os as os_module
    import time
    from repro.experiments.cache import (
        _COMPACT_LOCK_STALE_SECONDS,
        STATS_SUBDIR,
        compact_persisted_stats,
        persisted_cache_stats,
    )

    stats_dir = tmp_path / STATS_SUBDIR
    stats_dir.mkdir(parents=True)
    for index in range(3):
        (stats_dir / f"run{index}.stats").write_text(json_module.dumps({
            "cache": "ResultCache",
            "counters": {"hits": 1, "misses": 0, "stores": 0, "evictions": 0}}))
    before = persisted_cache_stats(tmp_path)

    lock = stats_dir / ".compact.lock"
    lock.write_text("")  # a live concurrent compactor holds the lock
    assert compact_persisted_stats(tmp_path) == 0
    assert persisted_cache_stats(tmp_path) == before, \
        "losing the lock race must not touch the ledgers"

    stale = time.time() - _COMPACT_LOCK_STALE_SECONDS - 60
    os_module.utime(lock, (stale, stale))
    assert compact_persisted_stats(tmp_path) == 0, \
        "the call that breaks a stale lock does not compact itself"
    assert not lock.exists()
    assert compact_persisted_stats(tmp_path) == 3
    after = persisted_cache_stats(tmp_path)
    assert after["total"] == before["total"]
    assert after["ledgers"] == 1


def test_compaction_crash_leftovers_never_double_count(tmp_path):
    """A compactor dying between writing its output and unlinking the folded
    sources must not double-count: the compacted file's `folded` list makes
    readers skip the leftovers, and the next compaction deletes them."""
    import json as json_module
    from repro.experiments.cache import (
        STATS_SUBDIR,
        compact_persisted_stats,
        persisted_cache_stats,
    )

    stats_dir = tmp_path / STATS_SUBDIR
    stats_dir.mkdir(parents=True)
    for index in range(2):
        (stats_dir / f"run{index}.stats").write_text(json_module.dumps({
            "cache": "ResultCache",
            "counters": {"hits": 2, "misses": 1, "stores": 1, "evictions": 0}}))
    # Emulate the crash: the compacted output exists, the sources were never
    # unlinked.
    (stats_dir / "compacted-dead.stats").write_text(json_module.dumps({
        "cache": "ResultCache",
        "counters": {"hits": 4, "misses": 2, "stores": 2, "evictions": 0},
        "compacted": True, "folded": ["run0.stats", "run1.stats"]}))
    summary = persisted_cache_stats(tmp_path)
    assert summary["total"]["hits"] == 4, "leftover sources must be excluded"
    assert summary["ledgers"] == 1
    assert compact_persisted_stats(tmp_path) == 2, \
        "the next compaction must delete the superseded leftovers"
    assert not (stats_dir / "run0.stats").exists()
    assert persisted_cache_stats(tmp_path)["total"]["hits"] == 4


def test_bench_rejects_non_positive_instruction_budget():
    from repro.experiments.bench import run_bench
    for bad in (0, -5):
        with pytest.raises(ValueError):
            run_bench(families=["sensitivity"], instructions=bad)


def test_sweep_families_all_with_typo_is_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--families", "all,sensitivty"] + _runner_args(tmp_path))


def test_persist_stats_flushes_deltas_exactly_once(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.persist_stats() is None, "no counters -> no ledger file"
    cache.get("0" * 64)  # a miss
    first = cache.persist_stats()
    assert first is not None and first.suffix == ".stats"
    assert cache.persist_stats() is None, "same counters -> nothing to flush"
    cache.get("1" * 64)
    assert cache.persist_stats() is not None
    from repro.experiments.cache import persisted_cache_stats
    assert persisted_cache_stats(tmp_path)["total"]["misses"] == 2
    assert len(cache) == 0, "ledger files must be invisible to entry scans"
    cache.clear()
    assert persisted_cache_stats(tmp_path)["total"] == {
        "hits": 0, "misses": 0, "stores": 0, "evictions": 0}


def test_dedup_ledger_aggregates_and_survives_compaction(tmp_path):
    """Orchestrated waves stream dedup stats into the ledger; aggregation sums
    them across waves (and hosts) and compaction folds them losslessly."""
    from repro.experiments.cache import (
        DEDUP_LEDGER_CLASS,
        compact_persisted_stats,
        persist_dedup_stats,
        persisted_cache_stats,
    )

    assert persisted_cache_stats(tmp_path)["dedup"]["waves"] == 0
    persist_dedup_stats(tmp_path, {"planned": 10, "unique": 7,
                                   "cache_warm": 3, "executed": 4})
    persist_dedup_stats(tmp_path, {"planned": 10, "unique": 7,
                                   "cache_warm": 7, "executed": 0})
    summary = persisted_cache_stats(tmp_path)
    assert summary["dedup"] == {"waves": 2, "planned": 20, "unique": 14,
                                "deduped": 6, "cache_warm": 10, "executed": 4}
    assert DEDUP_LEDGER_CLASS in summary["by_cache"]
    assert summary["by_cache"][DEDUP_LEDGER_CLASS]["stores"] == 0, \
        "dedup-only ledgers carry zero cache counters for old readers"
    assert compact_persisted_stats(tmp_path) == 2
    after = persisted_cache_stats(tmp_path)
    assert after["dedup"] == summary["dedup"], \
        "compaction must not change the dedup sums (waves included)"
    assert after["ledgers"] == 1
    # Another wave after compaction keeps accumulating.
    persist_dedup_stats(tmp_path, {"planned": 4, "unique": 4,
                                   "cache_warm": 0, "executed": 4})
    assert persisted_cache_stats(tmp_path)["dedup"]["waves"] == 3


def test_orchestrated_sweep_streams_dedup_into_cache_stats(tmp_path, capsys):
    """An orchestrated `repro sweep` leaves its wave's dedup rates readable
    by a later `repro cache stats` process — the cross-host observability
    contract the CI sharded smoke relies on."""
    assert main(["sweep", "--families", "main", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    dedup = stats["persisted_counters"]["dedup"]
    assert dedup["waves"] == 1
    assert dedup["planned"] >= dedup["unique"] > 0
    assert dedup["executed"] > 0, "a cold sweep's wave executes its jobs"
    # The human-readable rendering surfaces the same block.
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "orchestrated waves" in out and "dedup rate" in out


# ---------------------------------------------------------- sensitivity sweeps

def test_sweep_sensitivity_family_warms_fig13_and_fig20(tmp_path, simulation_counter):
    """The fig. 13/20 config families are sweepable: a sensitivity sweep into a
    cache directory lets both sensitivity figures regenerate simulation-free."""
    assert main(["sweep", "--families", "sensitivity", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    swept = simulation_counter["count"]
    assert swept > 0
    for figure in ("fig13", "fig20"):
        assert main(["figures", figure] + _runner_args(tmp_path)
                    + ["--expect-warm"]) == 0, figure
    assert simulation_counter["count"] == swept, \
        "warm sensitivity figures must not simulate"


def test_sweep_rejects_unknown_family(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--families", "nope"] + _runner_args(tmp_path))


# ----------------------------------------------------------------------- bench

def test_bench_cli_writes_report(tmp_path, capsys):
    output = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--families", "sensitivity", "--reps", "2",
                 "--instructions", "400", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "repro bench" in out and str(output) in out
    payload = json.loads(output.read_text(encoding="utf-8"))
    from repro.experiments.bench import BENCH_SCHEMA_VERSION
    assert payload["schema"] == BENCH_SCHEMA_VERSION
    assert payload["identical"] is True
    assert payload["engines"] == ["cycle", "event"]
    assert payload["reps"] == 2 and payload["warmup_discarded"] is True
    assert payload["host"]["cpu_count"] == os.cpu_count()
    family = payload["families"]["sensitivity"]
    assert family["speedup"] > 0
    assert all(job["identical"] for job in family["jobs"])
    for engine in family["totals"].values():
        assert len(engine["wall_samples"]) == 2
        # Warm-up discarded: the summary is the median of the single
        # remaining sample.
        assert engine["wall_seconds"] == engine["wall_samples"][1]
    assert "orchestrator" not in payload, "only --orchestrator adds the section"


def test_bench_reps_distribution_statistics():
    from repro.analysis.stats_utils import median, median_abs_deviation
    from repro.experiments.bench import run_bench

    payload = run_bench(quick=True, families=["sensitivity"],
                        instructions=300, reps=3)
    job = payload["families"]["sensitivity"]["jobs"][0]
    for engine in job["engines"].values():
        samples = engine["wall_samples"]
        assert len(samples) == 3
        measured = samples[1:]  # warm-up discarded by default
        assert engine["wall_seconds"] == pytest.approx(median(measured))
        assert engine["wall_min"] == pytest.approx(min(measured))
        assert engine["wall_mad"] == pytest.approx(
            median_abs_deviation(measured))
    totals = payload["families"]["sensitivity"]["totals"]
    for engine_name, engine in totals.items():
        per_rep = [sum(j["engines"][engine_name]["wall_samples"][rep]
                       for j in payload["families"]["sensitivity"]["jobs"])
                   for rep in range(3)]
        assert engine["wall_samples"] == pytest.approx(per_rep), \
            "family totals must be per-repetition sums, not sums of medians"


def test_bench_reps_env_and_keep_warmup(monkeypatch):
    from repro.experiments.bench import resolve_bench_reps, run_bench

    monkeypatch.setenv("REPRO_BENCH_REPS", "2")
    assert resolve_bench_reps() == 2
    payload = run_bench(quick=True, families=["sensitivity"],
                        instructions=200, discard_warmup=False)
    assert payload["reps"] == 2
    assert payload["warmup_discarded"] is False
    engine = payload["families"]["sensitivity"]["jobs"][0]["engines"]["event"]
    from repro.analysis.stats_utils import median
    assert engine["wall_seconds"] == pytest.approx(median(engine["wall_samples"]))
    monkeypatch.setenv("REPRO_BENCH_REPS", "zero")
    with pytest.warns(RuntimeWarning, match="REPRO_BENCH_REPS"):
        assert resolve_bench_reps() == 3
    monkeypatch.setenv("REPRO_BENCH_REPS", "-1")
    with pytest.warns(RuntimeWarning):
        assert resolve_bench_reps() == 3
    with pytest.raises(ValueError):
        resolve_bench_reps(0)


def test_bench_cli_rejects_unknown_family_and_engine(tmp_path, capsys):
    assert main(["bench", "--families", "nope",
                 "--output", str(tmp_path / "b.json")]) == 2
    assert "families" in capsys.readouterr().err
    assert main(["bench", "--engines", "warp",
                 "--output", str(tmp_path / "b.json")]) == 2
    assert "engine" in capsys.readouterr().err


def test_bench_cli_rejects_workers_without_orchestrator(tmp_path, capsys):
    assert main(["bench", "--workers", "4",
                 "--output", str(tmp_path / "b.json")]) == 2
    assert "--orchestrator" in capsys.readouterr().err


def test_bench_reports_default_into_bench_reports_dir(tmp_path, monkeypatch):
    from repro.experiments.bench import BENCH_REPORTS_DIR, write_bench_report

    monkeypatch.chdir(tmp_path)
    path = write_bench_report({"schema": 2})
    assert path.parent.name == BENCH_REPORTS_DIR
    assert path.name.startswith("BENCH_") and path.suffix == ".json"


def test_latest_bench_report_prefers_new_dir_and_warns_on_legacy(tmp_path):
    from repro.experiments.bench import latest_bench_report

    new_dir = tmp_path / "bench_reports"
    assert latest_bench_report(new_dir, legacy_directory=tmp_path) is None
    legacy = tmp_path / "BENCH_20250101T000000Z.json"
    legacy.write_text('{"schema": 1}', encoding="utf-8")
    with pytest.warns(DeprecationWarning, match="bench_reports"):
        path, payload = latest_bench_report(new_dir, legacy_directory=tmp_path)
    assert path == legacy and payload["schema"] == 1
    new_dir.mkdir()
    newer = new_dir / "BENCH_20260101T000000Z.json"
    newer.write_text('{"schema": 2}', encoding="utf-8")
    path, payload = latest_bench_report(new_dir, legacy_directory=tmp_path)
    assert path == newer and payload["schema"] == 2


def test_latest_bench_report_warns_when_newer_legacy_report_is_shadowed(tmp_path):
    from repro.experiments.bench import latest_bench_report

    new_dir = tmp_path / "bench_reports"
    new_dir.mkdir()
    committed = new_dir / "BENCH_20260101T000000Z.json"
    committed.write_text('{"schema": 3}', encoding="utf-8")
    stray = tmp_path / "BENCH_20270101T000000Z.json"
    stray.write_text('{"schema": 3, "fresh": true}', encoding="utf-8")
    with pytest.warns(UserWarning, match="shadowed") as caught:
        path, payload = latest_bench_report(new_dir, legacy_directory=tmp_path)
    # The warning must name BOTH sides of the shadowing: the stray legacy
    # report and the committed report that wins, so the operator can compare
    # them without re-deriving the discovery order.
    message = str(caught[0].message)
    assert str(stray) in message and str(committed) in message
    assert path == committed, "the new location still wins"
    assert "fresh" not in payload
    # An *older* legacy report shadows nothing: no warning.
    stray.rename(tmp_path / "BENCH_20250101T000000Z.json")
    import warnings as warnings_module
    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        path, _ = latest_bench_report(new_dir, legacy_directory=tmp_path)
    assert path == committed


def test_bench_report_discovery_skips_loosely_named_files(tmp_path):
    """A stray ``BENCH_notes.json`` (which the old glob matched and — sorting
    after any timestamp — would have been picked as 'latest') is ignored."""
    from repro.experiments.bench import latest_bench_report, load_bench_history

    new_dir = tmp_path / "bench_reports"
    new_dir.mkdir()
    (new_dir / "BENCH_notes.json").write_text("not json at all {",
                                              encoding="utf-8")
    (new_dir / "BENCH_20260101T000000.json").write_text('{}', encoding="utf-8")
    assert latest_bench_report(new_dir, legacy_directory=tmp_path) is None, \
        "no strictly named report -> no report (never a scratch file)"
    real = new_dir / "BENCH_20260101T000000Z.json"
    real.write_text('{"schema": 3}', encoding="utf-8")
    path, _ = latest_bench_report(new_dir, legacy_directory=tmp_path)
    assert path == real
    history = load_bench_history(new_dir, legacy_directory=tmp_path)
    assert [entry["name"] for entry in history] == [real.name]


def _history_report(schema: int, wall: float, **extra) -> str:
    payload = {"schema": schema, "quick": True,
               "families": {"speedup": {
                   "totals": {"event": {"wall_seconds": wall}}}},
               "speedup_geomean": 1.5}
    payload.update(extra)
    return json.dumps(payload)


def test_bench_history_renders_trajectory_across_schemas(tmp_path):
    from repro.experiments.bench import format_bench_history, load_bench_history

    new_dir = tmp_path / "bench_reports"
    new_dir.mkdir()
    # A legacy-root schema-1 report, then two generations in bench_reports/.
    (tmp_path / "BENCH_20250101T000000Z.json").write_text(
        _history_report(1, 3.0), encoding="utf-8")
    (new_dir / "BENCH_20260101T000000Z.json").write_text(
        _history_report(2, 2.0, orchestrator={"speedup": 1.25}),
        encoding="utf-8")
    (new_dir / "BENCH_20260601T000000Z.json").write_text(
        _history_report(3, 1.0, reps=3), encoding="utf-8")
    # A malformed strictly-named report is skipped with a warning, not fatal.
    (new_dir / "BENCH_20260701T000000Z.json").write_text("{broken",
                                                        encoding="utf-8")
    with pytest.warns(UserWarning, match="skipping unreadable"):
        entries = load_bench_history(new_dir, legacy_directory=tmp_path)
    assert [entry["schema"] for entry in entries] == [1, 2, 3]
    assert entries[0]["name"] < entries[1]["name"] < entries[2]["name"]
    assert [entry["family_walls"]["speedup"] for entry in entries] \
        == [3.0, 2.0, 1.0]
    assert entries[2]["reps"] == 3 and entries[0]["reps"] == 1
    table = format_bench_history(entries)
    assert "bench trajectory (3 reports)" in table
    assert "speedup wall" in table and "3.00s" in table and "1.00s" in table
    assert "1.25x" in table, "the schema-2 orchestrator speedup renders"


def test_bench_history_cli(tmp_path, capsys):
    new_dir = tmp_path / "bench_reports"
    new_dir.mkdir()
    # An empty (or entirely missing) report directory is a normal fresh-clone
    # state: the command says so on stdout and exits 0 so scripts can probe.
    empty = main(["bench", "history", "--dir", str(new_dir),
                  "--legacy-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert empty == 0 and "no bench reports accumulated yet" in captured.out
    assert captured.err == ""
    missing = main(["bench", "history", "--dir", str(tmp_path / "nowhere"),
                    "--legacy-dir", str(tmp_path / "nowhere-legacy")])
    captured = capsys.readouterr()
    assert missing == 0 and "no bench reports accumulated yet" in captured.out
    for stamp, wall in (("20260101T000000Z", 2.0), ("20260201T000000Z", 1.0)):
        (new_dir / f"BENCH_{stamp}.json").write_text(
            _history_report(3, wall), encoding="utf-8")
    assert main(["bench", "history", "--dir", str(new_dir),
                 "--legacy-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "bench trajectory (2 reports)" in out
    assert main(["bench", "history", "--json", "--dir", str(new_dir),
                 "--legacy-dir", str(tmp_path)]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert len(entries) == 2
    assert entries[1]["family_walls"]["speedup"] == 1.0


def test_latest_bench_report_handles_missing_directories(tmp_path):
    """A clone with no bench_reports/ at all (or one that was wiped) yields
    None — the documented nothing-to-compare signal — rather than raising."""
    from repro.experiments.bench import latest_bench_report, load_bench_history

    nowhere = tmp_path / "does-not-exist"
    assert latest_bench_report(nowhere,
                               legacy_directory=tmp_path / "nor-this") is None
    assert load_bench_history(nowhere,
                              legacy_directory=tmp_path / "nor-this") == []


def _gate_payload(quick: bool, wall: float, mad: float = 0.0) -> dict:
    return {"quick": quick, "families": {
        "speedup": {"totals": {"event": {"wall_seconds": wall,
                                         "wall_mad": mad}}}}}


def test_perf_gate_flags_only_regressions_past_threshold():
    from repro.experiments.bench import perf_gate

    reference = _gate_payload(True, 10.0)
    ok = perf_gate(_gate_payload(True, 14.9), reference)
    assert ok.ok and not ok.vacuous and ok.problems == []
    assert ok.compared == ["speedup", "aggregate"]
    assert "perf gate OK" in ok.describe()
    result = perf_gate(_gate_payload(True, 15.1), reference)
    # Both the family and the aggregate (same numbers here) trip.
    assert not result.ok and not result.vacuous
    assert len(result.problems) == 2 and "speedup/event" in result.problems[0]
    assert "aggregate/event" in result.problems[1]
    assert result.describe().count("PERF REGRESSION") == 2
    with pytest.raises(ValueError):
        perf_gate(_gate_payload(True, 1.0), reference, threshold=1.0)
    with pytest.raises(ValueError):
        perf_gate(_gate_payload(True, 1.0), reference, mad_multiplier=-1.0)


def test_perf_gate_noise_margin_absorbs_spread_within_reference_mad():
    """A rerun within the reference's own measured spread never flags, even
    past the relative threshold; a genuine 2x median slowdown still does."""
    from repro.experiments.bench import perf_gate

    # Reference: 1.0s median with a wide 0.3s MAD (a noisy shared box).
    reference = _gate_payload(True, 1.0, mad=0.3)
    # 1.8s is >1.5x but inside the +3*MAD (= +0.9s) margin: not a regression.
    within_noise = perf_gate(_gate_payload(True, 1.8), reference)
    assert within_noise.ok and within_noise.problems == []
    # 2.0s clears both bars: flagged.
    slowdown = perf_gate(_gate_payload(True, 2.0), reference)
    assert slowdown.problems and "speedup/event" in slowdown.problems[0]
    # A tight reference (MAD 0) degenerates to the old threshold-only check.
    tight = _gate_payload(True, 1.0)
    assert perf_gate(_gate_payload(True, 1.8), tight).problems


def test_perf_gate_vacuous_comparisons_carry_an_explicit_reason():
    from repro.experiments.bench import perf_gate

    reference = _gate_payload(True, 10.0)
    # Cross-budget: vacuous, never ok, reason names the mismatch.
    budget = perf_gate(_gate_payload(False, 99.0), reference)
    assert budget.vacuous and not budget.ok and budget.problems == []
    assert "budget mismatch" in budget.vacuous_reason
    assert "VACUOUS" in budget.describe()
    # Disjoint family sets: vacuous with the no-shared-family reason.
    disjoint = perf_gate({"quick": True, "families": {"other": {}}}, reference)
    assert disjoint.vacuous and "no comparable family" in disjoint.vacuous_reason


def test_perf_gate_ignores_sub_floor_walls_but_gates_the_aggregate():
    from repro.experiments.bench import perf_gate

    # Individually tiny families are timer noise: no per-family verdicts even
    # at a 10x blowup, and the 0.2s aggregate stays under the 0.5s floor —
    # but that is a VACUOUS verdict (nothing compared), not a green one.
    reference = {"quick": True, "families": {
        f: {"totals": {"event": {"wall_seconds": 0.1}}} for f in ("a", "b")}}
    noisy = {"quick": True, "families": {
        f: {"totals": {"event": {"wall_seconds": 1.0}}} for f in ("a", "b")}}
    sub_floor = perf_gate(noisy, reference)
    assert sub_floor.vacuous and "noise floor" in sub_floor.vacuous_reason
    # Enough tiny families to clear the aggregate floor: a broad slowdown
    # spread thinly across them is still caught (aggregate only).
    reference["families"].update(
        {f: {"totals": {"event": {"wall_seconds": 0.1}}}
         for f in ("c", "d", "e")})
    noisy["families"].update(
        {f: {"totals": {"event": {"wall_seconds": 1.0}}}
         for f in ("c", "d", "e")})
    result = perf_gate(noisy, reference)
    assert result.compared == ["aggregate"]
    assert len(result.problems) == 1 and "aggregate/event" in result.problems[0]


def test_perf_gate_accepts_committed_schema1_and_schema2_reports():
    """The committed legacy reports stay usable as gate references: their
    single-shot ``wall_seconds`` reads as a median with zero spread."""
    from repro.experiments.bench import perf_gate

    reports_dir = Path(__file__).resolve().parent.parent / "bench_reports"
    for name in ("BENCH_20260728T122855Z.json", "BENCH_20260728T130454Z.json"):
        reference = json.loads(
            (reports_dir / name).read_text(encoding="utf-8"))
        assert reference["schema"] in (1, 2)
        same = perf_gate(reference, reference)
        assert same.ok, same.describe()
        slowed = json.loads(json.dumps(reference))
        for family in slowed["families"].values():
            for engine in family["totals"].values():
                engine["wall_seconds"] *= 2.5
        assert perf_gate(slowed, reference).problems


def test_perf_gate_min_noise_floor_protects_degenerate_references():
    """Regression: references with no recorded spread used to get a +0 noise
    margin.  Schema-1/2 reports never recorded ``wall_mad`` and a schema-3
    report taken with ``--reps 1`` records MAD exactly 0.0; in both cases the
    margin bar collapsed into the relative bar, so a *tight* threshold let
    pure timer jitter flag a regression.  The ``min_noise_fraction`` floor
    (5% of the reference median) must absorb sub-5% deltas no matter how the
    reference was taken — verified against the actual committed legacy
    reports, not just synthetic payloads."""
    from repro.experiments.bench import perf_gate

    # Synthetic zero-MAD reference at a deliberately tight threshold.
    reference = _gate_payload(True, 1.0, mad=0.0)
    jitter = perf_gate(_gate_payload(True, 1.04), reference, threshold=1.02)
    assert jitter.ok, jitter.describe()
    real = perf_gate(_gate_payload(True, 1.10), reference, threshold=1.02)
    assert real.problems
    # The floor is relative, so it scales with the reference wall.
    big = _gate_payload(True, 100.0, mad=0.0)
    assert perf_gate(_gate_payload(True, 104.0), big, threshold=1.02).ok
    with pytest.raises(ValueError):
        perf_gate(reference, reference, min_noise_fraction=-0.1)

    # The committed legacy reports themselves: a 3% across-the-board drift
    # must never flag, even at a tight threshold.
    reports_dir = Path(__file__).resolve().parent.parent / "bench_reports"
    for name in ("BENCH_20260728T122855Z.json", "BENCH_20260728T130454Z.json"):
        reference = json.loads((reports_dir / name).read_text(encoding="utf-8"))
        assert reference["schema"] in (1, 2), \
            "these fixtures exist to pin the no-spread legacy schemas"
        drifted = json.loads(json.dumps(reference))
        for family in drifted["families"].values():
            for engine in family["totals"].values():
                engine["wall_seconds"] *= 1.03
        result = perf_gate(drifted, reference, threshold=1.02)
        assert result.ok, f"{name}: {result.describe()}"


def _floor_payload(**overrides) -> dict:
    payload = {
        "engines": ["cycle", "event"],
        "speedup_geomean": 1.7,
        "families": {
            "memory_bound": {"speedup": 3.5},
            "speedup": {"speedup": 1.8},
            "smt": {"speedup": 1.3},
            "sensitivity": {"speedup": 1.15},
        },
    }
    payload.update(overrides)
    return payload


def test_speedup_floor_gate_passes_healthy_payloads():
    from repro.experiments.bench import speedup_floor_gate

    result = speedup_floor_gate(_floor_payload())
    assert result.ok, result.describe()
    assert result.compared[-1] == "geomean"
    assert set(result.compared) == {"memory_bound", "speedup", "smt",
                                    "sensitivity", "geomean"}
    # The actual committed schema-3 reference clears the CI floors too.
    reports_dir = Path(__file__).resolve().parent.parent / "bench_reports"
    committed = max(p for p in reports_dir.glob("BENCH_*.json"))
    payload = json.loads(committed.read_text(encoding="utf-8"))
    if payload.get("schema", 0) >= 3:
        result = speedup_floor_gate(payload)
        assert result.ok, f"{committed.name}: {result.describe()}"


def test_speedup_floor_gate_flags_collapsed_wins():
    from repro.experiments.bench import speedup_floor_gate

    # One family falling below parity-ish trips the family floor.
    slow_family = _floor_payload()
    slow_family["families"]["sensitivity"]["speedup"] = 0.80
    result = speedup_floor_gate(slow_family)
    assert not result.ok
    assert len(result.problems) == 1 and "sensitivity" in result.problems[0]
    # A broad collapse trips the geomean floor even with every family >= the
    # per-family bar.
    broad = _floor_payload(speedup_geomean=1.05)
    for family in broad["families"].values():
        family["speedup"] = 1.05
    result = speedup_floor_gate(broad)
    assert result.problems and "geomean" in result.problems[-1]
    with pytest.raises(ValueError):
        speedup_floor_gate(_floor_payload(), geomean_floor=0.0)


def test_speedup_floor_gate_is_vacuous_never_green_when_unmeasurable():
    from repro.experiments.bench import speedup_floor_gate

    # Event-only bench runs measure no speedup: vacuous with a reason.
    single = speedup_floor_gate(_floor_payload(engines=["event"]))
    assert single.vacuous and not single.ok
    assert "cycle" in single.vacuous_reason
    assert "VACUOUS" in single.describe()
    # Both engines listed but no families / no recorded speedups.
    empty = speedup_floor_gate(_floor_payload(families={}))
    assert empty.vacuous and "no family reports" in empty.vacuous_reason
    unmeasured = speedup_floor_gate(
        _floor_payload(families={"speedup": {"totals": {}}}))
    assert unmeasured.vacuous and "speedup" in unmeasured.vacuous_reason


def test_orchestrator_bench_measures_and_verifies(tmp_path):
    from repro.experiments.bench import run_orchestrator_bench

    section = run_orchestrator_bench(quick=True, workers=2, per_suite=1,
                                     instructions=500, reps=2,
                                     figures=("fig11", "fig13"))
    assert section["identical"] is True
    assert section["dedup"]["deduped"] > 0
    assert section["serial_wall_seconds"] > 0
    assert section["orchestrated_wall_seconds"] > 0
    assert len(section["serial_wall_samples"]) == 2
    assert len(section["orchestrated_wall_samples"]) == 2
    assert section["serial_wall_mad"] >= 0.0
    assert section["orchestrated_wall_mad"] >= 0.0
    # Medians come from the post-warm-up samples.
    assert section["serial_wall_seconds"] == section["serial_wall_samples"][1]
    assert section["speedup"] == pytest.approx(
        section["serial_wall_seconds"] / section["orchestrated_wall_seconds"])
    with pytest.raises(ValueError):
        run_orchestrator_bench(figures=("not_a_figure",))
    with pytest.raises(ValueError):
        run_orchestrator_bench(reps=-2)


# --------------------------------------------------------------------- figures

def test_figures_cli_warm_run_performs_zero_simulations(tmp_path, capsys,
                                                        simulation_counter):
    fig_args = ["figures", "fig11"] + _runner_args(tmp_path) + ["--expect-warm"]
    assert main(fig_args) == 2, "a cold run must violate --expect-warm"
    err = capsys.readouterr().err
    assert "--expect-warm violated" in err
    assert "cold orchestrator jobs executed" in err
    assert "cold job: " in err, "the violation must name the jobs that ran cold"
    cold_sims = simulation_counter["count"]
    assert cold_sims > 0
    assert main(fig_args) == 0, "a warm rerun must satisfy --expect-warm"
    assert simulation_counter["count"] == cold_sims
    assert "cold job" not in capsys.readouterr().err


def test_expect_warm_catches_cold_orchestrator_jobs_without_sim_counters():
    """Regression: the orchestrator's own ``executed`` count must trip the
    check even when cache-store counters alone would look warm."""
    from repro.cli import _expect_warm_violated
    from repro.experiments.orchestrator import DedupStats

    warm = DedupStats(planned=4, unique=3, cache_warm=3, executed=0)
    assert _expect_warm_violated(0, 0, warm) is False
    cold = DedupStats(planned=4, unique=3, cache_warm=1, executed=2,
                      cold_jobs=["constable/client_00", "smt:baseline/a+b"])
    assert _expect_warm_violated(0, 0, cold) is True
    assert _expect_warm_violated(0, 0, None) is False, \
        "no wave (serial path) leaves the harness counters in charge"


def test_figures_cli_prints_dedup_stats_only_when_orchestrating(tmp_path, capsys):
    args = ["figures", "fig11"] + _runner_args(tmp_path)
    assert main(args) == 0
    assert "orchestrated wave" in capsys.readouterr().out
    assert main(args + ["--no-orchestrate"]) == 0
    assert "orchestrated wave" not in capsys.readouterr().out


def test_orchestrate_env_flips_the_default(tmp_path, capsys, monkeypatch):
    from repro.cli import ORCHESTRATE_ENV

    monkeypatch.setenv(ORCHESTRATE_ENV, "0")
    assert main(["figures", "fig11"] + _runner_args(tmp_path)) == 0
    assert "orchestrated wave" not in capsys.readouterr().out
    # The explicit flag beats the environment.
    assert main(["figures", "fig11", "--orchestrate"]
                + _runner_args(tmp_path)) == 0
    assert "orchestrated wave" in capsys.readouterr().out


def test_orchestrated_and_serial_figures_cli_share_cache_bit_identically(
        tmp_path, capsys):
    """The CLI's orchestrated path warms a cache the serial path then reuses."""
    args = _runner_args(tmp_path)
    assert main(["figures", "fig11", "--json"] + args) == 0
    orchestrated, _ = json.JSONDecoder().raw_decode(capsys.readouterr().out)
    assert main(["figures", "fig11", "--json", "--no-orchestrate",
                 "--expect-warm"] + args) == 0
    serial, _ = json.JSONDecoder().raw_decode(capsys.readouterr().out)
    assert orchestrated == serial


def test_figures_cli_rejects_unknown_figure(tmp_path):
    with pytest.raises(SystemExit):
        main(["figures", "fig999"] + _runner_args(tmp_path))


def test_figures_cli_standalone_harness_runs_without_runner(capsys):
    assert main(["figures", "table1", "--cache-dir", ".unused-cache"]) == 0
    assert "storage" in capsys.readouterr().out.lower()
