"""Tests for the ``repro`` console entry point and the shard-aware sweep pipeline.

Covers the cache subcommands (stats/gc/clear/verify round-trip, corrupt- and
orphan-entry detection), shard parsing and partition invariants, the headline
distribution guarantee — ``sweep --shard 1/2`` + ``--shard 2/2`` into one
cache directory merge to results bit-identical to a serial unsharded run with
zero re-simulation — and the warm-figures contract behind ``--expect-warm``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments.cache import ResultCache
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.runner import ExperimentRunner, Shard
from repro.pipeline.cpu import OutOfOrderCore

SUITES = ("Client", "Server")
INSTRUCTIONS = 800


def _runner_args(cache_dir) -> list:
    return ["--cache-dir", str(cache_dir), "--per-suite", "1",
            "--instructions", str(INSTRUCTIONS), "--suites", ",".join(SUITES)]


def _make_runner(cache_dir=None) -> ExperimentRunner:
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=cache)


@pytest.fixture()
def simulation_counter(monkeypatch):
    calls = {"count": 0}
    original = OutOfOrderCore.run

    def counted(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(OutOfOrderCore, "run", counted)
    return calls


# -------------------------------------------------------------------- sharding

def test_shard_parse_round_trip():
    shard = Shard.parse("2/3")
    assert (shard.index, shard.count) == (2, 3)


@pytest.mark.parametrize("text", ["", "3", "0/2", "3/2", "a/b", "1/0", "-1/2", "1/2/3"])
def test_shard_parse_rejects_malformed_specs(text):
    with pytest.raises(ValueError):
        Shard.parse(text)


@pytest.mark.parametrize("count", [1, 2, 3, 5, 9])
def test_shard_select_partitions_disjointly(count):
    items = [f"wl{i:02d}" for i in range(7)]
    slices = [Shard(index=k, count=count).select(items) for k in range(1, count + 1)]
    flattened = [item for part in slices for item in part]
    assert sorted(flattened) == sorted(items), "shards must union to the full set"
    assert len(flattened) == len(set(flattened)), "shards must be disjoint"


def test_shard_selection_ignores_residual_plan_state(simulation_counter, tmp_path):
    """Membership depends on the canonical workload list, not on what a host's
    cache already holds — otherwise two hosts could double- or zero-cover a
    workload once their warm states diverge."""
    warm = _make_runner(tmp_path)
    shard_one = set(warm.run_config("baseline", baseline_config(),
                                    shard=Shard(1, 2)))
    # A second sharded call on the same runner plans a residual (empty) job
    # list; the returned coverage must still be exactly shard one's workloads.
    again = set(warm.run_config("baseline", baseline_config(), shard=Shard(1, 2)))
    assert again == shard_one
    shard_two = set(warm.run_config("baseline", baseline_config(),
                                    shard=Shard(2, 2)))
    assert shard_one | shard_two == set(warm.workloads())
    assert not shard_one & shard_two


# ------------------------------------------------------- sweep: merge identity

def test_sharded_sweep_union_is_bit_identical_to_serial(tmp_path, simulation_counter):
    sweep_args = _runner_args(tmp_path) + ["--configs", "baseline,constable",
                                           "--smt-configs", "baseline",
                                           "--max-pairs", "1"]
    assert main(["sweep", "--shard", "1/2"] + sweep_args) == 0
    assert main(["sweep", "--shard", "2/2"] + sweep_args) == 0
    sharded_sims = simulation_counter["count"]
    assert sharded_sims == 2 * 2 + 1  # two configs x two workloads + one SMT pair

    # Folding the shards: a warm unsharded runner must simulate nothing and
    # reproduce the serial no-cache reference bit-for-bit.
    merged = _make_runner(tmp_path)
    merged_results = {name: merged.run_config(name, config)
                      for name, config in (("baseline", baseline_config()),
                                           ("constable", constable_config()))}
    merged_smt = merged.run_smt_config("baseline", baseline_config(), max_pairs=1)
    assert simulation_counter["count"] == sharded_sims, \
        "merging shard results must not re-simulate"

    reference = _make_runner()
    for name, results in merged_results.items():
        config = baseline_config() if name == "baseline" else constable_config()
        assert reference.run_config(name, config) == results
    assert reference.run_smt_config("baseline", baseline_config(), max_pairs=1) \
        == merged_smt


def test_sweep_rejects_malformed_shard(tmp_path, capsys):
    args = _runner_args(tmp_path) + ["--configs", "none", "--smt-configs", "none"]
    assert main(["sweep", "--shard", "3/2"] + args) == 2
    assert "shard" in capsys.readouterr().err


def test_sweep_rejects_unknown_config(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--configs", "no-such-config"] + _runner_args(tmp_path))


def test_sweep_merge_with_shard_is_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--merge", "--shard", "1/2"] + _runner_args(tmp_path))


# ----------------------------------------------------------- cache subcommands

def test_cache_stats_gc_clear_round_trip(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == len(SUITES) * 2  # one result + one report each
    assert stats["by_kind"] == {"result": 2, "report": 2}
    assert stats["total_bytes"] > 0

    cache = ResultCache(tmp_path)
    cap_mb = (cache.total_bytes() - 1) / (1024 * 1024)
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", str(cap_mb)]) == 0
    assert "evicted 1" in capsys.readouterr().out
    assert len(cache) == len(SUITES) * 2 - 1

    assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2, \
        "gc without any cap configured is a usage error"
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", "-1"]) == 2, \
        "a non-positive cap is a usage error, not a traceback"
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-mb", "nan"]) == 2
    capsys.readouterr()

    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert len(cache) == 0


def test_cache_verify_flags_corrupt_and_orphan_entries(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0

    cache = ResultCache(tmp_path)
    corrupt = next(cache.directory.glob("*/*.json"))
    corrupt.write_text("{not json", encoding="utf-8")
    orphan = cache.directory / "ab"
    orphan.mkdir(exist_ok=True)
    orphan_tmp = orphan / ".deadbeef.tmp"
    orphan_tmp.write_text("partial", encoding="utf-8")
    capsys.readouterr()

    # A fresh temp file belongs to a (possibly live) writer mid-store: it must
    # not be flagged, and therefore must never be purged out from under it.
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt"] == [str(corrupt)]
    assert report["orphan_temp"] == []

    aged = ResultCache.ORPHAN_TEMP_AGE_SECONDS + 60
    os.utime(orphan_tmp, (orphan_tmp.stat().st_mtime - aged,) * 2)
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["orphan_temp"] == [str(orphan_tmp)]

    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--purge"]) == 0
    assert not corrupt.exists() and not orphan_tmp.exists()
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0


def test_cache_verify_flags_stale_schema_without_failing(tmp_path, capsys):
    assert main(["sweep", "--configs", "baseline", "--smt-configs", "none"]
                + _runner_args(tmp_path)) == 0
    entry = next(ResultCache(tmp_path).directory.glob("*/*.json"))
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["schema"] = -1
    entry.write_text(json.dumps(payload), encoding="utf-8")
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["stale_schema"] == [str(entry)]


# --------------------------------------------------------------------- figures

def test_figures_cli_warm_run_performs_zero_simulations(tmp_path, simulation_counter):
    fig_args = ["figures", "fig11"] + _runner_args(tmp_path) + ["--expect-warm"]
    assert main(fig_args) == 2, "a cold run must violate --expect-warm"
    cold_sims = simulation_counter["count"]
    assert cold_sims > 0
    assert main(fig_args) == 0, "a warm rerun must satisfy --expect-warm"
    assert simulation_counter["count"] == cold_sims


def test_figures_cli_rejects_unknown_figure(tmp_path):
    with pytest.raises(SystemExit):
        main(["figures", "fig999"] + _runner_args(tmp_path))


def test_figures_cli_standalone_harness_runs_without_runner(capsys):
    assert main(["figures", "table1", "--cache-dir", ".unused-cache"]) == 0
    assert "storage" in capsys.readouterr().out.lower()
