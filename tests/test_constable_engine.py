"""Unit tests for the ConstableEngine state machine (paper §5-§6 semantics)."""

import pytest

from repro.core import ConstableConfig, ConstableEngine
from repro.core.ideal import IdealMode, IdealOracle, build_oracle_from_trace
from repro.isa.instruction import AddressingMode


def _train_until_eliminable(engine, pc=0x100, address=0x8000, value=42,
                            source_registers=(5,), repetitions=None):
    """Execute the load repeatedly until its can_eliminate flag is set."""
    threshold = engine.config.confidence_threshold
    repetitions = repetitions if repetitions is not None else threshold + 2
    for _ in range(repetitions):
        decision = engine.on_load_rename(pc, AddressingMode.STACK_RELATIVE)
        if decision.eliminate:
            return decision
        engine.on_load_writeback(pc, address, value, source_registers,
                                 decision.likely_stable)
    return engine.on_load_rename(pc, AddressingMode.STACK_RELATIVE)


def _engine(threshold=4, **overrides):
    return ConstableEngine(ConstableConfig(confidence_threshold=threshold, **overrides))


def test_load_becomes_eliminable_after_confidence_threshold():
    engine = _engine(threshold=4)
    decision = _train_until_eliminable(engine)
    assert decision.eliminate is True
    assert decision.value == 42
    assert decision.address == 0x8000
    assert engine.stats.loads_eliminated >= 1


def test_load_below_threshold_is_not_eliminated():
    engine = _engine(threshold=10)
    for _ in range(3):
        decision = engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
        assert decision.eliminate is False
        engine.on_load_writeback(0x100, 0x8000, 42, (5,), decision.likely_stable)
    assert engine.stats.loads_eliminated == 0


def test_register_write_resets_elimination():
    engine = _engine()
    _train_until_eliminable(engine, source_registers=(5,))
    engine.on_register_write(5)
    decision = engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
    assert decision.eliminate is False
    assert decision.likely_stable is True        # confidence survives the reset
    assert engine.stats.resets_by_register_write >= 1


def test_unrelated_register_write_does_not_reset():
    engine = _engine()
    _train_until_eliminable(engine, source_registers=(5,))
    engine.on_register_write(7)
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is True


def test_store_to_same_line_resets_elimination():
    engine = _engine()
    _train_until_eliminable(engine, address=0x8000)
    engine.on_store_address(0x8008)     # same 64-byte cacheline
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is False
    assert engine.stats.resets_by_store >= 1


def test_store_to_other_line_keeps_elimination():
    engine = _engine()
    _train_until_eliminable(engine, address=0x8000)
    engine.on_store_address(0x9000)
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is True


def test_snoop_resets_elimination():
    engine = _engine()
    _train_until_eliminable(engine, address=0x8000)
    engine.on_snoop(0x8010)
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is False
    assert engine.stats.resets_by_snoop >= 1


def test_l1_eviction_only_resets_in_amt_invalidate_variant():
    vanilla = _engine()
    _train_until_eliminable(vanilla, address=0x8000)
    vanilla.on_l1_eviction(0x8000)
    assert vanilla.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is True

    amt_i = _engine(amt_invalidate_on_l1_eviction=True, pin_cv_bits=False)
    _train_until_eliminable(amt_i, address=0x8000)
    amt_i.on_l1_eviction(0x8000)
    assert amt_i.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is False


def test_cv_pin_requested_for_likely_stable_writeback():
    engine = _engine(threshold=2)
    pin = False
    for _ in range(5):
        decision = engine.on_load_rename(0x100, AddressingMode.PC_RELATIVE)
        if decision.eliminate:
            break
        pin = engine.on_load_writeback(0x100, 0x8000, 1, (), decision.likely_stable)
    assert pin is True
    assert engine.stats.cv_pin_requests >= 1


def test_addressing_mode_filter_blocks_elimination():
    config = ConstableConfig(confidence_threshold=4,
                             eliminate_addressing_modes=frozenset({AddressingMode.PC_RELATIVE}))
    engine = ConstableEngine(config)
    decision = _train_until_eliminable(engine)
    assert decision.eliminate is False
    assert engine.stats.eliminations_blocked_by_mode >= 1


def test_xprf_exhaustion_blocks_elimination():
    engine = _engine(xprf_entries=1)
    if _train_until_eliminable(engine, pc=0x100, address=0x8000).eliminate:
        engine.release_xprf()
    if _train_until_eliminable(engine, pc=0x200, address=0x9000).eliminate:
        engine.release_xprf()
    first = engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
    second = engine.on_load_rename(0x200, AddressingMode.STACK_RELATIVE)
    assert first.eliminate is True
    assert second.eliminate is False
    assert engine.stats.eliminations_blocked_by_xprf >= 1
    engine.release_xprf()
    assert engine.on_load_rename(0x200, AddressingMode.STACK_RELATIVE).eliminate is True


def test_ordering_violation_halves_confidence_and_blocks_elimination():
    engine = _engine()
    _train_until_eliminable(engine)
    engine.on_ordering_violation(0x100)
    decision = engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
    assert decision.eliminate is False
    entry = engine.sld.lookup(0x100)
    assert entry.confidence < engine.config.confidence_max
    assert engine.stats.ordering_violations == 1


def test_context_switch_clears_all_structures():
    engine = _engine()
    _train_until_eliminable(engine)
    engine.on_context_switch()
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is False
    assert engine.rmt.tracked_pcs() == 0
    assert engine.amt.tracked_lines() == 0


def test_sld_update_counter_tracks_per_cycle_writes():
    engine = _engine()
    _train_until_eliminable(engine, source_registers=(5,))
    engine.begin_cycle()
    engine.on_register_write(5)
    assert engine.sld_updates_this_cycle == 1
    engine.begin_cycle()
    assert engine.sld_updates_this_cycle == 0


def test_elimination_resumes_after_reset_and_reexecution():
    engine = _engine()
    _train_until_eliminable(engine, source_registers=(5,))
    engine.on_register_write(5)
    # The next instance executes normally and re-arms elimination.
    decision = engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
    assert decision.eliminate is False and decision.likely_stable is True
    engine.on_load_writeback(0x100, 0x8000, 42, (5,), decision.likely_stable)
    assert engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE).eliminate is True


def test_coverage_statistic():
    engine = _engine()
    _train_until_eliminable(engine)
    for _ in range(5):
        engine.on_load_rename(0x100, AddressingMode.STACK_RELATIVE)
        engine.release_xprf()
    assert 0.0 < engine.coverage() <= 1.0


# ----------------------------------------------------------------------- ideal

def test_ideal_oracle_covers_after_first_execution():
    oracle = IdealOracle(stable_pcs={0x100}, mode=IdealMode.CONSTABLE)
    assert oracle.covers(0x100) is False
    oracle.observe_execution(0x100, 0x8000, 42)
    assert oracle.covers(0x100) is True
    assert oracle.known_value(0x100) == (0x8000, 42)
    assert oracle.covers(0x200) is False
    assert 0.0 < oracle.coverage() < 1.0


def test_build_oracle_from_trace(tiny_trace):
    oracle = build_oracle_from_trace(tiny_trace, mode=IdealMode.STABLE_LVP)
    assert oracle.mode is IdealMode.STABLE_LVP
    assert len(oracle.stable_pcs) > 0
