"""Unit tests for Constable's hardware structures: SLD, RMT, AMT, xPRF, storage."""

import pytest

from repro.core import (
    AddressMonitorTable,
    ConstableConfig,
    ExtraRegisterFile,
    RegisterMonitorTable,
    StableLoadDetector,
    storage_overhead_report,
)
from repro.isa.registers import RBP, RSP


# ---------------------------------------------------------------------- config

def test_config_defaults_match_table1_geometry():
    config = ConstableConfig()
    assert config.sld_entries == 512
    assert config.amt_entries == 256
    assert config.confidence_threshold == 30
    assert config.confidence_max == 31
    assert config.xprf_entries == 32


def test_config_rejects_threshold_wider_than_counter():
    with pytest.raises(ValueError):
        ConstableConfig(confidence_bits=4, confidence_threshold=30)


# ------------------------------------------------------------------------- SLD

def test_sld_confidence_increments_on_repeat():
    sld = StableLoadDetector(ConstableConfig(confidence_threshold=3))
    for _ in range(5):
        entry = sld.record_execution(0x100, 0x8000, 42)
    assert entry.confidence == 4  # first execution initialises, next four increment


def test_sld_confidence_halves_on_change():
    sld = StableLoadDetector(ConstableConfig(confidence_threshold=3))
    for _ in range(9):
        sld.record_execution(0x100, 0x8000, 42)
    entry = sld.record_execution(0x100, 0x8000, 43)
    assert entry.confidence == 4  # halved from 8


def test_sld_confidence_saturates_at_counter_max():
    config = ConstableConfig(confidence_threshold=8)
    sld = StableLoadDetector(config)
    for _ in range(100):
        entry = sld.record_execution(0x100, 0x8000, 1)
    assert entry.confidence == config.confidence_max


def test_sld_reset_and_punish():
    sld = StableLoadDetector(ConstableConfig(confidence_threshold=2))
    for _ in range(5):
        entry = sld.record_execution(0x100, 0x8000, 1)
    entry.can_eliminate = True
    assert sld.reset_elimination(0x100) is True
    assert sld.reset_elimination(0x100) is False
    entry.can_eliminate = True
    before = entry.confidence
    sld.punish(0x100)
    assert entry.can_eliminate is False
    assert entry.confidence == before // 2


def test_sld_set_associative_eviction():
    config = ConstableConfig(sld_sets=1, sld_ways=2, confidence_threshold=3)
    sld = StableLoadDetector(config)
    sld.lookup_or_allocate(0x100)
    sld.lookup_or_allocate(0x200)
    sld.lookup_or_allocate(0x300)     # evicts 0x100 (LRU)
    assert sld.lookup(0x100) is None
    assert sld.lookup(0x200) is not None
    assert sld.evictions == 1


def test_sld_reset_all_clears_eliminations_but_keeps_entries():
    sld = StableLoadDetector(ConstableConfig(confidence_threshold=2))
    entry = sld.record_execution(0x100, 0x8000, 1)
    entry.can_eliminate = True
    sld.reset_all()
    assert sld.lookup(0x100) is not None
    assert sld.lookup(0x100).can_eliminate is False
    assert sld.eliminable_loads() == 0


# ------------------------------------------------------------------------- RMT

def test_rmt_capacity_differs_for_stack_registers():
    rmt = RegisterMonitorTable(ConstableConfig())
    assert rmt.capacity(RSP) == 16
    assert rmt.capacity(RBP) == 16
    assert rmt.capacity(0) == 8


def test_rmt_insert_and_consume():
    rmt = RegisterMonitorTable(ConstableConfig())
    rmt.insert(3, 0x100)
    rmt.insert(3, 0x200)
    assert set(rmt.peek(3)) == {0x100, 0x200}
    pcs = rmt.consume(3)
    assert set(pcs) == {0x100, 0x200}
    assert rmt.consume(3) == []


def test_rmt_capacity_eviction_returns_displaced_pc():
    config = ConstableConfig(rmt_other_capacity=2)
    rmt = RegisterMonitorTable(config)
    assert rmt.insert(0, 0x100) == []
    assert rmt.insert(0, 0x200) == []
    displaced = rmt.insert(0, 0x300)
    assert displaced == [0x100]


def test_rmt_duplicate_insert_is_idempotent():
    rmt = RegisterMonitorTable(ConstableConfig())
    rmt.insert(1, 0x100)
    rmt.insert(1, 0x100)
    assert rmt.peek(1) == [0x100]


def test_rmt_remove_pc_everywhere():
    rmt = RegisterMonitorTable(ConstableConfig())
    rmt.insert(1, 0x100)
    rmt.insert(2, 0x100)
    rmt.remove_pc(0x100)
    assert rmt.tracked_pcs() == 0


# ------------------------------------------------------------------------- AMT

def test_amt_tracks_cacheline_granularity():
    amt = AddressMonitorTable(ConstableConfig())
    amt.insert(0x8004, 0x100)
    # A store anywhere in the same 64-byte line finds the entry.
    assert amt.lookup(0x8030) == [0x100]
    assert amt.consume(0x803F) == [0x100]
    assert amt.lookup(0x8004) == []


def test_amt_per_entry_pc_capacity():
    config = ConstableConfig(amt_pcs_per_entry=2)
    amt = AddressMonitorTable(config)
    assert amt.insert(0x8000, 0x100) == []
    assert amt.insert(0x8000, 0x200) == []
    displaced = amt.insert(0x8000, 0x300)
    assert displaced == [0x100]


def test_amt_set_eviction_returns_all_pcs():
    config = ConstableConfig(amt_sets=1, amt_ways=1)
    amt = AddressMonitorTable(config)
    amt.insert(0x8000, 0x100)
    displaced = amt.insert(0x10000, 0x200)
    assert displaced == [0x100]
    assert amt.tracked_lines() == 1


def test_amt_clear():
    amt = AddressMonitorTable(ConstableConfig())
    amt.insert(0x8000, 0x100)
    amt.clear()
    assert amt.tracked_lines() == 0 and amt.tracked_pcs() == 0


# ------------------------------------------------------------------------ xPRF

def test_xprf_allocation_until_full():
    xprf = ExtraRegisterFile(ConstableConfig(xprf_entries=2))
    assert xprf.try_allocate() and xprf.try_allocate()
    assert xprf.try_allocate() is False
    assert xprf.allocation_failures == 1
    xprf.release()
    assert xprf.try_allocate() is True
    assert 0.0 < xprf.failure_rate() < 1.0


def test_xprf_release_without_allocation_raises():
    xprf = ExtraRegisterFile()
    with pytest.raises(ValueError):
        xprf.release()


def test_xprf_release_all():
    xprf = ExtraRegisterFile()
    xprf.try_allocate()
    xprf.try_allocate()
    xprf.release_all()
    assert xprf.occupied == 0


# ---------------------------------------------------------------------- storage

def test_storage_overhead_matches_table1():
    report = storage_overhead_report(ConstableConfig())
    assert report["sld"] == pytest.approx(7.875, abs=0.1)
    assert report["amt"] == pytest.approx(4.0, abs=0.1)
    assert report["rmt"] == pytest.approx(0.42, abs=0.1)
    assert report["total"] == pytest.approx(12.4, abs=0.3)


def test_storage_overhead_scales_with_geometry():
    small = storage_overhead_report(ConstableConfig(sld_sets=16, sld_ways=16))
    large = storage_overhead_report(ConstableConfig(sld_sets=64, sld_ways=16))
    assert small["sld"] < large["sld"]
