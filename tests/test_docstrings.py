"""Docstring-coverage gate over the entire public ``repro`` API.

CI enforces the same contract with ruff's D1xx rules (see ``ruff.toml``); this
in-process mirror keeps the tier-1 suite authoritative in environments where
ruff is not installed, so coverage cannot regress silently either way.

The contract: every public module, class, function and method defined inside
``repro`` (all subpackages — the gate originally covered only
``repro.experiments``) carries a non-empty docstring.  Private names
(``_leading_underscore``), dunders and members inherited from elsewhere are
exempt, matching the ruff configuration (D105/D107 ignored).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterator, List, Tuple

import repro

PACKAGE = "repro"


def _package_modules() -> List[object]:
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix=PACKAGE + "."):
        modules.append(importlib.import_module(info.name))
    return modules


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _undocumented_in(module) -> Iterator[Tuple[str, str]]:
    """Yield (qualified name, kind) for every undocumented public member."""
    if not (module.__doc__ or "").strip():
        yield module.__name__, "module"
    for name, member in vars(module).items():
        if not _is_public(name):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-export; documented where it is defined
            if not (member.__doc__ or "").strip():
                yield f"{module.__name__}.{name}", type(member).__name__
            if inspect.isclass(member):
                yield from _undocumented_members(module.__name__, member)


def _undocumented_members(module_name: str, cls) -> Iterator[Tuple[str, str]]:
    for name, member in vars(cls).items():
        if not _is_public(name):
            continue
        if isinstance(member, property):
            target = member.fget
        elif inspect.isfunction(member):
            target = member
        else:
            continue
        if target is None or (target.__doc__ or "").strip():
            continue
        yield f"{module_name}.{cls.__name__}.{name}", "method"


def test_public_api_is_fully_documented():
    """Mirror of the CI ruff D1xx gate: no public member may lack a docstring."""
    missing = [item for module in _package_modules()
               for item in _undocumented_in(module)]
    assert not missing, (
        "undocumented public API members (add docstrings; "
        f"CI enforces this via ruff D rules): {sorted(missing)}")
