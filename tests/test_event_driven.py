"""Differential tests: the event-driven core is bit-identical to the reference.

``OutOfOrderCore`` ships two engines over one stage pipeline: the per-cycle
reference stepper (``engine="cycle"``) and the default event-driven
cycle-skipping engine (``engine="event"``), which jumps over idle gaps in one
step.  These tests pin their equivalence:

* direct core-level comparisons across baseline, Constable, EVES and
  ideal-oracle configurations, under SMT2, and on a memory-bound workload
  where skipping is the whole point — every :class:`SimulationResult` must
  compare equal field by field;
* a runner-level sweep where the serial reference runs with
  ``REPRO_CORE_ENGINE=cycle`` and the sharded runner runs the event engine at
  1/2/4 workers — results must match the reference exactly, extending the
  existing parallel-determinism guarantees to the engine dimension;
* the ``repro bench`` harness, which re-verifies engine equality on every
  run, must report ``identical`` and actually skip cycles.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.load_inspector import inspect_trace
from repro.core.ideal import IdealMode, IdealOracle
from repro.experiments.bench import run_bench
from repro.experiments.configs import (
    baseline_config,
    constable_config,
    eves_config,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner
from repro.pipeline.config import CoreConfig
from repro.pipeline.cpu import CORE_ENGINE_ENV, OutOfOrderCore, default_engine
from repro.pipeline.smt import simulate_smt_pair
from repro.workloads.generator import generate_trace
from repro.workloads.suites import WorkloadSpec

#: Reduced sweep for the runner-level engine-differential tests.
SUITES = ("Client", "Server")
INSTRUCTIONS = 1500
CONFIGS = {
    "baseline": baseline_config,
    "constable": constable_config,
}


@pytest.fixture(scope="session")
def membound_trace():
    """A memory-bound trace: dependent misses far past the LLC."""
    spec = WorkloadSpec(
        name="membound_test", suite="Bench", seed=5,
        kernels=[("pointer_chase", {"inner_iterations": 12, "ring_nodes": 1 << 14}),
                 ("random_access", {"inner_iterations": 6, "region_words": 1 << 19})])
    return generate_trace(spec, num_instructions=4000)


def _both_engines(trace_or_traces, config, name):
    """Run both engines over the same input; returns (cycle, event, event core)."""
    traces = (trace_or_traces if isinstance(trace_or_traces, list)
              else [trace_or_traces])
    reference = OutOfOrderCore(config, traces, name=name, engine="cycle").run()
    core = OutOfOrderCore(config, traces, name=name, engine="event")
    event = core.run()
    return reference, event, core


# ------------------------------------------------------------- core level

@pytest.mark.parametrize("config_name,factory", [
    ("baseline", baseline_config),
    ("constable", constable_config),
    ("eves", eves_config),
])
def test_engines_identical_on_suite_trace(client_trace, config_name, factory):
    reference, event, core = _both_engines(client_trace, factory(), config_name)
    assert event == reference, config_name
    assert core.skipped_idle_cycles > 0, "no idle gap was ever skipped"
    assert (core.skipped_idle_cycles + core.stepped_cycles
            == event.cycles), "skip accounting must partition the cycle count"


def test_engines_identical_on_snoopy_trace(server_trace):
    """Snoop delivery (anchored on fetch, not time) survives cycle skipping."""
    reference, event, _ = _both_engines(server_trace, constable_config(), "constable")
    assert event == reference


def test_engines_identical_on_memory_bound_trace(membound_trace):
    reference, event, core = _both_engines(membound_trace, baseline_config(),
                                           "baseline")
    assert event == reference
    skipped_fraction = core.skipped_idle_cycles / max(1, event.cycles)
    assert skipped_fraction > 0.5, (
        f"memory-bound run should spend most cycles idle; only "
        f"{skipped_fraction:.1%} were skipped")


def test_engines_identical_with_ideal_oracle(client_trace):
    report = inspect_trace(client_trace)
    oracle = IdealOracle(stable_pcs=set(report.global_stable_pcs()),
                         mode=IdealMode.CONSTABLE)
    reference = OutOfOrderCore(CoreConfig(ideal_oracle=oracle), [client_trace],
                               name="ideal", engine="cycle").run()
    oracle.reset_runtime_state()
    event = OutOfOrderCore(CoreConfig(ideal_oracle=oracle), [client_trace],
                           name="ideal", engine="event").run()
    assert event == reference


def test_engines_identical_under_smt2(client_trace, server_trace):
    for name, factory in CONFIGS.items():
        reference = simulate_smt_pair(client_trace, server_trace, factory(),
                                      name=name, engine="cycle")
        event = simulate_smt_pair(client_trace, server_trace, factory(),
                                  name=name, engine="event")
        assert event == reference, name


def test_engines_identical_adversarial_flush_heavy_smt2_tiny_rob(
        client_trace, server_trace):
    """The nastiest known configuration for engine equivalence, all at once:
    EVES value prediction (mispredictions trigger re-execution flushes) plus
    Constable, SMT2 round-robin arbitration across two different traces, and
    a near-minimal window so every stage hits resource stalls constantly.
    Flushes squash producers whose waiters are parked, tiny buffers force the
    conservative issue/rename gates open and shut every few cycles, and SMT
    interleaving shifts which thread's micro-ops own the RS age order — any
    shortcut in the event engine's wake predicates shows up here first."""
    import dataclasses
    from repro.experiments.configs import eves_constable_config

    config = eves_constable_config()
    config = config.copy(
        sizes=dataclasses.replace(config.sizes, rob=16, rs=4,
                                  load_buffer=8, store_buffer=8),
        frontend_refill_cycles=2, flush_penalty=2)
    reference = simulate_smt_pair(client_trace, server_trace, config,
                                  name="adversarial", engine="cycle")
    event = simulate_smt_pair(client_trace, server_trace, config,
                              name="adversarial", engine="event")
    assert event == reference


def test_engines_identical_under_reservation_station_pressure(membound_trace):
    """Regression: a load stalling on a full RS *after* its rename-stage
    mechanisms ran (Constable lookup, LVP, RFP) must not have the idle gap
    skipped — the reference repeats those side effects every stalled cycle."""
    import dataclasses
    for rs in (2, 3, 4, 8):
        config = constable_config()
        config = config.copy(sizes=dataclasses.replace(config.sizes, rs=rs))
        reference, event, _ = _both_engines(membound_trace, config, "constable")
        assert event == reference, f"rs={rs}"


def test_engine_selection_and_env_default(client_trace, monkeypatch):
    with pytest.raises(ValueError):
        OutOfOrderCore(baseline_config(), [client_trace], engine="warp")
    monkeypatch.setenv(CORE_ENGINE_ENV, "cycle")
    assert default_engine() == "cycle"
    assert OutOfOrderCore(baseline_config(), [client_trace]).engine == "cycle"
    monkeypatch.setenv(CORE_ENGINE_ENV, "bogus-unique-for-test")
    with pytest.warns(RuntimeWarning, match="bogus-unique-for-test"):
        assert default_engine() == "event", "unknown env values fall back to event"
    monkeypatch.delenv(CORE_ENGINE_ENV)
    assert default_engine() == "event"


# ----------------------------------------------------------- runner level

def _run_sweeps(runner: ExperimentRunner):
    single = {name: runner.run_config(name, factory())
              for name, factory in CONFIGS.items()}
    smt = {name: runner.run_smt_config(name, factory(), max_pairs=1)
           for name, factory in CONFIGS.items()}
    return single, smt


@pytest.fixture(scope="module")
def reference_sweeps():
    """Serial sweeps forced onto the per-cycle reference engine."""
    previous = os.environ.get(CORE_ENGINE_ENV)
    os.environ[CORE_ENGINE_ENV] = "cycle"
    try:
        runner = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES)
        return _run_sweeps(runner)
    finally:
        if previous is None:
            os.environ.pop(CORE_ENGINE_ENV, None)
        else:
            os.environ[CORE_ENGINE_ENV] = previous


@pytest.fixture(scope="module", params=[1, 2, 4],
                ids=["workers1", "workers2", "workers4"])
def event_sweeps(request):
    """Sharded sweeps on the default (event) engine at several worker counts."""
    assert os.environ.get(CORE_ENGINE_ENV) in (None, ""), \
        "event sweeps must run with the default engine"
    runner = ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                      suites=SUITES, max_workers=request.param)
    yield _run_sweeps(runner)
    runner.close()


def test_event_engine_sweep_matches_cycle_reference(reference_sweeps, event_sweeps):
    """Every workload/config result matches the per-cycle serial reference."""
    reference_single, _ = reference_sweeps
    event_single, _ = event_sweeps
    assert set(reference_single) == set(event_single)
    for config, reference_results in reference_single.items():
        event_results = event_single[config]
        assert list(reference_results) == list(event_results)
        for workload, reference_result in reference_results.items():
            assert event_results[workload] == reference_result, (config, workload)


def test_event_engine_smt_sweep_matches_cycle_reference(reference_sweeps,
                                                        event_sweeps):
    """Every SMT2 pair result matches the per-cycle serial reference."""
    _, reference_smt = reference_sweeps
    _, event_smt = event_sweeps
    assert set(reference_smt) == set(event_smt)
    for config, reference_results in reference_smt.items():
        event_results = event_smt[config]
        assert list(reference_results) == list(event_results)
        for pair, reference_result in reference_results.items():
            assert event_results[pair] == reference_result, (config, pair)


# ------------------------------------------------------------ bench harness

def test_bench_harness_reports_identical_engines():
    payload = run_bench(quick=True, families=["speedup"], instructions=500,
                        reps=1)
    assert payload["identical"] is True
    assert payload["reps"] == 1
    assert payload["warmup_discarded"] is False, \
        "a single repetition has nothing to discard"
    family = payload["families"]["speedup"]
    assert family["speedup"] > 0
    assert 0.0 < family["skipped_cycle_fraction"] < 1.0
    for job in family["jobs"]:
        assert job["identical"] is True
        assert set(job["engines"]) == {"cycle", "event"}
        engine = job["engines"]["event"]
        assert engine["wall_seconds"] > 0
        assert engine["wall_samples"] == [engine["wall_seconds"]]
        assert engine["wall_mad"] == 0.0, "one sample has zero spread"


def test_bench_rejects_unknown_inputs():
    with pytest.raises(ValueError):
        run_bench(families=["nope"])
    with pytest.raises(ValueError):
        run_bench(engines=["warp"])
    with pytest.raises(ValueError):
        run_bench(engines=[])
    with pytest.raises(ValueError):
        run_bench(families=["speedup"], instructions=200, reps=0)
